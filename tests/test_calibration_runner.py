"""Tests for the calibration module and the experiment runner helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.calibration import (
    CalibrationResult,
    edge_tail_ms,
    validate_frozen_calibration,
)
from repro.experiments.runner import (
    PolicySet,
    diurnal_for,
    hipster_in_for,
    learning_seconds,
    workload_by_name,
)
from repro.loadgen.traces import ConstantTrace
from repro.policies.static import static_all_big
from repro.sim.engine import run_experiment
from repro.sim.records import ExperimentResult, IntervalObservation
from repro.workloads.memcached import memcached
from repro.workloads.websearch import websearch


class TestCalibration:
    def test_frozen_constants_still_at_the_edge(self, platform):
        """The workload defaults must keep 100% load at the target edge;
        failing here means a platform/model change requires re-running
        calibrate_demand and freezing new constants."""
        for workload in (memcached(), websearch()):
            outcome = validate_frozen_calibration(
                platform, workload, duration_s=120.0
            )
            assert outcome.relative_error <= 0.25

    def test_edge_tail_monotone_in_demand(self, platform):
        """More work per request means a higher edge tail (the property
        bisection relies on)."""
        workload = websearch()
        light = edge_tail_ms(
            platform, workload.with_overrides(demand_mean_ms=20.0), duration_s=60
        )
        heavy = edge_tail_ms(
            platform, workload.with_overrides(demand_mean_ms=34.0), duration_s=60
        )
        assert light < heavy

    def test_validation_raises_on_drift(self, platform):
        drifted = websearch().with_overrides(demand_mean_ms=5.0)  # way light
        with pytest.raises(ValueError, match="re-run"):
            validate_frozen_calibration(platform, drifted, duration_s=60.0)

    def test_result_relative_error(self):
        result = CalibrationResult(
            workload_name="x",
            demand_mean_ms=1.0,
            edge_tail_ms=11.0,
            target_ms=10.0,
            iterations=5,
        )
        assert result.relative_error == pytest.approx(0.1)


class TestRunnerHelpers:
    def test_workload_lookup(self):
        assert workload_by_name("memcached").name == "memcached"
        assert workload_by_name("websearch").name == "websearch"
        with pytest.raises(KeyError, match="unknown workload"):
            workload_by_name("redis")

    def test_diurnal_lengths(self):
        assert diurnal_for(memcached()).duration_s == 1400.0
        assert diurnal_for(memcached(), quick=True).duration_s == 420.0
        assert diurnal_for(websearch()).duration_s == 1000.0

    def test_learning_seconds(self):
        assert learning_seconds() == 500.0
        assert learning_seconds(quick=True) == 150.0

    def test_policy_set_is_the_table3_lineup(self, platform):
        managers = PolicySet().build(platform)
        assert set(managers) == {
            "static-big",
            "static-small",
            "hipster-heuristic",
            "octopus-man",
            "hipster-in",
        }

    def test_hipster_in_for_overrides(self):
        manager = hipster_in_for(learning_s=42.0, epsilon=0.0)
        assert manager.params.learning_duration_s == 42.0
        assert manager.params.epsilon == 0.0


class TestExperimentResultInvariants:
    @pytest.fixture(scope="class")
    def result(self, platform):
        return run_experiment(
            platform, websearch(), ConstantTrace(0.5, 25),
            static_all_big(platform), seed=9,
        )

    @pytest.fixture(scope="class")
    def platform(self):
        from repro.hardware.juno import juno_r1

        return juno_r1()

    def test_energy_is_power_times_time(self, result):
        assert result.total_energy_j() == pytest.approx(
            float(np.sum(result.powers_w)) * result.interval_s
        )

    def test_guarantee_consistent_with_observations(self, result):
        manual = sum(o.qos_met for o in result) / len(result)
        assert result.qos_guarantee() == pytest.approx(manual)

    def test_slices_partition_metrics(self, result):
        head = result.slice(0, 10)
        tail = result.slice(10)
        assert len(head) + len(tail) == len(result)
        assert head.total_energy_j() + tail.total_energy_j() == pytest.approx(
            result.total_energy_j()
        )

    def test_observation_fields_consistent(self, result):
        for o in result:
            assert isinstance(o, IntervalObservation)
            assert o.qos_met == (o.tail_latency_ms <= 500.0)
            assert o.tardiness == pytest.approx(o.tail_latency_ms / 500.0)
            assert o.energy_j == pytest.approx(o.power_w * o.duration_s)

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError):
            ExperimentResult(
                [], workload_name="x", manager_name="y",
                target_latency_ms=1.0, interval_s=1.0,
            )

    @settings(max_examples=10, deadline=None)
    @given(window=st.floats(min_value=1.0, max_value=30.0))
    def test_windowed_qos_bounded(self, result, window):
        windows = result.windowed_qos_guarantee(window)
        assert np.all((windows >= 0.0) & (windows <= 1.0))
