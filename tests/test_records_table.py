"""The columnar observation store: table <-> row round-trips, slim
versioned cache payloads, legacy-payload rejection, and the pinned
cache keys of the storage-format bump.

The struct-of-arrays :class:`~repro.sim.records.ObservationTable`
replaced the tuple-of-dataclasses result representation
(``SCHEMA_VERSION`` 1 -> 2); these tests pin the contract that made the
swap safe:

* a table materializes back into exactly the rows that built it
  (property-tested over adversarial float values);
* pickled payloads carry columns (small, fast to decode), never
  per-interval dataclass objects, and are stamped with
  ``STORAGE_VERSION`` -- foreign-version payloads raise on load and the
  outcome cache treats them as misses;
* the fingerprint (cache-key) change of the format bump is pinned in
  both directions, so a silent ``SCHEMA_VERSION`` drift cannot
  resurrect stale cache entries.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.spec import FleetSpec
from repro.hardware.topology import Configuration
from repro.policies.base import Decision
from repro.scenarios import ScenarioSpec, TraceSpec
from repro.sim.batch import BatchRunner
from repro.sim.records import (
    BOOL_FIELDS,
    FLOAT_FIELDS,
    INT_FIELDS,
    STORAGE_VERSION,
    ExperimentResult,
    IntervalObservation,
    ObservationRowView,
    ObservationTable,
)

DECISIONS = (
    Decision(
        config=Configuration(2, 0, 1.15, None),
        big_freq_ghz=1.15,
        small_freq_ghz=0.65,
        run_batch=False,
    ),
    Decision(
        config=Configuration(0, 4, None, 0.65),
        big_freq_ghz=1.15,
        small_freq_ghz=0.65,
        run_batch=True,
    ),
)

LABELS = ("2B-1.15", "4S-0.65", "2B2S-0.90")

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=True, width=64
)


@st.composite
def observations(draw, index: int = 0) -> IntervalObservation:
    fields: dict = {name: draw(finite_floats) for name in FLOAT_FIELDS}
    for name in INT_FIELDS:
        fields[name] = draw(st.integers(min_value=-(2**53), max_value=2**53))
    for name in BOOL_FIELDS:
        fields[name] = draw(st.booleans())
    fields["index"] = index
    fields["decision"] = draw(st.sampled_from(DECISIONS))
    fields["config_label"] = draw(st.sampled_from(LABELS))
    return IntervalObservation(**fields)


def sample_result(n: int = 7, seed: int = 0) -> ExperimentResult:
    """A deterministic hand-built result (no engine run needed)."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        fields: dict = {name: float(rng.normal()) for name in FLOAT_FIELDS}
        for name in INT_FIELDS:
            fields[name] = int(rng.integers(0, 1000))
        for name in BOOL_FIELDS:
            fields[name] = bool(rng.random() < 0.5)
        fields["index"] = i
        fields["t_start_s"] = float(i)
        fields["decision"] = DECISIONS[i % len(DECISIONS)]
        fields["config_label"] = LABELS[i % len(LABELS)]
        rows.append(IntervalObservation(**fields))
    return ExperimentResult(
        rows,
        workload_name="memcached",
        manager_name="static-big",
        target_latency_ms=500.0,
        interval_s=1.0,
    )


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_table_row_round_trip_is_exact(self, data):
        """Property: from_observations . rows == identity, bit for bit
        (dataclass equality plus exact reprs, which see -0.0 and every
        last ulp)."""
        n = data.draw(st.integers(min_value=1, max_value=12))
        rows = tuple(
            data.draw(observations(index=i), label=f"row{i}") for i in range(n)
        )
        table = ObservationTable.from_observations(rows)
        back = table.rows()
        assert back == rows
        for a, b in zip(back, rows):
            for name in FLOAT_FIELDS + INT_FIELDS + BOOL_FIELDS:
                assert repr(getattr(a, name)) == repr(getattr(b, name))
            assert a.decision is b.decision
            assert a.config_label is b.config_label

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_pickle_round_trip_is_exact(self, data):
        n = data.draw(st.integers(min_value=1, max_value=8))
        rows = tuple(
            data.draw(observations(index=i), label=f"row{i}") for i in range(n)
        )
        table = ObservationTable.from_observations(rows)
        clone = pickle.loads(pickle.dumps(table, pickle.HIGHEST_PROTOCOL))
        assert clone.rows() == rows

    def test_row_views_read_python_scalars(self):
        result = sample_result()
        view = result.table.view(3)
        assert isinstance(view, ObservationRowView)
        row = result.observations[3]
        for name in FLOAT_FIELDS:
            value = getattr(view, name)
            assert type(value) is float and value == getattr(row, name)
        for name in INT_FIELDS:
            assert type(getattr(view, name)) is int
        for name in BOOL_FIELDS:
            assert type(getattr(view, name)) is bool
        assert view.decision is row.decision
        assert view.config_label == row.config_label
        assert view.materialize() == row


class TestTableBehaviour:
    def test_pools_dictionary_encode(self):
        result = sample_result(n=9)
        table = result.table
        assert len(table.decision_pool) == len(DECISIONS)
        assert len(table.label_pool) == len(LABELS)
        assert table.labels() == result.config_labels

    def test_columns_are_read_only_views(self):
        result = sample_result()
        for accessor in ("tails_ms", "powers_w", "loads", "times_s"):
            column = getattr(result, accessor)
            with pytest.raises(ValueError, match="read-only"):
                column[0] = 1.0
        # ...and repeated access returns the same buffer, not a rebuild.
        assert result.tails_ms is result.tails_ms

    def test_capacity_is_enforced(self):
        table = ObservationTable(1)
        row = sample_result(n=2).observations
        table.append_observation(row[0])
        with pytest.raises(IndexError, match="capacity"):
            table.append_observation(row[1])

    def test_pickling_a_live_table_does_not_freeze_it(self):
        """Snapshotting (pickle/deepcopy) a mid-build table must not
        mutate the source: later appends still work and the snapshot
        holds only the rows appended so far."""
        import copy

        rows = sample_result(n=3).observations
        table = ObservationTable(3)
        table.append_observation(rows[0])
        snapshot = pickle.loads(pickle.dumps(table))
        deep = copy.deepcopy(table)
        table.append_observation(rows[1])  # must not raise
        table.append_observation(rows[2])
        assert snapshot.rows() == rows[:1]
        assert deep.rows() == rows[:1]
        assert table.freeze().rows() == rows

    def test_frozen_table_rejects_appends(self):
        result = sample_result(n=2)
        with pytest.raises(RuntimeError, match="frozen"):
            result.table.append_observation(result.observations[0])

    def test_partial_fill_freezes_to_length(self):
        rows = sample_result(n=5).observations
        table = ObservationTable(10)
        for row in rows[:3]:
            table.append_observation(row)
        table.freeze()
        assert len(table) == 3
        assert table.rows() == rows[:3]

    def test_take_preserves_rows_and_pools(self):
        result = sample_result(n=8)
        taken = result.table.take(np.array([1, 5, 2]))
        assert taken.rows() == tuple(
            result.observations[i] for i in (1, 5, 2)
        )

    def test_slice_matches_row_filtering(self):
        result = sample_result(n=8)
        sliced = result.slice(2.0, 6.0)
        assert sliced.observations == tuple(
            o for o in result.observations if 2.0 <= o.t_start_s < 6.0
        )
        with pytest.raises(ValueError, match="at least one interval"):
            result.slice(1e9)

    def test_empty_result_rejected_in_both_forms(self):
        meta = dict(
            workload_name="x",
            manager_name="y",
            target_latency_ms=1.0,
            interval_s=1.0,
        )
        with pytest.raises(ValueError, match="at least one interval"):
            ExperimentResult([], **meta)
        with pytest.raises(ValueError, match="at least one interval"):
            ExperimentResult(ObservationTable(0), **meta)


class TestVersionedPayloads:
    def test_payload_is_columnar_not_per_interval_objects(self):
        """The cache payload must never contain pickled per-interval
        dataclasses again -- that is the decode bottleneck the format
        bump removed."""
        result = sample_result(n=50)
        payload = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
        assert b"IntervalObservation" not in payload
        clone = pickle.loads(payload)
        assert clone.observations == result.observations
        assert clone.workload_name == result.workload_name
        assert clone.interval_s == result.interval_s

    def test_materialized_rows_are_not_pickled(self):
        """Touching ``observations`` before pickling must not fatten the
        payload with the memoized dataclass rows."""
        result = sample_result(n=50)
        cold = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
        result.observations  # materialize the memo
        warm = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
        assert len(warm) == len(cold)

    def test_legacy_result_payload_rejected(self):
        """A pre-columnar pickle (instance ``__dict__`` with an
        ``_observations`` tuple) must raise on load, not resurrect a
        half-compatible object."""
        legacy_state = {
            "_observations": sample_result(n=2).observations,
            "workload_name": "memcached",
            "manager_name": "static-big",
            "target_latency_ms": 500.0,
            "interval_s": 1.0,
        }

        class LegacyPickle:
            """Pickles exactly like a pre-bump ExperimentResult: new the
            object, then BUILD with the legacy state dict."""

            def __reduce__(self):
                return (
                    ExperimentResult.__new__,
                    (ExperimentResult,),
                    legacy_state,
                )

        payload = pickle.dumps(LegacyPickle())
        with pytest.raises(ValueError, match="storage"):
            pickle.loads(payload)
        with pytest.raises(ValueError, match="storage"):
            ExperimentResult.__new__(ExperimentResult).__setstate__(legacy_state)

    def test_foreign_table_version_rejected(self):
        table = sample_result(n=2).table
        state = table.__getstate__()
        state["storage"] = STORAGE_VERSION + 1
        with pytest.raises(ValueError, match="storage format"):
            ObservationTable.__new__(ObservationTable).__setstate__(state)

    def test_cache_treats_legacy_payload_as_miss_and_deletes_it(self, tmp_path):
        """End to end: a legacy payload planted under a current cache
        key is rejected on decode, deleted, and recomputed."""
        spec = ScenarioSpec(
            workload="memcached",
            trace=TraceSpec.constant(0.5, 10.0),
            manager="static-big",
        )
        fresh = spec.run()
        legacy_state = {
            "_observations": fresh.result.observations,
            "workload_name": fresh.result.workload_name,
            "manager_name": fresh.result.manager_name,
            "target_latency_ms": fresh.result.target_latency_ms,
            "interval_s": fresh.result.interval_s,
        }

        class LegacyPickle:
            def __reduce__(self):
                return (
                    ExperimentResult.__new__,
                    (ExperimentResult,),
                    legacy_state,
                )

        path = tmp_path / f"{spec.fingerprint()}.pkl"
        path.write_bytes(pickle.dumps(LegacyPickle()))
        runner = BatchRunner(cache_dir=tmp_path, memory_entries=0)
        assert runner._cache_load(spec.fingerprint()) is None
        assert not path.exists(), "rejected legacy entry must be deleted"
        (outcome,) = runner.run([spec])
        assert runner.cache_misses == 1
        assert outcome.result.observations == fresh.result.observations


class TestCacheKeyPins:
    """Cache keys pinned on both sides of the storage-format bump.

    ``SCHEMA_VERSION`` folds into every fingerprint, so the bump retired
    every pre-columnar cache entry by key; these pins catch both a
    silent future format change (v2 keys drift) and an accidental
    rollback that would resurrect stale v1 entries (v2 keys collide
    with the retired v1 values)."""

    STEADY = dict(
        workload="memcached",
        trace=TraceSpec.constant(0.6, 15.0),
        manager="static-big",
    )
    COLLOCATION = dict(
        workload="websearch",
        trace=TraceSpec.diurnal(120.0),
        manager="hipster-co",
        batch_jobs="spec:lbm",
        seed=3,
    )

    #: (v2 key, retired v1 key) per pinned spec.  Scenario cache keys
    #: carry the version-legible ``s<schema>-<kernel>-`` prefix (which
    #: compaction uses to reclaim stranded records); the FleetSpec
    #: fingerprint is an identity, not a disk cache key, so it stays a
    #: bare hash.
    PINS = {
        "steady": (
            "s2-lindley-v1-49ff010b94a1bb1b5038e1c3",
            "71101f51e204f4070109d4c6",
        ),
        "collocation": (
            "s2-lindley-v1-4c9ce613370ea460dff8697b",
            "7f151e656e67b499cd7150d1",
        ),
        # Re-pinned for FLEET_SCHEMA_VERSION 1 -> 2 (workload_mix +
        # faults joined the fingerprint payload); the retired slot
        # holds the fleet-schema-1 key.  Node-level *cache* keys below
        # are unchanged by the bump.
        "fleet": (
            "8fe464a0205a745695a3e711",
            "b91ee0f506f0096b3f97c3a0",
        ),
        "fleet-node0": (
            "s2-lindley-v1-d53db36b5296c1b4aa15fcfc",
            "11ca0d69383a171f740f30f7",
        ),
    }

    def _fingerprints(self) -> dict[str, str]:
        fleet = FleetSpec(
            workload="memcached",
            trace=TraceSpec.constant(0.6, 12.0),
            manager="static-big",
            n_nodes=3,
            seed=5,
        )
        return {
            "steady": ScenarioSpec(**self.STEADY).fingerprint(),
            "collocation": ScenarioSpec(**self.COLLOCATION).fingerprint(),
            "fleet": fleet.fingerprint(),
            "fleet-node0": fleet.node_specs()[0].fingerprint(),
        }

    def test_v2_keys_pinned(self):
        for name, key in self._fingerprints().items():
            assert key == self.PINS[name][0], (
                f"{name}: cache key drifted without a documented "
                "SCHEMA_VERSION bump"
            )

    def test_v1_keys_retired(self):
        for name, key in self._fingerprints().items():
            assert key != self.PINS[name][1], (
                f"{name}: cache key collides with the retired "
                "pre-columnar (v1) key -- stale entries would resurrect"
            )
