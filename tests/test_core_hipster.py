"""Unit tests for Hipster's components: buckets, table, rewards, heuristic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.buckets import LoadBucketizer, default_bucketizer
from repro.core.rewards import RewardInputs, compute_reward
from repro.core.table import LookupTable
from repro.hardware.topology import Configuration
from repro.policies.octopusman import LadderStateMachine


class TestBucketizer:
    def test_bucket_count(self):
        assert LoadBucketizer(0.05).n_buckets == 20
        assert LoadBucketizer(0.03).n_buckets == 34

    def test_bucket_boundaries(self):
        b = LoadBucketizer(0.10)
        assert b.bucket(0.0) == 0
        assert b.bucket(0.0999) == 0
        assert b.bucket(0.10) == 1
        assert b.bucket(1.0) == b.n_buckets - 1

    def test_overload_clamped(self):
        b = LoadBucketizer(0.10)
        assert b.bucket(1.5) == b.n_buckets - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LoadBucketizer(0.10).bucket(-0.1)

    def test_representative_load_within_bucket(self):
        b = LoadBucketizer(0.06)
        for bucket in range(b.n_buckets):
            rep = b.representative_load(bucket)
            assert b.bucket(min(rep, 1.0)) == bucket or rep == 1.0

    def test_defaults_by_workload(self):
        assert default_bucketizer("memcached").bucket_size == 0.04
        assert default_bucketizer("websearch").bucket_size == 0.09
        with pytest.raises(KeyError):
            default_bucketizer("nginx")

    @settings(max_examples=50, deadline=None)
    @given(
        size=st.floats(min_value=0.01, max_value=0.5),
        load=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_bucket_always_valid(self, size, load):
        b = LoadBucketizer(size)
        assert 0 <= b.bucket(load) < b.n_buckets


class TestLookupTable:
    def test_unvisited_is_zero(self):
        table = LookupTable(n_actions=4)
        assert table.value(3, 2) == 0.0
        assert not table.visited(3, 2)
        assert not table.state_visited(3)

    def test_update_moves_toward_target(self):
        table = LookupTable(n_actions=2, alpha=0.5, gamma=0.0)
        new = table.update(0, 0, reward=10.0, next_state=0)
        assert new == pytest.approx(5.0)  # 0 + 0.5 * (10 - 0)
        assert table.visit_count(0, 0) == 1

    def test_bootstrap_uses_next_state_max(self):
        table = LookupTable(n_actions=2, alpha=1.0, gamma=0.5)
        table.update(1, 0, reward=8.0, next_state=1)  # R(1,0) = 8
        new = table.update(0, 1, reward=1.0, next_state=1)
        assert new == pytest.approx(1.0 + 0.5 * 8.0)

    def test_best_action_tie_break_order(self):
        table = LookupTable(n_actions=3)
        action, value = table.best_action(0, tie_break=[2, 0, 1])
        assert (action, value) == (2, 0.0)

    def test_best_action_prefers_higher_value(self):
        table = LookupTable(n_actions=3, alpha=1.0, gamma=0.0)
        table.update(0, 1, reward=4.0, next_state=0)
        table.update(0, 2, reward=9.0, next_state=0)
        action, value = table.best_action(0)
        assert (action, value) == (2, 9.0)

    def test_decay_schedule_first_visit_jumps_to_target(self):
        table = LookupTable(n_actions=2, alpha_schedule="decay", gamma=0.0)
        new = table.update(0, 0, reward=7.0, next_state=0)
        assert new == pytest.approx(7.0)  # first-visit alpha = 1

    def test_decay_schedule_floors(self):
        table = LookupTable(n_actions=1, alpha_schedule="decay", alpha_min=0.2, gamma=0.0)
        for _ in range(100):
            table.update(0, 0, reward=1.0, next_state=0)
        assert table._effective_alpha(0, 0) == pytest.approx(0.2)

    def test_invalid_indices_rejected(self):
        table = LookupTable(n_actions=2)
        with pytest.raises(ValueError):
            table.value(-1, 0)
        with pytest.raises(ValueError):
            table.value(0, 2)

    def test_fixed_point_is_reward_over_one_minus_gamma(self):
        """Repeatedly playing one action converges to r / (1 - gamma)."""
        table = LookupTable(n_actions=1, alpha=0.6, gamma=0.9)
        for _ in range(400):
            table.update(0, 0, reward=2.0, next_state=0)
        assert table.value(0, 0) == pytest.approx(2.0 / 0.1, rel=0.01)

    @settings(max_examples=30, deadline=None)
    @given(
        rewards=st.lists(
            st.floats(min_value=-5, max_value=5), min_size=1, max_size=30
        )
    )
    def test_values_bounded_by_reward_scale(self, rewards):
        """|R| can never exceed max|reward| / (1 - gamma)."""
        table = LookupTable(n_actions=1, alpha=0.6, gamma=0.9)
        for r in rewards:
            table.update(0, 0, reward=r, next_state=0)
        bound = max(abs(r) for r in rewards) / 0.1 + 1e-9
        assert abs(table.value(0, 0)) <= bound


class TestRewards:
    def _inputs(self, tail, **kwargs):
        defaults = dict(
            qos_curr_ms=tail,
            qos_target_ms=10.0,
            power_w=2.0,
            tdp_w=3.0,
        )
        defaults.update(kwargs)
        return RewardInputs(**defaults)

    def test_safe_interval_positive(self, rng):
        outcome = compute_reward(self._inputs(4.0), rng)
        assert outcome.total > 0
        assert not outcome.violated
        assert outcome.stochastic_penalty == 0.0

    def test_violation_negative_qos_part(self, rng):
        outcome = compute_reward(self._inputs(15.0), rng)
        assert outcome.violated
        assert outcome.qos_part == pytest.approx(-(1.5) - 1.0)

    def test_stochastic_zone_applies_penalty(self):
        rng = np.random.default_rng(0)
        penalties = [
            compute_reward(self._inputs(9.0), rng).stochastic_penalty
            for _ in range(20)
        ]
        assert all(0.0 <= p <= 1.0 for p in penalties)
        assert any(p > 0.0 for p in penalties)

    def test_power_reward_prefers_low_power(self, rng):
        cheap = compute_reward(self._inputs(4.0, power_w=1.5), rng)
        costly = compute_reward(self._inputs(4.0, power_w=2.8), rng)
        assert cheap.objective_part > costly.objective_part

    def test_throughput_reward_when_batch_present(self, rng):
        outcome = compute_reward(
            self._inputs(
                4.0,
                batch_present=True,
                big_ips=2e9,
                small_ips=1e9,
                max_ips_big=4e9,
                max_ips_small=2e9,
            ),
            rng,
        )
        assert outcome.objective_part == pytest.approx(0.5)

    def test_qos_reward_prefers_closer_to_target(self, rng):
        near = compute_reward(self._inputs(8.0), np.random.default_rng(1))
        far = compute_reward(self._inputs(2.0), np.random.default_rng(1))
        assert near.qos_part > far.qos_part

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            RewardInputs(qos_curr_ms=1, qos_target_ms=0, power_w=1, tdp_w=1)
        with pytest.raises(ValueError):
            RewardInputs(qos_curr_ms=1, qos_target_ms=1, power_w=0, tdp_w=1)

    @settings(max_examples=50, deadline=None)
    @given(
        tail=st.floats(min_value=0.0, max_value=100.0),
        power=st.floats(min_value=0.5, max_value=3.0),
    )
    def test_reward_sign_matches_violation(self, tail, power):
        rng = np.random.default_rng(0)
        outcome = compute_reward(
            RewardInputs(
                qos_curr_ms=tail, qos_target_ms=10.0, power_w=power, tdp_w=3.0
            ),
            rng,
        )
        assert outcome.violated == (tail >= 10.0)
        if outcome.violated:
            assert outcome.qos_part < 0


def _ladder():
    return tuple(
        Configuration(0, n, None, 0.65) for n in range(1, 5)
    ) + (Configuration(2, 0, 1.15, None),)


class TestLadderStateMachine:
    def test_starts_at_top(self):
        machine = LadderStateMachine(ladder=_ladder())
        assert machine.current.label == "2B-1.15"

    def test_danger_climbs_safe_descends(self):
        machine = LadderStateMachine(
            ladder=_ladder(), qos_danger=0.85, qos_safe=0.30, smoothing=1.0, index=2
        )
        machine.step(9.0, target_ms=10.0)  # danger
        assert machine.index == 3
        machine.step(1.0, target_ms=10.0)
        machine.step(1.0, target_ms=10.0)  # EWMA reset needs two samples
        assert machine.index < 3

    def test_clamps_at_ends(self):
        machine = LadderStateMachine(ladder=_ladder(), smoothing=1.0, index=0)
        machine.step(0.1, target_ms=10.0)
        assert machine.index == 0
        machine.index = len(_ladder()) - 1
        machine.step(99.0, target_ms=10.0)
        assert machine.index == len(_ladder()) - 1

    def test_band_holds_position(self):
        machine = LadderStateMachine(
            ladder=_ladder(), qos_danger=0.85, qos_safe=0.30, smoothing=1.0, index=2
        )
        machine.step(5.0, target_ms=10.0)  # inside [3, 8.5]
        assert machine.index == 2

    def test_smoothing_filters_single_spike(self):
        machine = LadderStateMachine(
            ladder=_ladder(), qos_danger=0.85, qos_safe=0.30, smoothing=0.3, index=2
        )
        machine.step(5.0, target_ms=10.0)
        machine.step(8.0, target_ms=10.0)  # below target: filtered
        assert machine.index == 2

    def test_violation_bypasses_filter(self):
        machine = LadderStateMachine(
            ladder=_ladder(), qos_danger=0.85, qos_safe=0.30, smoothing=0.1, index=2
        )
        machine.step(5.0, target_ms=10.0)
        machine.step(20.0, target_ms=10.0)  # above target: immediate climb
        assert machine.index == 3

    def test_seed_from_exact_and_nearest(self):
        machine = LadderStateMachine(ladder=_ladder())
        machine.seed_from(Configuration(0, 3, None, 0.65))
        assert machine.current.label == "3S-0.65"
        machine.seed_from(Configuration(1, 0, 1.15, None))  # not on ladder
        assert machine.current.label in ("2B-1.15", "1S-0.65")

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            LadderStateMachine(ladder=_ladder(), qos_danger=0.3, qos_safe=0.5)
        with pytest.raises(ValueError):
            LadderStateMachine(ladder=())
