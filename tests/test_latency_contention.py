"""Unit tests for latency statistics and the contention model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.cores import CoreKind
from repro.sim.contention import ClusterPressure, ContentionModel, aggregate_pressure
from repro.sim.latency import (
    qos_guarantee,
    qos_tardiness,
    summarize_latencies,
)


class TestLatencyStats:
    def test_percentile_bounds(self):
        sample = summarize_latencies(np.array([1.0, 2.0, 3.0, 100.0]), 0.95)
        assert 3.0 <= sample.tail_latency_ms <= 100.0
        assert sample.n_requests == 4

    def test_empty_interval_uses_idle_floor(self):
        sample = summarize_latencies(np.empty(0), 0.95, idle_latency_ms=2.5)
        assert sample.tail_latency_ms == 2.5
        assert sample.n_requests == 0

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies(np.array([1.0]), 95.0)

    def test_violation_and_tardiness(self):
        sample = summarize_latencies(np.full(100, 12.0), 0.95)
        assert sample.violates(10.0)
        assert sample.tardiness(10.0) == pytest.approx(1.2)

    def test_qos_guarantee_counts_met_intervals(self):
        tails = np.array([5.0, 9.0, 11.0, 20.0])
        assert qos_guarantee(tails, 10.0) == pytest.approx(0.5)
        assert qos_guarantee(np.empty(0), 10.0) == 1.0

    def test_qos_tardiness_conditioned_on_violation(self):
        tails = np.array([5.0, 15.0, 25.0])
        assert qos_tardiness(tails, 10.0) == pytest.approx(2.0)
        assert qos_tardiness(np.array([1.0]), 10.0) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=200)
    )
    def test_tail_within_sample_range(self, values):
        sample = summarize_latencies(np.array(values), 0.9)
        assert min(values) <= sample.tail_latency_ms <= max(values)
        assert sample.mean_latency_ms == pytest.approx(float(np.mean(values)))


class TestContention:
    def test_pressure_aggregation_by_cluster(self):
        pressure = aggregate_pressure(
            {"B0": 0.9, "S0": 0.5, "S1": 0.1}, big_core_ids=("B0", "B1")
        )
        assert pressure.big == pytest.approx(0.9)
        assert pressure.small == pytest.approx(0.6)
        assert pressure.total == pytest.approx(1.5)

    def test_no_batch_no_slowdown(self):
        model = ContentionModel()
        empty = ClusterPressure(big=0.0, small=0.0)
        assert model.lc_slowdown(CoreKind.BIG, empty) == 1.0
        assert model.batch_throughput_factor(CoreKind.BIG, 0.5, empty) == 1.0

    def test_same_cluster_hurts_more_than_remote(self):
        model = ContentionModel()
        local = ClusterPressure(big=1.0, small=0.0)
        remote = ClusterPressure(big=0.0, small=1.0)
        assert model.lc_slowdown(CoreKind.BIG, local) > model.lc_slowdown(
            CoreKind.BIG, remote
        )

    def test_sensitivity_scales_slowdown(self):
        model = ContentionModel()
        pressure = ClusterPressure(big=1.0, small=1.0)
        mild = model.lc_slowdown(CoreKind.BIG, pressure, sensitivity=0.5)
        harsh = model.lc_slowdown(CoreKind.BIG, pressure, sensitivity=2.0)
        assert 1.0 < mild < harsh

    def test_batch_does_not_contend_with_itself(self):
        model = ContentionModel()
        alone = ClusterPressure(big=0.9, small=0.0)
        factor = model.batch_throughput_factor(CoreKind.BIG, 0.9, alone)
        assert factor == 1.0  # own pressure subtracted out

    def test_lc_pressure_degrades_batch(self):
        model = ContentionModel()
        pressure = ClusterPressure(big=0.5, small=0.0)
        quiet = model.batch_throughput_factor(CoreKind.BIG, 0.5, pressure)
        shared = model.batch_throughput_factor(
            CoreKind.BIG, 0.5, pressure, lc_pressure=0.7
        )
        assert shared < quiet

    def test_negative_sensitivity_rejected(self):
        model = ContentionModel()
        with pytest.raises(ValueError):
            model.lc_slowdown(
                CoreKind.BIG, ClusterPressure(0, 0), sensitivity=-1.0
            )

    @settings(max_examples=30, deadline=None)
    @given(
        big=st.floats(min_value=0, max_value=4),
        small=st.floats(min_value=0, max_value=4),
        own=st.floats(min_value=0, max_value=1),
    )
    def test_factors_bounded(self, big, small, own):
        model = ContentionModel()
        pressure = ClusterPressure(big=big, small=small)
        assert model.lc_slowdown(CoreKind.SMALL, pressure) >= 1.0
        factor = model.batch_throughput_factor(CoreKind.SMALL, own, pressure)
        assert 0.0 < factor <= 1.0
