"""Unit and property tests for load traces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.loadgen.diurnal import DiurnalTrace, diurnal_shape
from repro.loadgen.mmpp import MMPPTrace
from repro.loadgen.traces import (
    ConcatTrace,
    ConstantTrace,
    RampTrace,
    ReplayTrace,
    SampledTrace,
    SpikeTrace,
    StepTrace,
)


class TestConstantAndStep:
    def test_constant(self):
        trace = ConstantTrace(0.5, 100)
        assert trace.load_at(0) == trace.load_at(99.9) == 0.5
        assert trace.n_intervals(1.0) == 100

    def test_step_sequence(self):
        trace = StepTrace([(10, 0.2), (5, 0.8)])
        assert trace.duration_s == 15
        assert trace.load_at(9.9) == 0.2
        assert trace.load_at(10.0) == 0.8
        assert trace.load_at(15.0) == 0.8  # clamped to the end

    def test_step_validation(self):
        with pytest.raises(ValueError):
            StepTrace([])
        with pytest.raises(ValueError):
            StepTrace([(0, 0.5)])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ConstantTrace(0.5, 10).load_at(-1)


class TestRampAndSpike:
    def test_figure8_ramp(self):
        trace = RampTrace(start_level=0.5, end_level=1.0, ramp_s=175.0)
        assert trace.load_at(0) == 0.5
        assert trace.load_at(87.5) == pytest.approx(0.75)
        assert trace.load_at(175.0) == 1.0

    def test_ramp_with_lead_and_hold(self):
        trace = RampTrace(0.2, 0.8, ramp_s=10, lead_s=5, hold_s=5)
        assert trace.duration_s == 20
        assert trace.load_at(4.9) == 0.2
        assert trace.load_at(19.9) == 0.8

    def test_spike(self):
        trace = SpikeTrace(
            base_level=0.3,
            spike_level=0.9,
            spike_start_s=10,
            spike_duration_s=5,
            duration_s=30,
        )
        assert trace.load_at(9.9) == 0.3
        assert trace.load_at(12.0) == 0.9
        assert trace.load_at(15.0) == 0.3

    def test_concat(self):
        trace = ConcatTrace([ConstantTrace(0.2, 10), RampTrace(0.5, 1.0, ramp_s=10)])
        assert trace.duration_s == 20
        assert trace.load_at(5) == 0.2
        assert trace.load_at(10.0) == 0.5
        assert trace.load_at(20.0) == 1.0


class TestDiurnal:
    def test_shape_spans_wide_range(self):
        x = np.linspace(0, 1, 500)
        shape = diurnal_shape(x)
        assert float(np.min(shape)) < 0.15
        assert float(np.max(shape)) > 0.85

    def test_trace_respects_bounds(self):
        trace = DiurnalTrace(duration_s=600, min_load=0.05, max_load=0.95)
        loads = [trace.load_at(t) for t in range(600)]
        assert all(0.0 <= load <= 1.0 for load in loads)
        assert min(loads) < 0.2
        assert max(loads) > 0.8

    def test_same_seed_same_trace(self):
        a = DiurnalTrace(duration_s=300, seed=5)
        b = DiurnalTrace(duration_s=300, seed=5)
        assert [a.load_at(t) for t in range(300)] == [b.load_at(t) for t in range(300)]

    def test_different_seed_differs(self):
        a = DiurnalTrace(duration_s=300, seed=5)
        b = DiurnalTrace(duration_s=300, seed=6)
        assert [a.load_at(t) for t in range(300)] != [b.load_at(t) for t in range(300)]

    def test_noise_is_smooth(self):
        """AR(1) noise: consecutive-second jumps stay small."""
        trace = DiurnalTrace(duration_s=600, seed=3)
        loads = np.array([trace.load_at(t) for t in range(600)])
        assert float(np.max(np.abs(np.diff(loads)))) < 0.12

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            DiurnalTrace(duration_s=100, min_load=0.9, max_load=0.5)

    @settings(max_examples=20, deadline=None)
    @given(t=st.floats(min_value=0, max_value=10_000), seed=st.integers(0, 99))
    def test_load_always_in_unit_interval(self, t, seed):
        trace = DiurnalTrace(duration_s=1000, seed=seed)
        assert 0.0 <= trace.load_at(min(t, trace.duration_s)) <= 1.0


class TestLoadAtMany:
    """Vectorized lookahead: bit-identical to per-call load_at.

    The engine reads a whole run's interval-midpoint loads through
    ``load_at_many`` once, up front; every trace class overriding the
    per-element default with batched arithmetic must return the exact
    floats ``load_at`` would, or the decision-epoch fast path diverges
    from the scalar loop.
    """

    def traces(self):
        return [
            ConstantTrace(0.4, 120.0),
            StepTrace([(30.0, 0.1), (45.0, 0.8), (25.0, 0.3)]),
            RampTrace(start_level=0.2, end_level=0.9, ramp_s=60.0,
                      lead_s=10.0, hold_s=15.0),
            SampledTrace([0.1, 0.5, 0.2, 0.9, 0.05], interval_s=7.0),
            SpikeTrace(base_level=0.3, spike_level=1.0, spike_start_s=20.0,
                       spike_duration_s=5.0, duration_s=90.0),
            ConcatTrace([ConstantTrace(0.2, 30.0),
                         StepTrace([(20.0, 0.6), (20.0, 0.4)])]),
            DiurnalTrace(duration_s=200.0, seed=4),
            MMPPTrace(levels=(0.2, 0.9), mean_dwell_s=(25.0, 10.0),
                      duration_s=150.0, seed=3),
            ReplayTrace(times_s=(0.0, 10.0, 35.0, 80.0),
                        levels=(0.1, 0.7, 0.4, 0.9), interp="previous"),
            ReplayTrace(times_s=(0.0, 10.0, 35.0, 80.0),
                        levels=(0.1, 0.7, 0.4, 0.9), interp="linear"),
        ]

    def test_bit_identical_to_scalar_lookup(self):
        for trace in self.traces():
            dt = 1.0
            n = trace.n_intervals(dt)
            mids = np.arange(n, dtype=np.float64) * dt + dt / 2.0
            batched = trace.load_at_many(mids)
            scalar = np.array(
                [trace.load_at(float(t)) for t in mids], dtype=float
            )
            assert batched.tobytes() == scalar.tobytes(), type(trace).__name__

    def test_fractional_and_clamped_times(self):
        for trace in self.traces():
            times = np.array(
                [0.0, 0.25, 1.0 / 3.0, trace.duration_s / 2.0,
                 trace.duration_s - 1e-9, trace.duration_s,
                 trace.duration_s + 5.0]
            )
            batched = trace.load_at_many(times)
            scalar = np.array(
                [trace.load_at(float(t)) for t in times], dtype=float
            )
            assert batched.tobytes() == scalar.tobytes(), type(trace).__name__

    def test_negative_time_rejected(self):
        for trace in self.traces():
            with pytest.raises(ValueError):
                trace.load_at_many(np.array([1.0, -0.5]))

    def test_empty_query(self):
        trace = StepTrace([(10.0, 0.5)])
        assert trace.load_at_many(np.empty(0)).shape == (0,)

    @settings(max_examples=30, deadline=None)
    @given(
        times=st.lists(st.floats(0.0, 500.0), min_size=1, max_size=40),
        levels=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8),
    )
    def test_step_and_sampled_fuzz(self, times, levels):
        step = StepTrace([(13.0, lv) for lv in levels])
        sampled = SampledTrace(levels, interval_s=11.0)
        arr = np.asarray(times)
        for trace in (step, sampled):
            batched = trace.load_at_many(arr)
            scalar = np.array(
                [trace.load_at(float(t)) for t in arr], dtype=float
            )
            assert batched.tobytes() == scalar.tobytes()


class TestMMPP:
    def test_deterministic_per_seed(self):
        kwargs = dict(levels=(0.2, 0.6, 1.1), mean_dwell_s=(40.0, 20.0, 5.0),
                      duration_s=300.0)
        a = MMPPTrace(seed=7, **kwargs)
        b = MMPPTrace(seed=7, **kwargs)
        times = np.linspace(0.0, 300.0, 601)
        assert a.load_at_many(times).tobytes() == b.load_at_many(times).tobytes()
        c = MMPPTrace(seed=8, **kwargs)
        assert a.load_at_many(times).tobytes() != c.load_at_many(times).tobytes()

    def test_levels_come_from_the_state_set(self):
        trace = MMPPTrace(levels=(0.25, 0.75), mean_dwell_s=(10.0, 10.0),
                          duration_s=200.0, seed=1)
        seen = set(trace.load_at_many(np.linspace(0.0, 199.9, 400)).tolist())
        assert seen <= {0.25, 0.75}
        assert len(seen) == 2  # both states visited over 20 mean dwells

    def test_start_state_pins_the_first_level(self):
        trace = MMPPTrace(levels=(0.3, 0.9), mean_dwell_s=(50.0, 50.0),
                          duration_s=100.0, seed=0, start_state=1)
        assert trace.load_at(0.0) == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPTrace(levels=(), mean_dwell_s=(), duration_s=10.0)
        with pytest.raises(ValueError):
            MMPPTrace(levels=(0.5, 0.6), mean_dwell_s=(10.0,), duration_s=10.0)
        with pytest.raises(ValueError):
            MMPPTrace(levels=(0.5,), mean_dwell_s=(-1.0,), duration_s=10.0)
        with pytest.raises(ValueError):
            MMPPTrace(levels=(2.0,), mean_dwell_s=(10.0,), duration_s=10.0)


class TestReplay:
    def test_previous_interpolation_holds_the_last_sample(self):
        trace = ReplayTrace(times_s=(0.0, 10.0, 20.0), levels=(0.2, 0.8, 0.5))
        assert trace.load_at(0.0) == 0.2
        assert trace.load_at(9.99) == 0.2
        assert trace.load_at(10.0) == 0.8
        assert trace.load_at(25.0) == 0.5  # clamped past the last sample

    def test_linear_interpolation_matches_np_interp(self):
        times = (0.0, 10.0, 30.0)
        levels = (0.0, 1.0, 0.5)
        trace = ReplayTrace(times_s=times, levels=levels, interp="linear")
        query = np.array([0.0, 5.0, 10.0, 20.0, 30.0, 40.0])
        expected = np.interp(query, times, levels)
        assert trace.load_at_many(query).tobytes() == expected.tobytes()

    def test_duration_defaults_to_last_sample_time(self):
        trace = ReplayTrace(times_s=(0.0, 42.0), levels=(0.1, 0.2))
        assert trace.duration_s == 42.0
        explicit = ReplayTrace(times_s=(0.0, 42.0), levels=(0.1, 0.2),
                               duration_s=60.0)
        assert explicit.duration_s == 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayTrace(times_s=(), levels=())
        with pytest.raises(ValueError):
            ReplayTrace(times_s=(0.0, 1.0), levels=(0.5,))
        with pytest.raises(ValueError):
            ReplayTrace(times_s=(5.0, 1.0), levels=(0.5, 0.5))
        with pytest.raises(ValueError):
            ReplayTrace(times_s=(0.0, 1.0), levels=(0.5, 0.5), interp="cubic")
