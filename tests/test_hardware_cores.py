"""Unit tests for core/cluster models and the Table 2 calibration."""

from __future__ import annotations

import pytest

from repro.hardware.cores import Cluster, CoreKind, CoreType
from repro.hardware.juno import cortex_a53, cortex_a57
from repro.hardware.microbench import characterize_platform


class TestCoreType:
    def test_big_core_identity(self):
        a57 = cortex_a57()
        assert a57.kind is CoreKind.BIG
        assert a57.max_freq_ghz == 1.15
        assert a57.min_freq_ghz == 0.60

    def test_voltage_lookup(self):
        a57 = cortex_a57()
        assert a57.voltage(1.15) == 1.0
        assert a57.voltage(0.60) == pytest.approx(0.80)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError, match="not an operating point"):
            cortex_a57().voltage(1.0)

    def test_dynamic_power_scales_with_utilization(self):
        a57 = cortex_a57()
        idle = a57.dynamic_power_w(1.15, 0.0)
        full = a57.dynamic_power_w(1.15, 1.0)
        assert 0 < idle < full
        assert idle == pytest.approx(full * a57.idle_fraction)

    def test_dynamic_power_drops_at_lower_dvfs(self):
        a57 = cortex_a57()
        assert a57.dynamic_power_w(0.60, 1.0) < a57.dynamic_power_w(1.15, 1.0)

    def test_dynamic_power_fv2_scaling(self):
        a57 = cortex_a57()
        ratio = a57.dynamic_power_w(0.60, 1.0) / a57.dynamic_power_w(1.15, 1.0)
        expected = (0.60 / 1.15) * (0.80 / 1.0) ** 2
        assert ratio == pytest.approx(expected)

    def test_utilization_bounds_enforced(self):
        with pytest.raises(ValueError, match="utilization"):
            cortex_a57().dynamic_power_w(1.15, 1.5)

    def test_microbench_ips_is_ipc_times_frequency(self):
        a53 = cortex_a53()
        assert a53.microbench_ips(0.65) == pytest.approx(
            a53.microbench_ipc * 0.65e9
        )

    def test_unsorted_frequencies_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            CoreType(
                name="x",
                kind=CoreKind.BIG,
                microbench_ipc=1.0,
                freqs_ghz=(1.0, 0.5),
                voltage_by_freq={1.0: 1.0, 0.5: 0.8},
                core_dynamic_w=1.0,
            )

    def test_missing_voltage_rejected(self):
        with pytest.raises(ValueError, match="missing voltage"):
            CoreType(
                name="x",
                kind=CoreKind.BIG,
                microbench_ipc=1.0,
                freqs_ghz=(0.5, 1.0),
                voltage_by_freq={1.0: 1.0},
                core_dynamic_w=1.0,
            )


class TestCluster:
    def test_core_ids_use_prefix(self, platform):
        assert platform.big.core_ids == ("B0", "B1")
        assert platform.small.core_ids == ("S0", "S1", "S2", "S3")

    def test_power_gating_saves_idle_power(self, platform):
        big = platform.big
        utils = {"B0": 1.0}
        gated = big.power_w(1.15, utils, power_gate_idle=True)
        ungated = big.power_w(1.15, utils, power_gate_idle=False)
        assert gated < ungated

    def test_unknown_core_id_rejected(self, platform):
        with pytest.raises(ValueError, match="unknown core ids"):
            platform.big.power_w(1.15, {"S0": 1.0})

    def test_smp_efficiency_reduces_aggregate_ips(self, platform):
        big = platform.big
        one = big.aggregate_microbench_ips(1.15, 1)
        two = big.aggregate_microbench_ips(1.15, 2)
        assert two < 2 * one
        assert two > 1.9 * one

    def test_invalid_active_count_rejected(self, platform):
        with pytest.raises(ValueError, match="n_active"):
            platform.big.aggregate_microbench_ips(1.15, 3)

    def test_bad_smp_efficiency_rejected(self):
        with pytest.raises(ValueError, match="smp_efficiency"):
            Cluster(
                name="big",
                core_type=cortex_a57(),
                n_cores=2,
                l2_kb=2048,
                static_power_w=0.1,
                smp_efficiency=1.5,
            )


class TestTable2Calibration:
    """The model must reproduce the paper's Table 2 numbers exactly."""

    def test_power_matches_paper(self, platform):
        big, small = characterize_platform(platform)
        assert big.power_all_cores_w == pytest.approx(2.30, abs=0.01)
        assert big.power_one_core_w == pytest.approx(1.62, abs=0.01)
        assert small.power_all_cores_w == pytest.approx(1.43, abs=0.01)
        assert small.power_one_core_w == pytest.approx(0.95, abs=0.01)

    def test_ips_matches_paper(self, platform):
        big, small = characterize_platform(platform)
        assert big.ips_all_cores == pytest.approx(4260e6, rel=0.001)
        assert big.ips_one_core == pytest.approx(2138e6, rel=0.001)
        assert small.ips_all_cores == pytest.approx(3298e6, rel=0.001)
        assert small.ips_one_core == pytest.approx(826e6, rel=0.001)

    def test_single_core_efficiency_claim(self, platform):
        """Paper: a single big core is ~52% more IPS/W-efficient."""
        big, small = characterize_platform(platform)
        gain = big.efficiency_one_core / small.efficiency_one_core
        assert gain == pytest.approx(1.52, abs=0.03)

    def test_cluster_efficiency_claim(self, platform):
        """Paper: the small cluster is ~25% more IPS/W-efficient."""
        big, small = characterize_platform(platform)
        gain = small.efficiency_all_cores / big.efficiency_all_cores
        assert gain == pytest.approx(1.25, abs=0.03)

    def test_tdp_covers_full_platform(self, platform):
        assert platform.tdp_w == pytest.approx(
            platform.rest_of_system_w
            + platform.big.max_power_w()
            + platform.small.max_power_w()
        )
        assert 2.5 < platform.tdp_w < 3.5
