"""Tests for the fleet layer: balancers, FleetSpec, aggregation, caching."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.fleet import (
    BALANCER_FACTORIES,
    FleetSpec,
    build_balancer,
    run_fleet,
)
from repro.fleet.balancer import MAX_NODE_LEVEL, LoadBalancer
from repro.loadgen.traces import SampledTrace
from repro.scenarios import DEFAULT_REGISTRY, ScenarioSpec, TraceSpec
from repro.sim.batch import BatchRunner


def tiny_fleet(n_nodes: int = 3, **overrides) -> FleetSpec:
    """A fast fleet: constant load, short trace, cheap static manager."""
    defaults = dict(
        workload="memcached",
        trace=TraceSpec.constant(0.6, 12.0),
        manager="static-big",
        n_nodes=n_nodes,
        seed=5,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestSampledTrace:
    def test_constant_time_lookup_matches_levels(self):
        trace = SampledTrace([0.1, 0.5, 0.9], interval_s=2.0)
        assert trace.duration_s == 6.0
        assert trace.load_at(0.5) == 0.1
        assert trace.load_at(3.0) == 0.5
        assert trace.load_at(5.9) == 0.9
        # Clamped at the end like every other trace.
        assert trace.load_at(100.0) == 0.9

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="at least one"):
            SampledTrace([])
        with pytest.raises(ValueError, match="interval_s"):
            SampledTrace([0.5], interval_s=0.0)
        with pytest.raises(ValueError, match="levels"):
            SampledTrace([2.0])

    def test_spec_roundtrip(self):
        spec = TraceSpec.sampled([0.2, 0.4], interval_s=1.0)
        trace = spec.build()
        assert isinstance(trace, SampledTrace)
        assert trace.levels == (0.2, 0.4)


class TestBalancers:
    CAPACITIES = np.array([1.05, 0.95, 1.0, 0.9])
    # Includes the trace layer's extreme 1.5: capacity-weighted splits
    # would push top nodes past the per-node cap, so conservation there
    # exercises the overflow redistribution.
    LOADS = np.array([0.1, 0.45, 0.8, 1.4, 1.5])

    @pytest.mark.parametrize("name", sorted(BALANCER_FACTORIES))
    def test_conserves_offered_load(self, name):
        """What goes into the dispatcher comes out: per-interval node
        levels sum to the fleet's offered load in nominal units."""
        balancer = build_balancer(name)
        levels = balancer.split(self.LOADS, self.CAPACITIES)
        assert levels.shape == (len(self.LOADS), len(self.CAPACITIES))
        np.testing.assert_allclose(
            levels.sum(axis=1), self.LOADS * len(self.CAPACITIES), rtol=1e-9
        )
        assert (levels >= 0).all() and (levels <= MAX_NODE_LEVEL).all()

    def test_round_robin_is_capacity_oblivious(self):
        levels = build_balancer("round-robin").split(self.LOADS, self.CAPACITIES)
        for row, load in zip(levels, self.LOADS):
            np.testing.assert_allclose(row, load)

    def test_least_loaded_equalizes_utilization(self):
        loads = self.LOADS[self.LOADS <= 1.0]  # below the redistribution regime
        levels = build_balancer("least-loaded").split(loads, self.CAPACITIES)
        utilization = levels / self.CAPACITIES[None, :]
        # Every node runs at the same fraction of its own capacity.
        np.testing.assert_allclose(
            utilization, np.broadcast_to(utilization[:, :1], utilization.shape)
        )

    def test_power_aware_consolidates_at_low_load(self):
        levels = build_balancer("power-aware").split(
            np.array([0.2]), self.CAPACITIES
        )
        # 0.2 * 4 = 0.8 nominal units fits inside one 0.85-target node.
        busy = levels[0] > 1e-9
        assert busy.sum() == 1
        # ...and it is the most capable node that absorbs it.
        assert levels[0].argmax() == self.CAPACITIES.argmax()

    def test_power_aware_spills_in_capacity_order(self):
        levels = build_balancer("power-aware").split(
            np.array([0.5]), self.CAPACITIES
        )
        order = np.argsort(-self.CAPACITIES)
        filled = levels[0][order]
        # Monotone fill front: nobody downstream gets work while an
        # upstream node sits below its target.
        target = 0.85 * self.CAPACITIES[order]
        for i in range(len(filled) - 1):
            if filled[i + 1] > 1e-9:
                np.testing.assert_allclose(filled[i], target[i], rtol=1e-9)

    def test_power_aware_target_level_param(self):
        balancer = build_balancer("power-aware", {"target_level": 0.5})
        assert balancer.target_level == 0.5
        with pytest.raises(ValueError, match="target_level"):
            build_balancer("power-aware", {"target_level": 0.0})

    def test_unknown_balancer(self):
        with pytest.raises(KeyError, match="unknown balancer"):
            build_balancer("random")


class TestClipVectorization:
    """The row-subset cap redistribution is byte-identical to the
    preserved full-matrix reference implementation."""

    def test_real_balancer_splits_byte_identical(self):
        rng = np.random.default_rng(123)
        for trial in range(40):
            n_nodes = int(rng.integers(1, 33))
            n_intervals = int(rng.integers(1, 60))
            spread = float(rng.choice([0.0, 0.08, 0.3]))
            caps = np.round(1.0 + spread * rng.uniform(-1, 1, n_nodes), 6)
            loads = np.round(rng.uniform(0.0, 1.5, n_intervals), 4)
            # Pin some intervals to the 1.5 cap edge, where the
            # capacity-weighted splits overflow and redistribution runs.
            loads[rng.random(n_intervals) < 0.3] = 1.5
            for name in sorted(BALANCER_FACTORIES):
                vectorized = build_balancer(name).split(loads, caps)
                with pytest.MonkeyPatch.context() as patch:
                    patch.setattr(
                        LoadBalancer, "_clip", LoadBalancer._clip_reference
                    )
                    reference = build_balancer(name).split(loads, caps)
                assert vectorized.dtype == reference.dtype
                assert np.array_equal(vectorized, reference), (
                    f"{name}: vectorized split diverged from reference "
                    f"(trial {trial})"
                )

    def test_raw_matrices_byte_identical(self):
        """Direct _clip fuzz, including sub-threshold 'dust' excess the
        reference still runs its redistribution arithmetic over."""
        rng = np.random.default_rng(7)
        balancer = build_balancer("round-robin")
        for trial in range(200):
            shape = (int(rng.integers(1, 40)), int(rng.integers(1, 20)))
            raw = rng.uniform(-0.1, 2.2, shape)
            dust = rng.random(shape) < 0.1
            raw[dust] = (
                MAX_NODE_LEVEL + 10.0 ** -rng.integers(13, 17, shape)[dust]
            )
            assert np.array_equal(
                balancer._clip(raw.copy()), balancer._clip_reference(raw.copy())
            ), f"trial {trial}"

    def test_clip_leaves_input_unmutated(self):
        balancer = build_balancer("round-robin")
        raw = np.array([[2.0, 0.5], [0.1, 0.2]])
        snapshot = raw.copy()
        balancer._clip(raw)
        np.testing.assert_array_equal(raw, snapshot)


class TestFleetSpec:
    def test_frozen_picklable_fingerprinted(self):
        spec = tiny_fleet()
        assert pickle.loads(pickle.dumps(spec)) == spec
        with pytest.raises(AttributeError):
            spec.n_nodes = 5
        assert spec.fingerprint() == tiny_fleet().fingerprint()

    def test_fingerprint_tracks_fleet_fields_but_not_label(self):
        spec = tiny_fleet()
        assert spec.with_(n_nodes=4).fingerprint() != spec.fingerprint()
        assert spec.with_(balancer="power-aware").fingerprint() != spec.fingerprint()
        assert spec.with_(capacity_spread=0.2).fingerprint() != spec.fingerprint()
        assert spec.with_(label="renamed").fingerprint() == spec.fingerprint()

    def test_validates_at_construction(self):
        with pytest.raises(ValueError, match="at least one node"):
            tiny_fleet(n_nodes=0)
        with pytest.raises(KeyError, match="unknown balancer"):
            tiny_fleet(balancer="coin-flip")
        with pytest.raises(KeyError, match="unknown manager"):
            tiny_fleet(manager="nonexistent")

    def test_capacities_deterministic_and_spread(self):
        spec = tiny_fleet(n_nodes=16, capacity_spread=0.1)
        caps = spec.node_capacities()
        np.testing.assert_array_equal(caps, spec.node_capacities())
        assert (np.abs(caps - 1.0) <= 0.1 + 1e-9).all()
        homogeneous = tiny_fleet(n_nodes=16, capacity_spread=0.0)
        np.testing.assert_array_equal(
            homogeneous.node_capacities(), np.ones(16)
        )

    def test_node_specs_are_plain_scenarios_with_distinct_seeds(self):
        spec = tiny_fleet(n_nodes=4)
        nodes = spec.node_specs()
        assert len(nodes) == 4
        assert all(isinstance(node, ScenarioSpec) for node in nodes)
        assert nodes == spec.node_specs()  # expansion is pure
        seeds = {node.seed for node in nodes}
        assert len(seeds) == 4 and spec.seed not in seeds
        fingerprints = {node.fingerprint() for node in nodes}
        assert len(fingerprints) == 4

    def test_capacity_scales_node_service_demand(self):
        spec = tiny_fleet(n_nodes=3, capacity_spread=0.1)
        caps = spec.node_capacities()
        demands = [
            dict(node.workload_params)["demand_mean_ms"]
            for node in spec.node_specs()
        ]
        # Slower board (capacity < 1) -> longer per-request demand.
        order_by_cap = np.argsort(caps)
        assert list(np.argsort(demands)[::-1]) == list(order_by_cap)


class TestFleetExecution:
    def test_serial_vs_parallel_identical(self):
        """Streaming aggregation folds in node order regardless of pool
        completion order, so serial and parallel fleets stay bitwise
        identical in every aggregate."""
        spec = tiny_fleet(n_nodes=3)
        serial = spec.run(BatchRunner(jobs=1))
        with BatchRunner(jobs=2) as runner:
            parallel = spec.run(runner)
        assert serial.render() == parallel.render()
        np.testing.assert_array_equal(serial.fleet_tails, parallel.fleet_tails)
        np.testing.assert_array_equal(serial.fleet_powers, parallel.fleet_powers)
        np.testing.assert_array_equal(serial.node_powers_w, parallel.node_powers_w)
        assert serial.total_energy_j() == parallel.total_energy_j()

    def test_warm_cache_replays_all_nodes(self, tmp_path):
        spec = tiny_fleet(n_nodes=3)
        cold = BatchRunner(cache_dir=tmp_path)
        first = spec.run(cold)
        assert cold.cache_misses == 3
        warm = BatchRunner(cache_dir=tmp_path)
        second = spec.run(warm)
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert first.render() == second.render()

    def test_aggregates(self):
        fleet = tiny_fleet(n_nodes=3)
        outcome = run_fleet(fleet)
        per_node = outcome.node_mean_powers_w()
        assert outcome.total_mean_power_w() == pytest.approx(per_node.sum())
        # Tail-of-tails dominates every node's own tail (node results
        # re-derived independently: the outcome no longer retains them).
        tails = outcome.fleet_tails_ms()
        for result in BatchRunner().results(fleet.node_specs()):
            assert (tails >= result.tails_ms - 1e-12).all()
        # All-nodes-met is at most the weakest node's guarantee.
        assert outcome.fleet_qos_guarantee() <= (
            outcome.node_qos_guarantees().min() + 1e-12
        )
        assert outcome.utilization_skew() >= 0.0
        # Same convention as single-node qos_tardiness: 0 when nothing
        # violates, else the mean overshoot (necessarily > 1).
        tardiness = outcome.fleet_qos_tardiness()
        assert tardiness == 0.0 or tardiness > 1.0

    def test_render_mentions_fleet_shape(self):
        outcome = run_fleet(tiny_fleet(n_nodes=2))
        report = outcome.render()
        assert "2 nodes" in report
        assert "tail-of-tails" in report
        assert "node01" in report


class TestStreamingAggregation:
    """The FleetAccumulator fold: order independence, bounded state."""

    def node_outcomes(self, spec):
        return BatchRunner().run(spec.node_specs())

    def test_out_of_order_adds_match_in_order(self):
        from repro.fleet import FleetAccumulator

        spec = tiny_fleet(n_nodes=4)
        outcomes = self.node_outcomes(spec)
        ordered = FleetAccumulator(spec)
        for index, outcome in enumerate(outcomes):
            ordered.add(index, outcome)
        shuffled = FleetAccumulator(spec)
        for index in (2, 0, 3, 1):
            shuffled.add(index, outcomes[index])
        a, b = ordered.finish(), shuffled.finish()
        assert a.render() == b.render()
        np.testing.assert_array_equal(a.fleet_tails, b.fleet_tails)
        np.testing.assert_array_equal(a.fleet_powers, b.fleet_powers)
        assert a.total_energy_j() == b.total_energy_j()

    def test_duplicate_and_out_of_range_adds_rejected(self):
        from repro.fleet import FleetAccumulator

        spec = tiny_fleet(n_nodes=2)
        outcomes = self.node_outcomes(spec)
        accumulator = FleetAccumulator(spec)
        accumulator.add(0, outcomes[0])
        with pytest.raises(ValueError, match="added twice"):
            accumulator.add(0, outcomes[0])
        with pytest.raises(IndexError, match="outside fleet"):
            accumulator.add(5, outcomes[1])

    def test_finish_requires_every_node(self):
        from repro.fleet import FleetAccumulator

        spec = tiny_fleet(n_nodes=3)
        outcomes = self.node_outcomes(spec)
        accumulator = FleetAccumulator(spec)
        accumulator.add(0, outcomes[0])
        with pytest.raises(ValueError, match="incomplete"):
            accumulator.finish()

    def test_unequal_interval_counts_rejected(self):
        from repro.fleet import FleetAccumulator

        spec = tiny_fleet(n_nodes=2)
        outcomes = self.node_outcomes(spec)
        short_spec = spec.node_specs()[1].with_(n_intervals=3)
        short = BatchRunner().run_one(short_spec)
        accumulator = FleetAccumulator(spec)
        accumulator.add(0, outcomes[0])
        with pytest.raises(ValueError, match="unequal interval counts"):
            accumulator.add(1, short)

    def test_outcome_retains_no_observations(self):
        """The acceptance property: FleetOutcome holds fixed-size
        reductions only -- no node outcome tuples, no observation
        tables."""
        outcome = run_fleet(tiny_fleet(n_nodes=2))
        assert not hasattr(outcome, "nodes")
        assert not hasattr(outcome, "node_results")
        state = outcome.__dict__
        leaked = [
            name
            for name, value in state.items()
            if type(value).__name__ in ("ScenarioOutcome", "ExperimentResult")
        ]
        assert leaked == []
        # Aggregation state is O(n_nodes + n_intervals).
        assert outcome.node_powers_w.shape == (2,)
        assert outcome.fleet_tails.ndim == 1

    def test_256_node_fleet_completes_with_streaming_aggregator(self):
        """A fleet size that used to be memory-bound: every aggregate
        is finite and per-node arrays span the whole fleet."""
        spec = tiny_fleet(
            n_nodes=256, trace=TraceSpec.constant(0.5, 6.0), seed=11
        )
        outcome = run_fleet(spec)
        assert outcome.n_nodes == 256
        assert outcome.node_powers_w.shape == (256,)
        assert np.isfinite(outcome.node_powers_w).all()
        assert np.isfinite(outcome.fleet_tails_ms()).all()
        assert outcome.total_mean_power_w() > 0
        assert 0.0 <= outcome.fleet_qos_guarantee() <= 1.0
        assert "node255" in outcome.render()


class TestFleetFamilies:
    def test_families_registered(self):
        for family in ("fleet-diurnal", "fleet-ramp", "fleet-collocation"):
            assert family in DEFAULT_REGISTRY

    def test_fleet_diurnal_builds(self):
        spec = DEFAULT_REGISTRY.build(
            "fleet-diurnal",
            workload="memcached",
            n_nodes=4,
            balancer="least-loaded",
            quick=True,
        )
        assert isinstance(spec, FleetSpec)
        assert spec.n_nodes == 4
        assert dict(spec.manager_params)["learning_duration_s"] > 0

    def test_fleet_collocation_sets_batch_jobs(self):
        spec = DEFAULT_REGISTRY.build(
            "fleet-collocation", program="lbm", n_nodes=2, quick=True
        )
        assert spec.batch_jobs == "spec:lbm"
        for node in spec.node_specs():
            assert node.batch_jobs == "spec:lbm"

    def test_fleet_ramp_concat_trace(self):
        spec = DEFAULT_REGISTRY.build("fleet-ramp", n_nodes=2, warmup_s=60.0)
        assert spec.trace.kind == "concat"


class TestFaults:
    def clauses(self):
        return (
            {"kind": "node-death", "probability": 0.5, "earliest_s": 3.0},
            {"kind": "straggler", "probability": 0.6, "slowdown": 2.0,
             "duration_s": 4.0},
        )

    def test_schedule_is_a_pure_function_of_the_spec(self):
        spec = tiny_fleet(n_nodes=6, faults=self.clauses())
        events = spec.fault_schedule()
        assert events == spec.fault_schedule()
        assert events == tiny_fleet(n_nodes=6, faults=self.clauses()).fault_schedule()
        reseeded = tiny_fleet(n_nodes=6, seed=99, faults=self.clauses())
        assert events != reseeded.fault_schedule()

    def test_faults_enter_the_fingerprint(self):
        spec = tiny_fleet()
        faulted = tiny_fleet(faults=self.clauses())
        assert spec.fingerprint() != faulted.fingerprint()

    def test_dead_node_drains_and_survivors_absorb(self):
        from repro.fleet.faults import FaultEvent

        spec = tiny_fleet(n_nodes=3, faults=(
            {"kind": "node-death", "probability": 1.0,
             "earliest_s": 0.0, "latest_s": 0.0},))
        events = spec.fault_schedule()
        assert len(events) == 3  # probability 1: every node dies at t=0
        assert all(isinstance(e, FaultEvent) and e.multiplier == 0.0
                   for e in events)
        # A whole-fleet wipeout cannot be expanded into node loads.
        with pytest.raises(ValueError, match="kills every node"):
            spec.node_specs()

    def test_partial_death_rebalances_onto_survivors(self):
        # Seed 0 fires the clause on node 0 only (pinned draw order).
        clause = {"kind": "node-death", "probability": 0.5,
                  "earliest_s": 6.0, "latest_s": 6.0}
        spec = tiny_fleet(n_nodes=2, balancer="round-robin", seed=0,
                          faults=(clause,))
        events = spec.fault_schedule()
        assert [(e.node, e.start_interval) for e in events] == [(0, 6)]
        nodes = spec.node_specs()
        dead_levels = dict(nodes[0].trace.params)["levels"]
        survivor_levels = dict(nodes[1].trace.params)["levels"]
        # Drained to zero from the death interval on...
        assert set(dead_levels[6:]) == {0.0}
        # ...while the survivor absorbs the whole fleet load (2x its
        # fair share, capped at the balancer's MAX_NODE_LEVEL).
        assert survivor_levels[6] > dead_levels[0]
        assert max(survivor_levels) <= MAX_NODE_LEVEL

    def test_straggler_inflates_load_temporarily(self):
        clause = {"kind": "straggler", "probability": 1.0, "slowdown": 2.0,
                  "duration_s": 3.0, "earliest_s": 4.0, "latest_s": 4.0}
        spec = tiny_fleet(n_nodes=1, balancer="round-robin",
                          faults=(clause,))
        (node,) = spec.node_specs()
        levels = dict(node.trace.params)["levels"]
        # During [4, 7): the 0.6 split inflates by 1/0.5 = 2x.
        assert levels[4] == pytest.approx(levels[0] * 2.0)
        assert levels[7] == pytest.approx(levels[0])

    def test_clause_validation(self):
        with pytest.raises(KeyError, match="unknown fault kind"):
            tiny_fleet(faults=({"kind": "meteor", "probability": 0.5},))
        with pytest.raises(TypeError, match="did you mean"):
            tiny_fleet(faults=(
                {"kind": "node-death", "probability": 0.5, "earliest": 3},))
        with pytest.raises(ValueError, match="probability"):
            tiny_fleet(faults=({"kind": "node-death", "probability": 1.5},))
        with pytest.raises(ValueError, match="slowdown"):
            tiny_fleet(faults=(
                {"kind": "straggler", "probability": 0.5, "slowdown": 0.9,
                 "duration_s": 5.0},))

    def test_faultless_spec_keeps_pre_fault_expansion(self):
        spec = tiny_fleet(n_nodes=3)
        assert spec.fault_schedule() == ()
        assert spec.with_(faults=()).node_specs() == spec.node_specs()


class TestHeterogeneousFleet:
    def mixed(self, **overrides):
        return tiny_fleet(
            n_nodes=3, workload_mix={"memcached": 2, "websearch": 1},
            **overrides,
        )

    def test_mix_assigns_sorted_name_blocks(self):
        spec = self.mixed()
        assert spec.node_workloads() == ("memcached", "memcached", "websearch")
        assert spec.is_heterogeneous()
        assert not tiny_fleet().is_heterogeneous()

    def test_mix_must_sum_to_n_nodes(self):
        with pytest.raises(ValueError, match="workload_mix"):
            tiny_fleet(n_nodes=3, workload_mix={"memcached": 2})
        with pytest.raises(KeyError, match="unknown workload"):
            tiny_fleet(n_nodes=3, workload_mix={"memcached": 2, "redis": 1})

    def test_mix_enters_the_fingerprint(self):
        assert self.mixed().fingerprint() != tiny_fleet(n_nodes=3).fingerprint()

    def test_node_specs_carry_their_workload(self):
        nodes = self.mixed().node_specs()
        assert [node.workload for node in nodes] == [
            "memcached", "memcached", "websearch"]

    def test_hetero_aggregation_uses_per_node_targets(self):
        outcome = run_fleet(self.mixed())
        assert outcome.is_heterogeneous
        assert outcome.fleet_ratio is not None
        assert len(outcome.node_targets) == 3
        # Both workload targets appear among the per-node targets.
        assert len(set(outcome.node_targets.tolist())) == 2
        guarantee = outcome.fleet_qos_guarantee()
        assert 0.0 <= guarantee <= 1.0
        assert "workload" in outcome.render()

    def test_homogeneous_render_has_no_workload_column(self):
        outcome = run_fleet(tiny_fleet(n_nodes=2))
        assert "workload" not in outcome.render()
