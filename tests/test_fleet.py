"""Tests for the fleet layer: balancers, FleetSpec, aggregation, caching."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.fleet import (
    BALANCER_FACTORIES,
    FleetSpec,
    build_balancer,
    run_fleet,
)
from repro.fleet.balancer import MAX_NODE_LEVEL
from repro.loadgen.traces import SampledTrace
from repro.scenarios import DEFAULT_REGISTRY, ScenarioSpec, TraceSpec
from repro.sim.batch import BatchRunner


def tiny_fleet(n_nodes: int = 3, **overrides) -> FleetSpec:
    """A fast fleet: constant load, short trace, cheap static manager."""
    defaults = dict(
        workload="memcached",
        trace=TraceSpec.constant(0.6, 12.0),
        manager="static-big",
        n_nodes=n_nodes,
        seed=5,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestSampledTrace:
    def test_constant_time_lookup_matches_levels(self):
        trace = SampledTrace([0.1, 0.5, 0.9], interval_s=2.0)
        assert trace.duration_s == 6.0
        assert trace.load_at(0.5) == 0.1
        assert trace.load_at(3.0) == 0.5
        assert trace.load_at(5.9) == 0.9
        # Clamped at the end like every other trace.
        assert trace.load_at(100.0) == 0.9

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="at least one"):
            SampledTrace([])
        with pytest.raises(ValueError, match="interval_s"):
            SampledTrace([0.5], interval_s=0.0)
        with pytest.raises(ValueError, match="levels"):
            SampledTrace([2.0])

    def test_spec_roundtrip(self):
        spec = TraceSpec.sampled([0.2, 0.4], interval_s=1.0)
        trace = spec.build()
        assert isinstance(trace, SampledTrace)
        assert trace.levels == (0.2, 0.4)


class TestBalancers:
    CAPACITIES = np.array([1.05, 0.95, 1.0, 0.9])
    # Includes the trace layer's extreme 1.5: capacity-weighted splits
    # would push top nodes past the per-node cap, so conservation there
    # exercises the overflow redistribution.
    LOADS = np.array([0.1, 0.45, 0.8, 1.4, 1.5])

    @pytest.mark.parametrize("name", sorted(BALANCER_FACTORIES))
    def test_conserves_offered_load(self, name):
        """What goes into the dispatcher comes out: per-interval node
        levels sum to the fleet's offered load in nominal units."""
        balancer = build_balancer(name)
        levels = balancer.split(self.LOADS, self.CAPACITIES)
        assert levels.shape == (len(self.LOADS), len(self.CAPACITIES))
        np.testing.assert_allclose(
            levels.sum(axis=1), self.LOADS * len(self.CAPACITIES), rtol=1e-9
        )
        assert (levels >= 0).all() and (levels <= MAX_NODE_LEVEL).all()

    def test_round_robin_is_capacity_oblivious(self):
        levels = build_balancer("round-robin").split(self.LOADS, self.CAPACITIES)
        for row, load in zip(levels, self.LOADS):
            np.testing.assert_allclose(row, load)

    def test_least_loaded_equalizes_utilization(self):
        loads = self.LOADS[self.LOADS <= 1.0]  # below the redistribution regime
        levels = build_balancer("least-loaded").split(loads, self.CAPACITIES)
        utilization = levels / self.CAPACITIES[None, :]
        # Every node runs at the same fraction of its own capacity.
        np.testing.assert_allclose(
            utilization, np.broadcast_to(utilization[:, :1], utilization.shape)
        )

    def test_power_aware_consolidates_at_low_load(self):
        levels = build_balancer("power-aware").split(
            np.array([0.2]), self.CAPACITIES
        )
        # 0.2 * 4 = 0.8 nominal units fits inside one 0.85-target node.
        busy = levels[0] > 1e-9
        assert busy.sum() == 1
        # ...and it is the most capable node that absorbs it.
        assert levels[0].argmax() == self.CAPACITIES.argmax()

    def test_power_aware_spills_in_capacity_order(self):
        levels = build_balancer("power-aware").split(
            np.array([0.5]), self.CAPACITIES
        )
        order = np.argsort(-self.CAPACITIES)
        filled = levels[0][order]
        # Monotone fill front: nobody downstream gets work while an
        # upstream node sits below its target.
        target = 0.85 * self.CAPACITIES[order]
        for i in range(len(filled) - 1):
            if filled[i + 1] > 1e-9:
                np.testing.assert_allclose(filled[i], target[i], rtol=1e-9)

    def test_power_aware_target_level_param(self):
        balancer = build_balancer("power-aware", {"target_level": 0.5})
        assert balancer.target_level == 0.5
        with pytest.raises(ValueError, match="target_level"):
            build_balancer("power-aware", {"target_level": 0.0})

    def test_unknown_balancer(self):
        with pytest.raises(KeyError, match="unknown balancer"):
            build_balancer("random")


class TestFleetSpec:
    def test_frozen_picklable_fingerprinted(self):
        spec = tiny_fleet()
        assert pickle.loads(pickle.dumps(spec)) == spec
        with pytest.raises(AttributeError):
            spec.n_nodes = 5
        assert spec.fingerprint() == tiny_fleet().fingerprint()

    def test_fingerprint_tracks_fleet_fields_but_not_label(self):
        spec = tiny_fleet()
        assert spec.with_(n_nodes=4).fingerprint() != spec.fingerprint()
        assert spec.with_(balancer="power-aware").fingerprint() != spec.fingerprint()
        assert spec.with_(capacity_spread=0.2).fingerprint() != spec.fingerprint()
        assert spec.with_(label="renamed").fingerprint() == spec.fingerprint()

    def test_validates_at_construction(self):
        with pytest.raises(ValueError, match="at least one node"):
            tiny_fleet(n_nodes=0)
        with pytest.raises(KeyError, match="unknown balancer"):
            tiny_fleet(balancer="coin-flip")
        with pytest.raises(KeyError, match="unknown manager"):
            tiny_fleet(manager="nonexistent")

    def test_capacities_deterministic_and_spread(self):
        spec = tiny_fleet(n_nodes=16, capacity_spread=0.1)
        caps = spec.node_capacities()
        np.testing.assert_array_equal(caps, spec.node_capacities())
        assert (np.abs(caps - 1.0) <= 0.1 + 1e-9).all()
        homogeneous = tiny_fleet(n_nodes=16, capacity_spread=0.0)
        np.testing.assert_array_equal(
            homogeneous.node_capacities(), np.ones(16)
        )

    def test_node_specs_are_plain_scenarios_with_distinct_seeds(self):
        spec = tiny_fleet(n_nodes=4)
        nodes = spec.node_specs()
        assert len(nodes) == 4
        assert all(isinstance(node, ScenarioSpec) for node in nodes)
        assert nodes == spec.node_specs()  # expansion is pure
        seeds = {node.seed for node in nodes}
        assert len(seeds) == 4 and spec.seed not in seeds
        fingerprints = {node.fingerprint() for node in nodes}
        assert len(fingerprints) == 4

    def test_capacity_scales_node_service_demand(self):
        spec = tiny_fleet(n_nodes=3, capacity_spread=0.1)
        caps = spec.node_capacities()
        demands = [
            dict(node.workload_params)["demand_mean_ms"]
            for node in spec.node_specs()
        ]
        # Slower board (capacity < 1) -> longer per-request demand.
        order_by_cap = np.argsort(caps)
        assert list(np.argsort(demands)[::-1]) == list(order_by_cap)


class TestFleetExecution:
    def test_serial_vs_parallel_identical(self):
        spec = tiny_fleet(n_nodes=3)
        serial = spec.run(BatchRunner(jobs=1))
        parallel = spec.run(BatchRunner(jobs=2))
        assert serial.render() == parallel.render()
        for left, right in zip(serial.nodes, parallel.nodes):
            assert left.result.observations == right.result.observations

    def test_warm_cache_replays_all_nodes(self, tmp_path):
        spec = tiny_fleet(n_nodes=3)
        cold = BatchRunner(cache_dir=tmp_path)
        first = spec.run(cold)
        assert cold.cache_misses == 3
        warm = BatchRunner(cache_dir=tmp_path)
        second = spec.run(warm)
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert first.render() == second.render()

    def test_aggregates(self):
        outcome = run_fleet(tiny_fleet(n_nodes=3))
        per_node = outcome.node_mean_powers_w()
        assert outcome.total_mean_power_w() == pytest.approx(per_node.sum())
        # Tail-of-tails dominates every node's own tail.
        tails = outcome.fleet_tails_ms()
        for result in outcome.node_results:
            assert (tails >= result.tails_ms - 1e-12).all()
        # All-nodes-met is at most the weakest node's guarantee.
        assert outcome.fleet_qos_guarantee() <= (
            outcome.node_qos_guarantees().min() + 1e-12
        )
        assert outcome.utilization_skew() >= 0.0
        # Same convention as single-node qos_tardiness: 0 when nothing
        # violates, else the mean overshoot (necessarily > 1).
        tardiness = outcome.fleet_qos_tardiness()
        assert tardiness == 0.0 or tardiness > 1.0

    def test_render_mentions_fleet_shape(self):
        outcome = run_fleet(tiny_fleet(n_nodes=2))
        report = outcome.render()
        assert "2 nodes" in report
        assert "tail-of-tails" in report
        assert "node01" in report


class TestFleetFamilies:
    def test_families_registered(self):
        for family in ("fleet-diurnal", "fleet-ramp", "fleet-collocation"):
            assert family in DEFAULT_REGISTRY

    def test_fleet_diurnal_builds(self):
        spec = DEFAULT_REGISTRY.build(
            "fleet-diurnal",
            workload="memcached",
            n_nodes=4,
            balancer="least-loaded",
            quick=True,
        )
        assert isinstance(spec, FleetSpec)
        assert spec.n_nodes == 4
        assert dict(spec.manager_params)["learning_duration_s"] > 0

    def test_fleet_collocation_sets_batch_jobs(self):
        spec = DEFAULT_REGISTRY.build(
            "fleet-collocation", program="lbm", n_nodes=2, quick=True
        )
        assert spec.batch_jobs == "spec:lbm"
        for node in spec.node_specs():
            assert node.batch_jobs == "spec:lbm"

    def test_fleet_ramp_concat_trace(self):
        spec = DEFAULT_REGISTRY.build("fleet-ramp", n_nodes=2, warmup_s=60.0)
        assert spec.trace.kind == "concat"
