"""Tests for metrics helpers, reporting and the CLI plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.reporting import ascii_table, series_block, sparkline, write_csv
from repro.hardware.topology import Configuration
from repro.loadgen.traces import ConstantTrace
from repro.metrics import (
    energy_reduction_percent,
    mean_power_percent_of,
    normalized_energy,
    qos_guarantee_percent,
    qos_violations_percent,
    summarize,
    tardiness_series,
    throughput_per_watt,
    violation_run_lengths,
)
from repro.policies.static import StaticPolicy, static_all_big, static_all_small
from repro.sim.engine import run_experiment
from repro.workloads.websearch import websearch


@pytest.fixture(scope="module")
def sample_runs(platform):
    trace = ConstantTrace(0.5, 20)
    big = run_experiment(platform, websearch(), trace, static_all_big(platform), seed=3)
    small = run_experiment(
        platform, websearch(), trace, static_all_small(platform), seed=3
    )
    return big, small


@pytest.fixture(scope="session")
def platform():
    from repro.hardware.juno import juno_r1

    return juno_r1()


class TestMetrics:
    def test_guarantee_and_violations_sum_to_100(self, sample_runs):
        big, _ = sample_runs
        assert qos_guarantee_percent(big) + qos_violations_percent(big) == pytest.approx(
            100.0
        )

    def test_energy_reduction_antisymmetry(self, sample_runs):
        big, small = sample_runs
        assert energy_reduction_percent(small, big) > 0
        assert normalized_energy(small, big) < 1.0
        assert normalized_energy(big, big) == pytest.approx(1.0)

    def test_throughput_per_watt_positive(self, sample_runs):
        big, _ = sample_runs
        assert throughput_per_watt(big) > 0

    def test_power_percent(self, sample_runs):
        big, _ = sample_runs
        percent = mean_power_percent_of(big, reference_w=big.powers_w.max())
        assert np.all(percent <= 100.0 + 1e-9)

    def test_tardiness_series_shape(self, sample_runs):
        big, _ = sample_runs
        series = tardiness_series(big)
        assert series.shape == big.tails_ms.shape

    def test_violation_run_lengths(self, platform):
        # Force violations with an undersized config at high load.
        result = run_experiment(
            platform, websearch(), ConstantTrace(1.0, 15),
            StaticPolicy(Configuration(0, 1, None, 0.65)), seed=3,
        )
        runs = violation_run_lengths(result)
        assert runs and runs[0] >= 2  # sustained overload

    def test_summary_render(self, sample_runs):
        big, small = sample_runs
        summary = summarize(small, big)
        text = summary.render()
        assert "static-small" in text
        assert "QoS" in text


class TestReporting:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[1:2])) == 1

    def test_sparkline_width(self):
        assert len(sparkline([1, 2, 3], width=40)) == 40
        assert sparkline([]) == ""

    def test_sparkline_flat_series(self):
        line = sparkline([5.0] * 10, width=10)
        assert line == " " * 10

    def test_series_block_annotations(self):
        block = series_block("power", [1.0, 2.0], unit="W")
        assert "min=1" in block and "max=2" in block

    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["x", "y"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1:] == ["1,2", "3,4"]


class TestCli:
    def test_parser_accepts_known_experiments(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["fig2", "--workload", "websearch", "--quick"])
        assert args.experiment == "fig2"
        assert args.workload == "websearch"
        assert args.quick is True

    def test_parser_rejects_unknown(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4"])

    def test_table2_end_to_end(self, capsys):
        from repro.cli import main

        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Cortex-A57" in out
