"""Integration tests for the interval co-simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.soc import KernelConfig
from repro.hardware.topology import Configuration
from repro.loadgen.traces import ConstantTrace, StepTrace
from repro.policies.static import StaticPolicy, static_all_big, static_all_small
from repro.sim.engine import EngineConfig, IntervalSimulator, run_experiment
from repro.workloads.memcached import memcached
from repro.workloads.spec import spec_job_set
from repro.workloads.websearch import websearch


class TestEngineBasics:
    def test_run_produces_one_observation_per_interval(self, platform):
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.5, 20), static_all_big(platform)
        )
        assert len(result) == 20
        assert [o.index for o in result] == list(range(20))

    def test_deterministic_for_seed(self, platform):
        runs = [
            run_experiment(
                platform, websearch(), ConstantTrace(0.5, 15),
                static_all_big(platform), seed=42,
            )
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].tails_ms, runs[1].tails_ms)
        assert np.array_equal(runs[0].powers_w, runs[1].powers_w)

    def test_different_seeds_differ(self, platform):
        a = run_experiment(
            platform, websearch(), ConstantTrace(0.5, 15), static_all_big(platform), seed=1
        )
        b = run_experiment(
            platform, websearch(), ConstantTrace(0.5, 15), static_all_big(platform), seed=2
        )
        assert not np.array_equal(a.tails_ms, b.tails_ms)

    def test_simulator_runs_once(self, platform):
        sim = IntervalSimulator(
            platform, websearch(), ConstantTrace(0.5, 5), static_all_big(platform)
        )
        sim.run()
        with pytest.raises(RuntimeError, match="exactly once"):
            sim.run()

    def test_energy_consistency(self, platform):
        """Result energy equals the meter's registers."""
        sim = IntervalSimulator(
            platform, websearch(), ConstantTrace(0.5, 10), static_all_big(platform)
        )
        result = sim.run()
        assert result.total_energy_j() == pytest.approx(sim.energy_meter.total_j)

    def test_invalid_engine_config_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(interval_s=0)
        with pytest.raises(ValueError):
            EngineConfig(migration_penalty_s=-1)


class TestPhysicalSanity:
    def test_latency_increases_with_load(self, platform):
        tails = []
        for load in (0.3, 0.7, 0.97):
            result = run_experiment(
                platform, memcached(), ConstantTrace(load, 30),
                static_all_big(platform), seed=3,
            )
            tails.append(float(np.median(result.tails_ms)))
        assert tails[0] < tails[1] < tails[2]

    def test_power_increases_with_load(self, platform):
        powers = []
        for load in (0.1, 0.9):
            result = run_experiment(
                platform, memcached(), ConstantTrace(load, 20),
                static_all_big(platform), seed=3,
            )
            powers.append(result.mean_power_w())
        assert powers[0] < powers[1]

    def test_small_cores_violate_at_high_load(self, platform):
        result = run_experiment(
            platform, memcached(), ConstantTrace(0.95, 25),
            static_all_small(platform), seed=3,
        )
        assert result.qos_guarantee() < 0.3

    def test_big_cores_meet_at_moderate_load(self, platform):
        result = run_experiment(
            platform, memcached(), ConstantTrace(0.6, 25),
            static_all_big(platform), seed=3,
        )
        assert result.qos_guarantee() > 0.9

    def test_overload_recovers_after_load_drop(self, platform):
        trace = StepTrace([(15, 1.0), (25, 0.3)])
        config = Configuration(0, 4, None, 0.65)  # undersized at 100%
        result = run_experiment(
            platform, memcached(), trace, StaticPolicy(config), seed=3
        )
        assert result.observations[14].tail_latency_ms > 10.0  # overloaded
        assert result.observations[-1].tail_latency_ms < 10.0  # recovered

    def test_dvfs_throttling_saves_power(self, platform):
        fast = run_experiment(
            platform, websearch(), ConstantTrace(0.3, 20),
            StaticPolicy(Configuration(2, 0, 1.15, None)), seed=3,
        )
        slow = run_experiment(
            platform, websearch(), ConstantTrace(0.3, 20),
            StaticPolicy(Configuration(2, 0, 0.60, None)), seed=3,
        )
        assert slow.mean_power_w() < fast.mean_power_w()
        assert slow.qos_guarantee() > 0.8  # still meets at 30% load


class TestMigrationCost:
    def test_oscillation_hurts_qos(self, platform):
        """Flipping between clusters every interval must cost QoS versus
        holding either configuration (the paper's core observation)."""

        class Flapper(StaticPolicy):
            def __init__(self):
                super().__init__(Configuration(2, 0, 1.15, None), name="flapper")
                self._flip = False

            def decide(self):
                from repro.policies.base import resolve_decision

                self._flip = not self._flip
                config = (
                    Configuration(2, 0, 1.15, None)
                    if self._flip
                    else Configuration(0, 4, None, 0.65)
                )
                return resolve_decision(
                    self.ctx.platform, config, collocate_batch=False
                )

        steady = run_experiment(
            platform, memcached(), ConstantTrace(0.55, 40),
            static_all_big(platform), seed=3,
        )
        flapping = run_experiment(
            platform, memcached(), ConstantTrace(0.55, 40), Flapper(), seed=3
        )
        assert flapping.qos_guarantee() < steady.qos_guarantee() - 0.2

    def test_dvfs_change_is_cheap(self, platform):
        """Flipping DVFS (same cores) must not meaningfully hurt QoS."""

        class DvfsFlapper(StaticPolicy):
            def __init__(self):
                super().__init__(Configuration(2, 0, 1.15, None), name="dvfs-flapper")
                self._flip = False

            def decide(self):
                from repro.policies.base import resolve_decision

                self._flip = not self._flip
                freq = 1.15 if self._flip else 0.90
                return resolve_decision(
                    self.ctx.platform,
                    Configuration(2, 0, freq, None),
                    collocate_batch=False,
                )

        result = run_experiment(
            platform, memcached(), ConstantTrace(0.55, 40), DvfsFlapper(), seed=3
        )
        assert result.qos_guarantee() > 0.9
        assert result.migration_events() == 0


class TestCollocation:
    def test_batch_ips_reported(self, platform):
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.4, 15),
            static_all_big(platform, collocate_batch=True),
            batch_jobs=spec_job_set("calculix"), seed=3,
        )
        assert result.batch_mean_ips() > 1e9
        assert all(o.small_ips > 0 for o in result)
        assert all(o.big_ips == 0 for o in result)  # LC owns the big cluster

    def test_no_batch_without_flag(self, platform):
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.4, 10),
            static_all_big(platform, collocate_batch=False),
            batch_jobs=spec_job_set("calculix"), seed=3,
        )
        assert result.batch_total_instructions() == 0

    def test_contention_slows_lc(self, platform):
        alone = run_experiment(
            platform, websearch(), ConstantTrace(0.8, 30),
            static_all_big(platform), seed=3,
        )
        shared = run_experiment(
            platform, websearch(), ConstantTrace(0.8, 30),
            static_all_big(platform, collocate_batch=True),
            batch_jobs=spec_job_set("lbm"), seed=3,
        )
        assert float(np.mean(shared.tails_ms)) > float(np.mean(alone.tails_ms))

    def test_counters_poisoned_with_cpuidle_enabled(self, platform):
        """The Juno perf bug makes counters garbage whenever any core goes
        idle while CPUidle is enabled -- the exact constraint from paper
        Section 3.7.  At near-zero load an LC core idles through whole
        intervals, poisoning every counter in the sample."""
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.01, 20),
            static_all_big(platform, collocate_batch=True),
            batch_jobs=spec_job_set("calculix"),
            kernel=KernelConfig(cpuidle_enabled=True),
            seed=3,
        )
        assert any(o.counter_garbage for o in result)

    def test_counters_clean_with_cpuidle_disabled(self, platform):
        """Hipster's workaround: disabling CPUidle keeps counters honest."""
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.01, 20),
            static_all_big(platform, collocate_batch=True),
            batch_jobs=spec_job_set("calculix"),
            kernel=KernelConfig(cpuidle_enabled=False),
            seed=3,
        )
        assert not any(o.counter_garbage for o in result)


class TestResultAccessors:
    def test_slice_by_time(self, platform):
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.5, 30), static_all_big(platform)
        )
        tail = result.slice(10.0, 20.0)
        assert len(tail) == 10
        assert tail.observations[0].t_start_s == 10.0

    def test_windowed_qos(self, platform):
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.5, 30), static_all_big(platform)
        )
        windows = result.windowed_qos_guarantee(10.0)
        assert len(windows) == 3
        assert all(0.0 <= w <= 1.0 for w in windows)

    def test_energy_reduction_sign(self, platform):
        big = run_experiment(
            platform, websearch(), ConstantTrace(0.3, 20), static_all_big(platform), seed=3
        )
        small = run_experiment(
            platform, websearch(), ConstantTrace(0.3, 20), static_all_small(platform), seed=3
        )
        assert small.energy_reduction_vs(big) > 0
        assert big.energy_reduction_vs(small) < 0
