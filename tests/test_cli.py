"""CLI argument validation: every parser.error path, plus fleet smoke.

``parser.error`` exits with status 2; these tests pin that contract for
the flag combinations the CLI rejects instead of silently ignoring.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main, render_stats
from repro.sim.batch import BatchRunner


def error_message(capsys) -> str:
    """The argparse error text of the call that just exited."""
    return capsys.readouterr().err


def test_parser_builds_and_lists_fleet():
    parser = build_parser()
    help_text = parser.format_help()
    assert "fleet" in help_text
    assert "--nodes" in help_text and "--balancer" in help_text


class TestRejections:
    def test_jobs_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "--jobs must be >= 1" in error_message(capsys)

    def test_jobs_negative_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--jobs", "-3"])
        assert excinfo.value.code == 2

    def test_workload_on_agnostic_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--workload", "memcached"])
        assert excinfo.value.code == 2
        assert "--workload only applies" in error_message(capsys)

    def test_nodes_on_non_fleet_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--nodes", "4"])
        assert excinfo.value.code == 2
        assert "--nodes only applies to 'fleet'" in error_message(capsys)

    def test_balancer_on_non_fleet_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig2", "--balancer", "power-aware"])
        assert excinfo.value.code == 2
        assert "--balancer only applies to 'fleet'" in error_message(capsys)

    def test_fleet_rejects_nonpositive_nodes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--nodes", "0"])
        assert excinfo.value.code == 2
        assert "--nodes must be >= 1" in error_message(capsys)

    def test_fleet_rejects_unknown_balancer(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--balancer", "coin-flip"])
        assert excinfo.value.code == 2  # argparse choices

    def test_cache_dir_must_be_directory(self, tmp_path, capsys):
        clash = tmp_path / "not-a-dir"
        clash.write_text("occupied")
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--cache-dir", str(clash)])
        assert excinfo.value.code == 2
        assert "not a directory" in error_message(capsys)

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2

    def test_output_on_non_bench_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--output", "somewhere.json"])
        assert excinfo.value.code == 2
        assert "--output only applies to 'bench'" in error_message(capsys)


class TestStatsSummary:
    """Formatting of the stderr cache/pool/wall summary lines."""

    def runner_with(self, tmp_path, **counters) -> BatchRunner:
        runner = BatchRunner(jobs=4, cache_dir=tmp_path)
        for name, value in counters.items():
            setattr(runner, name, value)
        return runner

    def test_cache_line_breaks_hits_down_by_tier(self, tmp_path):
        runner = self.runner_with(
            tmp_path, cache_hits=184, memory_hits=120, disk_hits=64,
            cache_misses=340,
        )
        (cache_line,) = render_stats(runner)
        assert cache_line == (
            f"[cache] 184 hit(s) (120 memory, 64 disk), "
            f"340 miss(es), corrupt=0 in {tmp_path}"
        )

    def test_pool_line_reports_dispatch_shape(self, tmp_path):
        runner = self.runner_with(
            tmp_path, cache_hits=5, pool_spawns=1, specs_dispatched=340,
            chunks_dispatched=83,
        )
        lines = render_stats(runner)
        assert lines[1] == (
            "[pool] 4 worker(s) (spawned 1 pool(s)), 340 spec(s) "
            "dispatched in 83 chunk(s), 5 served from cache"
        )

    def test_wall_line_lists_experiments_and_total(self, tmp_path):
        runner = self.runner_with(tmp_path)
        lines = render_stats(runner, [("fig1", 0.5), ("table3", 1.25)])
        assert lines[-1] == "[wall] fig1 0.50s | table3 1.25s | total 1.75s"

    def test_no_lines_for_plain_serial_uncached_runner(self):
        assert render_stats(BatchRunner()) == []

    def test_no_pool_line_before_any_spawn(self, tmp_path):
        lines = render_stats(self.runner_with(tmp_path))
        assert len(lines) == 1 and lines[0].startswith("[cache]")


class TestBenchSubcommand:
    @pytest.mark.parametrize("command", ["bench", "bench-batch"])
    @pytest.mark.parametrize(
        "flags",
        [
            ["--quick"],
            ["--seed", "7"],
            ["--jobs", "2"],
            ["--cache-dir", "/tmp/somewhere"],
        ],
    )
    def test_bench_rejects_fixed_protocol_knobs(self, command, flags, capsys):
        """The benchmark protocols are fixed; knobs they ignore error."""
        with pytest.raises(SystemExit) as excinfo:
            main([command, *flags])
        assert excinfo.value.code == 2
        assert f"does not apply to '{command}'" in error_message(capsys)

    def test_bench_accepts_output(self):
        args = build_parser().parse_args(["bench", "--output", "B.json"])
        assert args.experiment == "bench"
        assert args.output == "B.json"

    def test_bench_writes_report(self, tmp_path, monkeypatch, capsys):
        """`bench` measures, renders and writes the report file."""
        import repro.sim.bench as bench_mod

        def fake_measure_point(arrivals, collocate, **kwargs):
            return bench_mod.BenchPointResult(
                arrivals=arrivals,
                collocate=collocate,
                reference_ips=1000.0,
                optimized_ips=3456.0,
                speedup=3.46,
            )

        def fake_measure_epoch_point(name, arrivals, **kwargs):
            return bench_mod.EpochPointResult(
                name=name,
                arrivals=arrivals,
                reference_ips=10_000.0,
                optimized_ips=31_000.0,
                speedup=3.10,
            )

        monkeypatch.setattr(bench_mod, "measure_point", fake_measure_point)
        monkeypatch.setattr(
            bench_mod, "measure_epoch_point", fake_measure_epoch_point
        )
        out = tmp_path / "BENCH_engine.json"
        assert main(["bench", "--output", str(out)]) == 0
        report = bench_mod.load_report(out)
        assert report["schema"] == 1
        assert len(report["points"]) == len(bench_mod.BENCH_POINTS) + len(
            bench_mod.EPOCH_POINTS
        )
        assert "3.46x" in capsys.readouterr().out

    def test_bench_batch_writes_report(self, tmp_path, monkeypatch, capsys):
        """`bench-batch` measures, renders and writes the batch report."""
        import repro.sim.bench_batch as bb

        def fake_measure_all(pairs=bb.DEFAULT_PAIRS):
            result = bb.BenchPointResult(
                key="fleet-64/warm-memory",
                baseline_wall_s=1.2,
                optimized_wall_s=0.1,
                speedup=12.0,
                spec_requests=640,
            )
            return {result.key: result}

        monkeypatch.setattr(bb, "measure_all", fake_measure_all)
        out = tmp_path / "BENCH_batch.json"
        assert main(["bench-batch", "--output", str(out)]) == 0
        report = bb.load_report(out)
        assert report["schema"] == 2
        assert report["points"]["fleet-64/warm-memory"]["speedup"] == 12.0
        assert "12.00x" in capsys.readouterr().out


class TestFleetFlagsAccepted:
    def test_fleet_accepts_nodes_balancer_and_workload(self):
        """The fleet flags parse cleanly (validation only fires in main)."""
        args = build_parser().parse_args(
            ["fleet", "--nodes", "16", "--balancer", "least-loaded",
             "--workload", "websearch", "--quick"]
        )
        assert args.nodes == 16
        assert args.balancer == "least-loaded"
        assert args.workload == "websearch"

    @pytest.mark.slow
    def test_fleet_smoke(self, capsys):
        """End-to-end: a small quick fleet prints the cluster report."""
        assert main(["fleet", "--quick", "--nodes", "2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fleet --" in out
        assert "tail-of-tails" in out


class TestPackSubcommand:
    def write_pack(self, tmp_path):
        file = tmp_path / "smoke.yaml"
        file.write_text(
            "name: cli-smoke\n"
            "scenarios:\n"
            "  - family: edge-load\n"
            "    params: {workload: memcached, level: 0.5, duration_s: 20}\n"
        )
        return file

    def test_pack_requires_an_action(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["pack"])
        assert excinfo.value.code == 2
        assert "needs an action" in error_message(capsys)

    def test_unknown_action_suggests(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["pack", "validat"])
        assert excinfo.value.code == 2
        assert "did you mean 'validate'" in error_message(capsys)

    def test_validate_reports_bad_pack_with_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text(
            "name: broken\n"
            "scenarios:\n"
            "  - family: edge-lod\n"
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["pack", "validate", str(bad)])
        assert excinfo.value.code == 2
        err = error_message(capsys)
        assert "scenarios[0]" in err
        assert "did you mean 'edge-load'" in err

    def test_validate_ok(self, tmp_path, capsys):
        file = self.write_pack(tmp_path)
        assert main(["pack", "validate", str(file)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_list_shows_pack_table(self, tmp_path, capsys):
        file = self.write_pack(tmp_path)
        assert main(["pack", "list", str(file)]) == 0
        out = capsys.readouterr().out
        assert "cli-smoke" in out

    def test_missing_file_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["pack", "validate", "no-such-pack.yaml"])
        assert excinfo.value.code == 2
        assert "no-such-pack.yaml" in error_message(capsys)

    def test_pack_args_rejected_on_other_commands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "extra-arg"])
        assert excinfo.value.code == 2
        assert "pack arguments" in error_message(capsys)

    def test_workload_flag_rejected_for_pack(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["pack", "validate", "--workload", "memcached"])
        assert excinfo.value.code == 2
        assert "--workload" in error_message(capsys)

    @pytest.mark.slow
    def test_pack_run_writes_summary(self, tmp_path, capsys):
        file = self.write_pack(tmp_path)
        out_file = tmp_path / "summary.json"
        assert main(
            ["pack", "run", str(file), "--output", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "Pack -- cli-smoke" in out
        import json

        summary = json.loads(out_file.read_text())
        assert summary["pack"] == "cli-smoke"
        assert len(summary["items"]) == 1
