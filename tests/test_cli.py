"""CLI argument validation: every parser.error path, plus fleet smoke.

``parser.error`` exits with status 2; these tests pin that contract for
the flag combinations the CLI rejects instead of silently ignoring.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def error_message(capsys) -> str:
    """The argparse error text of the call that just exited."""
    return capsys.readouterr().err


def test_parser_builds_and_lists_fleet():
    parser = build_parser()
    help_text = parser.format_help()
    assert "fleet" in help_text
    assert "--nodes" in help_text and "--balancer" in help_text


class TestRejections:
    def test_jobs_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "--jobs must be >= 1" in error_message(capsys)

    def test_jobs_negative_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--jobs", "-3"])
        assert excinfo.value.code == 2

    def test_workload_on_agnostic_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--workload", "memcached"])
        assert excinfo.value.code == 2
        assert "--workload only applies" in error_message(capsys)

    def test_nodes_on_non_fleet_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--nodes", "4"])
        assert excinfo.value.code == 2
        assert "--nodes only applies to 'fleet'" in error_message(capsys)

    def test_balancer_on_non_fleet_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig2", "--balancer", "power-aware"])
        assert excinfo.value.code == 2
        assert "--balancer only applies to 'fleet'" in error_message(capsys)

    def test_fleet_rejects_nonpositive_nodes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--nodes", "0"])
        assert excinfo.value.code == 2
        assert "--nodes must be >= 1" in error_message(capsys)

    def test_fleet_rejects_unknown_balancer(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--balancer", "coin-flip"])
        assert excinfo.value.code == 2  # argparse choices

    def test_cache_dir_must_be_directory(self, tmp_path, capsys):
        clash = tmp_path / "not-a-dir"
        clash.write_text("occupied")
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--cache-dir", str(clash)])
        assert excinfo.value.code == 2
        assert "not a directory" in error_message(capsys)

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2


class TestFleetFlagsAccepted:
    def test_fleet_accepts_nodes_balancer_and_workload(self):
        """The fleet flags parse cleanly (validation only fires in main)."""
        args = build_parser().parse_args(
            ["fleet", "--nodes", "16", "--balancer", "least-loaded",
             "--workload", "websearch", "--quick"]
        )
        assert args.nodes == 16
        assert args.balancer == "least-loaded"
        assert args.workload == "websearch"

    @pytest.mark.slow
    def test_fleet_smoke(self, capsys):
        """End-to-end: a small quick fleet prints the cluster report."""
        assert main(["fleet", "--quick", "--nodes", "2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fleet --" in out
        assert "tail-of-tails" in out
