"""The stable facade: ``repro.api`` is the supported public surface."""

from __future__ import annotations

import warnings

import pytest

import repro
import repro.api as api
from repro.api import open_runner, run_pack, run_scenario, sweep
from repro.errors import ReproError, UnknownNameError, UnknownParamError
from repro.fleet.aggregate import FleetOutcome
from repro.fleet.spec import FleetSpec
from repro.scenarios.spec import ScenarioOutcome, ScenarioSpec, TraceSpec


class TestRunScenario:
    def test_family_name_builds_and_runs(self):
        outcome = run_scenario(
            "edge-load", workload="memcached", level=0.6, duration_s=30.0
        )
        assert isinstance(outcome, ScenarioOutcome)
        assert 0.0 <= outcome.result.qos_guarantee() <= 1.0

    def test_explicit_spec_runs_as_is(self):
        spec = ScenarioSpec(
            workload="memcached",
            trace=TraceSpec.constant(0.5, 30.0),
            manager="static-big",
        )
        outcome = run_scenario(spec)
        assert outcome.spec is spec

    def test_explicit_spec_rejects_params(self):
        spec = ScenarioSpec(
            workload="memcached",
            trace=TraceSpec.constant(0.5, 30.0),
            manager="static-big",
        )
        with pytest.raises(TypeError, match="family name"):
            run_scenario(spec, seed=3)

    def test_fleet_spec_returns_fleet_outcome(self):
        spec = FleetSpec(
            workload="memcached",
            trace=TraceSpec.constant(0.5, 20.0),
            manager="static-big",
            n_nodes=2,
            balancer="round-robin",
        )
        outcome = run_scenario(spec)
        assert isinstance(outcome, FleetOutcome)
        assert outcome.n_nodes == 2

    def test_fleet_family_through_facade(self):
        outcome = run_scenario(
            "fleet-ramp", workload="memcached", n_nodes=2,
            warmup_s=10.0, ramp_s=20.0, hold_s=10.0,
        )
        assert isinstance(outcome, FleetOutcome)

    def test_shared_runner_is_left_open(self):
        with open_runner() as runner:
            first = run_scenario(
                "edge-load", workload="memcached", level=0.5,
                duration_s=30.0, runner=runner,
            )
            second = run_scenario(
                "edge-load", workload="memcached", level=0.5,
                duration_s=30.0, runner=runner,
            )
        assert first.result.qos_guarantee() == second.result.qos_guarantee()


class TestErrors:
    def test_unknown_family_suggests(self):
        with pytest.raises(UnknownNameError, match="did you mean 'edge-load'"):
            run_scenario("edge-lod", workload="memcached")

    def test_unknown_param_suggests(self):
        with pytest.raises(UnknownParamError, match="did you mean 'level'"):
            run_scenario("edge-load", workload="memcached", levl=0.5)

    def test_errors_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            run_scenario("no-such-family")
        with pytest.raises(ReproError):
            run_scenario("edge-load", workload="memcached", bogus=1)

    def test_errors_still_catchable_as_builtins(self):
        """Old call sites caught KeyError/TypeError; both still work."""
        with pytest.raises(KeyError):
            run_scenario("no-such-family")
        with pytest.raises(TypeError):
            run_scenario("edge-load", workload="memcached", bogus=1)


class TestSweep:
    def test_grid_order_is_sorted_cartesian(self):
        results = sweep(
            "edge-load",
            {"seed": [1, 2], "level": [0.4, 0.8]},
            workload="memcached",
            duration_s=30.0,
        )
        assert [a for a, _ in results] == [
            {"level": 0.4, "seed": 1}, {"level": 0.4, "seed": 2},
            {"level": 0.8, "seed": 1}, {"level": 0.8, "seed": 2}]
        for _, outcome in results:
            assert isinstance(outcome, ScenarioOutcome)

    def test_assignment_reaches_the_spec(self):
        results = sweep(
            "edge-load", {"seed": [11, 12]},
            workload="memcached", level=0.5, duration_s=30.0,
        )
        assert [outcome.spec.seed for _, outcome in results] == [11, 12]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            sweep("edge-load", {"level": []}, workload="memcached")

    def test_shared_runner(self):
        with open_runner(jobs=2) as runner:
            results = sweep(
                "edge-load", {"level": [0.3, 0.9]},
                workload="memcached", duration_s=30.0, runner=runner,
            )
        assert len(results) == 2


class TestRunPackFacade:
    def test_run_pack_accepts_a_document(self):
        result = run_pack({
            "name": "inline",
            "scenarios": [{
                "scenario": {
                    "workload": "memcached", "manager": "static-big",
                    "trace": {"kind": "constant", "level": 0.5,
                              "duration_s": 20}}}],
        })
        assert result.summary()["pack"] == "inline"

    def test_run_pack_accepts_a_path(self, tmp_path):
        file = tmp_path / "p.yaml"
        file.write_text(
            "name: from-file\n"
            "scenarios:\n"
            "  - family: edge-load\n"
            "    params: {workload: memcached, level: 0.5, duration_s: 20}\n"
        )
        result = run_pack(file)
        assert result.summary()["pack"] == "from-file"
        assert result.summary()["source"].endswith("p.yaml")


class TestSurface:
    def test_facade_all_exports_exist(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_package_root_re_exports_the_facade(self):
        for name in ("run_scenario", "run_pack", "sweep", "open_runner",
                     "ReproError", "PackError"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_legacy_run_fleet_warns_but_works(self):
        from repro.fleet import run_fleet

        spec = FleetSpec(
            workload="memcached",
            trace=TraceSpec.constant(0.5, 20.0),
            manager="static-big",
            n_nodes=2,
            balancer="round-robin",
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = run_fleet(spec)
        assert isinstance(outcome, FleetOutcome)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
