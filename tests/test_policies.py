"""Tests for the task-manager interface and baseline policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.topology import Configuration
from repro.loadgen.traces import ConstantTrace, StepTrace
from repro.policies.base import Decision, ManagerContext, resolve_decision
from repro.policies.octopusman import OctopusMan, default_qos_safe
from repro.policies.static import static_all_big, static_all_small
from repro.policies.table_driven import TableDrivenPolicy
from repro.sim.engine import run_experiment
from repro.workloads.memcached import memcached
from repro.workloads.websearch import websearch


class TestDecision:
    def test_resolve_lc_clusters_keep_config_freq(self, platform):
        decision = resolve_decision(
            platform, Configuration(2, 2, 0.90, 0.65), collocate_batch=False
        )
        assert decision.big_freq_ghz == 0.90
        assert decision.small_freq_ghz == 0.65

    def test_hipsterin_parks_other_cluster_at_min(self, platform):
        decision = resolve_decision(
            platform, Configuration(0, 4, None, 0.65), collocate_batch=False
        )
        assert decision.big_freq_ghz == platform.big.min_freq_ghz
        assert decision.run_batch is False

    def test_hipsterco_races_other_cluster_to_max(self, platform):
        decision = resolve_decision(
            platform, Configuration(0, 4, None, 0.65), collocate_batch=True
        )
        assert decision.big_freq_ghz == platform.big.max_freq_ghz
        assert decision.run_batch is True

    def test_conflicting_frequency_rejected(self):
        with pytest.raises(ValueError, match="fixed by the configuration"):
            Decision(
                config=Configuration(2, 0, 1.15, None),
                big_freq_ghz=0.60,
                small_freq_ghz=0.65,
            )

    def test_manager_requires_start(self, platform):
        policy = static_all_big(platform)
        with pytest.raises(RuntimeError, match="not started"):
            _ = policy.ctx


class TestStatic:
    def test_static_big_shape(self, platform):
        policy = static_all_big(platform)
        policy.start(_ctx(platform))
        decision = policy.decide()
        assert decision.config.label == "2B-1.15"

    def test_static_small_shape(self, platform):
        policy = static_all_small(platform)
        policy.start(_ctx(platform))
        assert policy.decide().config.label == "4S-0.65"

    def test_static_never_migrates(self, platform):
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.5, 15), static_all_big(platform)
        )
        assert result.migration_events() == 0
        assert len(set(result.config_labels)) == 1


def _ctx(platform, workload=None):
    return ManagerContext(
        platform=platform,
        workload=workload or websearch(),
        interval_s=1.0,
        rng=np.random.default_rng(0),
    )


class TestOctopusMan:
    def test_descends_at_low_load(self, platform):
        result = run_experiment(
            platform, memcached(), ConstantTrace(0.15, 60), OctopusMan(), seed=3
        )
        labels = set(result.config_labels[30:])
        assert labels & {"1S-0.65", "2S-0.65", "3S-0.65"}

    def test_never_mixes_clusters(self, platform):
        result = run_experiment(
            platform, memcached(), ConstantTrace(0.6, 40), OctopusMan(), seed=3
        )
        for o in result:
            config = o.decision.config
            assert config.single_cluster_kind is not None

    def test_always_max_dvfs(self, platform):
        result = run_experiment(
            platform, memcached(), ConstantTrace(0.6, 40), OctopusMan(), seed=3
        )
        for o in result:
            config = o.decision.config
            if config.n_big:
                assert config.big_freq_ghz == platform.big.max_freq_ghz

    def test_climbs_under_load_step(self, platform):
        trace = StepTrace([(40, 0.15), (40, 0.95)])
        result = run_experiment(platform, memcached(), trace, OctopusMan(), seed=3)
        assert result.observations[-1].decision.config.label == "2B-1.15"

    def test_per_workload_default_safe(self):
        assert default_qos_safe("memcached") == 0.30
        assert default_qos_safe("websearch") == 0.45
        assert default_qos_safe("other") == 0.30


class TestTableDriven:
    def test_lookup_by_threshold(self, platform):
        table = [
            (0.3, Configuration(0, 2, None, 0.65)),
            (0.7, Configuration(0, 4, None, 0.65)),
            (1.0, Configuration(2, 0, 1.15, None)),
        ]
        policy = TableDrivenPolicy(table)
        assert policy.config_for(0.1).label == "2S-0.65"
        assert policy.config_for(0.5).label == "4S-0.65"
        assert policy.config_for(0.99).label == "2B-1.15"
        assert policy.config_for(1.2).label == "2B-1.15"

    def test_unsorted_table_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            TableDrivenPolicy(
                [
                    (0.7, Configuration(0, 4, None, 0.65)),
                    (0.3, Configuration(0, 2, None, 0.65)),
                ]
            )

    def test_follows_measured_load(self, platform):
        table = [
            (0.4, Configuration(0, 4, None, 0.65)),
            (1.0, Configuration(2, 0, 1.15, None)),
        ]
        trace = StepTrace([(20, 0.2), (20, 0.9)])
        result = run_experiment(
            platform, memcached(), trace, TableDrivenPolicy(table), seed=3
        )
        assert result.observations[10].config_label == "4S-0.65"
        assert result.observations[-1].config_label == "2B-1.15"


class TestEpochContract:
    """The optional stable_horizon/epoch_continue decision-epoch contract."""

    def started(self, policy, platform):
        from repro.policies.base import ManagerContext

        policy.start(
            ManagerContext(
                platform=platform,
                workload=memcached(),
                interval_s=1.0,
                rng=np.random.default_rng(0),
                batch_present=False,
            )
        )
        return policy

    def test_default_pins_scalar_path(self, platform):
        from repro.policies.base import TaskManager

        class Minimal(TaskManager):
            def decide(self):
                raise NotImplementedError

        manager = Minimal()
        assert manager.stable_horizon([0.1, 0.2, 0.3]) == 1
        assert manager.epoch_continue(0.1) is False

    def test_static_claims_whole_lookahead(self, platform):
        policy = self.started(static_all_big(platform), platform)
        policy.decide()
        assert policy.stable_horizon([0.1] * 40) == 40
        assert policy.stable_horizon([]) == 0
        assert policy.epoch_continue(0.99) is True
        assert policy.epoch_continue(0.0) is True

    def test_table_driven_bucket_stable_prefix(self, platform):
        table = [
            (0.3, Configuration(0, 2, None, 0.65)),
            (0.7, Configuration(0, 4, None, 0.65)),
            (1.0, Configuration(2, 0, 1.15, None)),
        ]
        policy = self.started(TableDrivenPolicy(table), platform)
        policy._last_load = 0.1
        policy.decide()
        # Prefix within the first bucket, cut at the 0.3 threshold.
        assert policy.stable_horizon([0.1, 0.25, 0.3, 0.5, 0.1]) == 3
        assert policy.stable_horizon([0.5, 0.1]) == 1
        assert policy.stable_horizon([0.2] * 10) == 10
        # Continuation follows the measured-load bucket, by identity.
        assert policy.epoch_continue(0.25) is True
        assert policy.epoch_continue(0.35) is False

    def test_feedback_policies_pin_scalar(self, platform):
        from repro.core.heuristic import HipsterHeuristicPolicy
        from repro.core.hipster import Hipster
        from repro.policies.base import TaskManager

        for cls in (OctopusMan, HipsterHeuristicPolicy, Hipster):
            assert cls.stable_horizon is not TaskManager.stable_horizon
            policy = cls()
            assert policy.stable_horizon([0.1] * 20) == 1
            # epoch_continue stays the default False: a horizon of one
            # plus no continuation keeps the engine's scalar loop.
            assert policy.epoch_continue(0.1) is False
