"""Integration tests: each experiment module reproduces its paper shape.

These run the quick (compressed) settings; the assertions target the
*direction and rough magnitude* of each paper claim, not exact numbers
(our substrate is a simulator, not the authors' Juno board).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig01_diurnal_power,
    fig02_efficiency,
    fig05_heuristic_traces,
    fig06_hipsterin_memcached,
    fig07_hipsterin_websearch,
    fig08_load_ramp,
    fig09_learning_time,
    fig10_bucket_size,
    fig11_collocation,
    fleet_scale,
    table1_workloads,
    table2_characterization,
    table3_summary,
)


@pytest.mark.slow
class TestFig1:
    def test_power_floor_high_despite_load_swings(self):
        result = fig01_diurnal_power.run(quick=True)
        lo, hi = result.load_range_percent
        assert lo < 20 and hi > 80  # load swings widely...
        assert result.min_power_percent > 50  # ...power does not
        assert "Figure 1" in result.render()


@pytest.mark.slow
class TestFig2:
    def test_hetcmp_beats_baseline_at_intermediate_loads(self):
        result = fig02_efficiency.run("memcached", quick=True)
        assert result.mean_efficiency_gain() >= 1.0
        mid = [
            (h, b)
            for h, b in zip(result.hetcmp, result.baseline)
            if h and b and 0.55 <= h.load <= 0.9
        ]
        assert mid
        assert any(
            h.throughput_per_watt > 1.1 * b.throughput_per_watt for h, b in mid
        )

    def test_state_machine_progression(self):
        """Low loads use small/cheap configs, the top uses big cores."""
        result = fig02_efficiency.run("memcached", quick=True)
        machine = result.state_machine
        assert machine[0][1] != machine[-1][1]
        top_config = machine[-1][1]
        assert top_config.startswith("2B")


@pytest.mark.slow
class TestFig5:
    def test_heuristic_explores_wider_space_than_octopus(self):
        result = fig05_heuristic_traces.run("memcached", quick=True)
        assert result.mixed_config_intervals("octopus-man") == 0
        assert result.mixed_config_intervals("hipster-heuristic") > 0
        assert result.distinct_big_freqs("hipster-heuristic") >= 2

    def test_static_has_best_qos(self):
        result = fig05_heuristic_traces.run("memcached", quick=True)
        static_qos = result.summaries["static-big"].qos_guarantee_pct
        for name in ("octopus-man", "hipster-heuristic"):
            assert result.summaries[name].qos_guarantee_pct <= static_qos


@pytest.mark.slow
class TestFig6And7:
    def test_fig7_exploitation_improves_qos(self):
        result = fig07_hipsterin_websearch.run(quick=True)
        assert result.exploitation.qos_guarantee() > result.learning.qos_guarantee()

    def test_fig6_runs_and_renders(self):
        result = fig06_hipsterin_memcached.run(quick=True)
        assert 0.7 < result.result.qos_guarantee() <= 1.0
        assert "HipsterIn" in result.render()


@pytest.mark.slow
class TestFig8:
    def test_hipster_adapts_better_than_octopus(self):
        result = fig08_load_ramp.run(quick=True)
        assert result.tardiness_ratio() > 1.0  # paper: 3.7x


@pytest.mark.slow
class TestFig9:
    def test_hipster_improves_with_time_octopus_flat(self):
        result = fig09_learning_time.run(quick=True)
        assert result.late_improvement() > 0.0
        assert len(result.hipster_windows) == len(result.octopus_windows)


@pytest.mark.slow
class TestFig10:
    def test_sweep_covers_paper_bucket_sizes(self):
        result = fig10_bucket_size.run(quick=True)
        ws = result.rows_for("websearch")
        mc = result.rows_for("memcached")
        assert [r.bucket_size for r in ws] == [0.03, 0.06, 0.09]
        assert [r.bucket_size for r in mc] == [0.02, 0.03, 0.04]
        for row in result.rows:
            assert row.energy_reduction_pct > 0


@pytest.mark.slow
class TestFig11:
    def test_hipsterco_beats_octopus_qos_with_less_energy(self):
        result = fig11_collocation.run(quick=True)
        assert result.mean_qos("hipster-co") > result.mean_qos("octopus-man")
        assert result.mean_energy("hipster-co") < result.mean_energy("octopus-man")


@pytest.mark.slow
class TestFleetScale:
    def test_power_scales_with_nodes_and_skew_tracks_policy(self):
        result = fleet_scale.run(
            quick=True, node_counts=(1, 4), balancers=("round-robin", "power-aware")
        )
        assert result.node_counts() == (1, 4)
        assert result.balancers() == ("round-robin", "power-aware")
        for balancer in result.balancers():
            small = result.row(balancer, 1)
            large = result.row(balancer, 4)
            # Total power grows roughly with fleet size...
            assert large.total_power_w > 3.0 * small.total_power_w
            # ...while per-node power stays in the single-board ballpark.
            assert 0.5 * small.total_power_w < large.power_per_node_w
            assert large.power_per_node_w < 2.0 * small.total_power_w
        # Consolidation is the whole point of power-aware balancing:
        # it must run visibly more utilization skew than an even deal.
        even = result.row("round-robin", 4)
        consolidated = result.row("power-aware", 4)
        assert consolidated.utilization_skew > even.utilization_skew + 0.05
        assert "Fleet scaling" in result.render()


class TestTables:
    def test_table1_edges_hold(self):
        result = table1_workloads.run(quick=True)
        assert all(row.edge_ok for row in result.rows)

    def test_table2_matches_paper_exactly(self):
        result = table2_characterization.run()
        assert result.big.power_all_cores_w == pytest.approx(2.30, abs=0.01)
        assert result.small.ips_one_core == pytest.approx(826e6, rel=0.001)
        assert result.single_core_efficiency_gain == pytest.approx(1.52, abs=0.03)
        assert result.cluster_efficiency_gain == pytest.approx(1.25, abs=0.03)

    @pytest.mark.slow
    def test_table3_orderings(self):
        result = table3_summary.run(quick=True)
        for workload in ("memcached", "websearch"):
            static_big = result.get("static-big", workload)
            static_small = result.get("static-small", workload)
            octopus = result.get("octopus-man", workload)
            hipster = result.get("hipster-in", workload)
            # Static big: best QoS, zero savings (the reference).
            assert static_big.qos_guarantee_pct >= hipster.qos_guarantee_pct
            assert static_big.energy_reduction_pct == 0.0
            # Static small: unacceptable QoS.
            assert static_small.qos_guarantee_pct < 80.0
            # HipsterIn must dominate Octopus-Man on at least one axis
            # without losing the other (in the full-length runs it wins
            # both; quick runs give the table less time to converge).
            qos_edge = hipster.qos_guarantee_pct - octopus.qos_guarantee_pct
            energy_edge = hipster.energy_reduction_pct - octopus.energy_reduction_pct
            assert (qos_edge > 0 and energy_edge > -5.0) or (
                energy_edge > 2.0 and qos_edge > -4.0
            )
            assert hipster.energy_reduction_pct > 5.0
