"""The correlated-fault resilience layer and its satellites.

Three concerns, in one suite:

* **Byte-identity with HEAD** -- golden pins (fingerprints, node
  fingerprints, a full-render hash) recorded *before* the resilience
  layer landed: faultless fleets and legacy independent fault clauses
  must not move by a byte.
* **Determinism of the new machinery** -- correlated clauses
  (rack-death / cascading-straggler / brownout-wave) lower to identical
  schedules on every call, stay isolated under the fixed-draw-order
  discipline (hypothesis fuzz over seeds and clause mixes), and a
  resilient fleet renders byte-identically serial vs ``--jobs 4``.
* **The robustness satellites** -- bounded quarantine, unknown
  ``REPRO_*`` warnings, and journal truncation after success.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro.fleet import (
    CORRELATED_KINDS,
    FaultClause,
    FleetSpec,
    lower_faults,
    split_with_timeline,
    timeline_multipliers,
)
from repro.fleet.balancer import build_balancer
from repro.scenarios.spec import TraceSpec
from repro.sim.batch import BatchRunner, DiskCache
from repro.sim.supervise import RetryPolicy, RunJournal

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the image bakes hypothesis in
    HAVE_HYPOTHESIS = False


def plain_fleet(**overrides) -> FleetSpec:
    params = dict(
        workload="memcached",
        trace=TraceSpec.constant(0.6, 60.0),
        manager="static-big",
        n_nodes=8,
        seed=5,
    )
    params.update(overrides)
    return FleetSpec(**params)


CORRELATED_FAULTS = (
    {
        "kind": "rack-death",
        "probability": 0.45,
        "earliest_s": 10.0,
        "latest_s": 30.0,
        "detection_s": 4.0,
        "repair_s": 15.0,
    },
    {
        "kind": "cascading-straggler",
        "probability": 0.25,
        "slowdown": 2.0,
        "duration_s": 10.0,
        "spread": 0.7,
        "detection_s": 2.0,
    },
)


def resilient_fleet(**overrides) -> FleetSpec:
    params = dict(
        balancer="least-loaded",
        topology={"rackA": 4, "rackB": 4},
        faults=CORRELATED_FAULTS,
        seed=3,
    )
    params.update(overrides)
    return plain_fleet(**params)


# ----------------------------------------------------------------------
# golden pins: byte-identity with the pre-resilience HEAD
# ----------------------------------------------------------------------


class TestGoldenPins:
    """Values recorded at the commit before this layer landed."""

    def test_faultless_fleet_fingerprint_unmoved(self):
        assert plain_fleet().fingerprint() == "47582b7e2ae43fe15313c3d1"

    def test_faultless_fleet_node_fingerprints_unmoved(self):
        expected = [
            "s2-lindley-v1-5241818d35632ac8bcbde5d6",
            "s2-lindley-v1-402d6c508d3219c1507e4fef",
            "s2-lindley-v1-ed319fe194ba27ea3e656e7f",
            "s2-lindley-v1-1e40c767a227d0c91154ca37",
            "s2-lindley-v1-6c14ed22b4f7166ecdcdbd90",
            "s2-lindley-v1-7e3fec9d7b1649b15a785692",
            "s2-lindley-v1-1e761a95c27a40ec96aa327c",
            "s2-lindley-v1-247c2e0ba212b9f74abd21be",
        ]
        actual = [spec.fingerprint() for spec in plain_fleet().node_specs()]
        assert actual == expected

    def test_faultless_fleet_render_unmoved(self):
        digest = hashlib.sha256(
            plain_fleet().run().render().encode()
        ).hexdigest()
        assert digest == (
            "865d6aed1ec8490d7a416cbd62f1e4edfa464b6fa06a759e985a02693ec0a5e4"
        )

    def test_registry_fleet_unmoved(self):
        from repro.scenarios import DEFAULT_REGISTRY

        spec = DEFAULT_REGISTRY.build(
            "fleet-diurnal",
            workload="memcached",
            n_nodes=8,
            balancer="least-loaded",
            quick=True,
        )
        assert spec.fingerprint() == "c26b5eed318bed02344f7b89"
        joined = ",".join(s.fingerprint() for s in spec.node_specs())
        assert hashlib.sha256(joined.encode()).hexdigest() == (
            "b110851edc13f4d9212e2ceda9e198954aefb7430d102967a52eccde72d04acd"
        )

    def test_legacy_fault_clauses_unmoved(self):
        spec = plain_fleet(
            seed=0,
            faults=(
                {"kind": "node-death", "probability": 0.3, "earliest_s": 10.0},
                {
                    "kind": "straggler",
                    "probability": 0.6,
                    "slowdown": 2.0,
                    "duration_s": 8.0,
                },
            ),
        )
        assert not spec.uses_resilience()
        assert spec.fingerprint() == "77c684b9ac3cf4b245e879ed"
        joined = ",".join(s.fingerprint() for s in spec.node_specs())
        assert hashlib.sha256(joined.encode()).hexdigest() == (
            "a0ba76a8b30f8208c150cae3bf29576cfedbe97c242f1e0cda04f92986f34082"
        )
        windows = [
            (e.node, e.kind, e.start_interval, e.end_interval)
            for e in spec.fault_schedule()
        ]
        assert windows == [
            (0, "node-death", 26, 60),
            (2, "node-death", 52, 60),
            (7, "node-death", 56, 60),
            (1, "straggler", 54, 60),
            (4, "straggler", 22, 30),
            (6, "straggler", 36, 44),
        ]
        assert all(
            e.detect_interval is None for e in spec.fault_schedule()
        )


# ----------------------------------------------------------------------
# lowering: clause validation and the draw-order discipline
# ----------------------------------------------------------------------


class TestCorrelatedClauses:
    def test_new_kinds_validate(self):
        for clause in CORRELATED_FAULTS:
            parsed = FaultClause.from_params(clause)
            assert parsed.uses_timeline()
        wave = FaultClause.from_params(
            {
                "kind": "brownout-wave",
                "probability": 1.0,
                "factor": 0.5,
                "duration_s": 10.0,
            }
        )
        assert wave.capacity_multiplier() == 0.5

    def test_legacy_clause_with_detection_uses_timeline(self):
        clause = FaultClause.from_params(
            {"kind": "node-death", "probability": 0.5, "detection_s": 3.0}
        )
        assert clause.uses_timeline()
        plain = FaultClause.from_params(
            {"kind": "node-death", "probability": 0.5}
        )
        assert not plain.uses_timeline()

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="spread"):
            FaultClause.from_params(
                {
                    "kind": "cascading-straggler",
                    "probability": 0.5,
                    "slowdown": 2.0,
                    "duration_s": 5.0,
                    "spread": 1.5,
                }
            )
        with pytest.raises(ValueError, match="repair_s"):
            FaultClause.from_params(
                {"kind": "node-death", "probability": 0.5, "repair_s": -1.0}
            )
        with pytest.raises(ValueError, match="detection_s"):
            FaultClause.from_params(
                {"kind": "node-death", "probability": 0.5, "detection_s": -2.0}
            )
        with pytest.raises(TypeError, match="did you mean"):
            FaultClause.from_params(
                {"kind": "rack-death", "probability": 0.5, "earliest": 3.0}
            )

    def test_rack_death_strikes_whole_racks(self):
        racks = (("a", (0, 1, 2)), ("b", (3, 4, 5)))
        events = lower_faults(
            ({"kind": "rack-death", "probability": 1.0},),
            seed=7,
            n_nodes=6,
            n_intervals=50,
            interval_s=1.0,
            racks=racks,
        )
        by_rack = {}
        for event in events:
            by_rack.setdefault(event.start_interval, set()).add(event.node)
        assert set(map(frozenset, by_rack.values())) <= {
            frozenset({0, 1, 2}),
            frozenset({3, 4, 5}),
        }

    def test_brownout_wave_staggers_racks_in_block_order(self):
        racks = (("a", (0, 1)), ("b", (2, 3)))
        events = lower_faults(
            (
                {
                    "kind": "brownout-wave",
                    "probability": 1.0,
                    "factor": 0.5,
                    "duration_s": 5.0,
                    "stagger_s": 10.0,
                    "latest_s": 5.0,
                },
            ),
            seed=1,
            n_nodes=4,
            n_intervals=60,
            interval_s=1.0,
            racks=racks,
        )
        starts = {e.node: e.start_interval for e in events}
        assert starts[2] - starts[0] == 10
        assert starts[0] == starts[1] and starts[2] == starts[3]

    def test_repair_bounds_the_window(self):
        events = lower_faults(
            (
                {
                    "kind": "node-death",
                    "probability": 1.0,
                    "latest_s": 0.0,
                    "repair_s": 7.0,
                    "detection_s": 2.0,
                },
            ),
            seed=0,
            n_nodes=2,
            n_intervals=40,
            interval_s=1.0,
        )
        assert len(events) == 2
        for event in events:
            assert event.end_interval == event.start_interval + 7
            assert event.detect_interval == event.start_interval + 2

    def test_lead_probability_never_reshuffles_the_tail_clause(self):
        """The fixed draw budget: a leading clause consumes the same
        variate count whether or not it fires, so editing its
        probability never moves the trailing clause's events."""
        tail = {
            "kind": "cascading-straggler",
            "probability": 0.4,
            "slowdown": 2.0,
            "duration_s": 8.0,
        }
        kwargs = dict(
            seed=11,
            n_nodes=6,
            n_intervals=80,
            interval_s=1.0,
            racks=(("a", (0, 1, 2)), ("b", (3, 4, 5))),
        )
        baseline = None
        for probability in (0.0, 0.5, 1.0):
            lead = {"kind": "rack-death", "probability": probability}
            combined = lower_faults((lead, tail), **kwargs)
            tail_events = tuple(
                e for e in combined if e.kind == "cascading-straggler"
            )
            if baseline is None:
                baseline = tail_events
            assert tail_events == baseline
        assert baseline  # the tail clause actually fired somewhere


if HAVE_HYPOTHESIS:

    @st.composite
    def clause_lists(draw):
        clauses = []
        n = draw(st.integers(min_value=1, max_value=3))
        for _ in range(n):
            kind = draw(
                st.sampled_from(
                    [
                        "node-death",
                        "degradation",
                        "straggler",
                        "rack-death",
                        "cascading-straggler",
                        "brownout-wave",
                    ]
                )
            )
            clause = {
                "kind": kind,
                "probability": draw(
                    st.floats(min_value=0.0, max_value=1.0)
                ),
            }
            if kind == "degradation" or kind == "brownout-wave":
                clause["factor"] = 0.5
            if kind in ("straggler", "cascading-straggler", "brownout-wave"):
                clause["duration_s"] = draw(
                    st.floats(min_value=1.0, max_value=30.0)
                )
            if kind in ("straggler", "cascading-straggler"):
                clause["slowdown"] = 2.0
            if draw(st.booleans()):
                clause["detection_s"] = draw(
                    st.floats(min_value=0.0, max_value=10.0)
                )
            clauses.append(clause)
        return tuple(clauses)

    class TestLoweringFuzz:
        @settings(
            max_examples=60,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(
            clauses=clause_lists(),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            n_nodes=st.integers(min_value=1, max_value=12),
        )
        def test_lowering_is_deterministic(self, clauses, seed, n_nodes):
            racks = None
            if n_nodes >= 2:
                half = n_nodes // 2
                racks = (
                    ("a", tuple(range(half))),
                    ("b", tuple(range(half, n_nodes))),
                )
            kwargs = dict(
                seed=seed,
                n_nodes=n_nodes,
                n_intervals=60,
                interval_s=1.0,
                racks=racks,
            )
            first = lower_faults(clauses, **kwargs)
            assert lower_faults(clauses, **kwargs) == first
            for event in first:
                assert 0 <= event.start_interval < event.end_interval <= 60
                assert 0 <= event.node < n_nodes
                if event.detect_interval is not None:
                    assert (
                        event.start_interval
                        <= event.detect_interval
                        <= event.end_interval
                    )

        @settings(max_examples=30, deadline=None)
        @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
        def test_known_dead_is_subset_of_physically_dead(self, seed):
            events = lower_faults(
                CORRELATED_FAULTS,
                seed=seed,
                n_nodes=6,
                n_intervals=60,
                interval_s=1.0,
                racks=(("a", (0, 1, 2)), ("b", (3, 4, 5))),
            )
            physical, known = timeline_multipliers(
                events, n_nodes=6, n_intervals=60
            )
            # Wherever the balancer believes a node is dead, it is dead.
            assert np.all(physical[known == 0.0] == 0.0)


# ----------------------------------------------------------------------
# the timeline split
# ----------------------------------------------------------------------


class TestTimelineSplit:
    def test_undetected_death_spills_onto_survivors(self):
        from repro.fleet.faults import FaultEvent

        loads = np.full(20, 0.5)
        capacities = np.ones(4)
        balancer = build_balancer("round-robin", ())
        events = (
            FaultEvent(
                node=0,
                kind="node-death",
                start_interval=5,
                end_interval=15,
                multiplier=0.0,
                detect_interval=10,
            ),
        )
        levels = split_with_timeline(loads, capacities, balancer, events)
        # Before the fault: even split.
        assert np.allclose(levels[0], 0.5)
        # Undetected window: node0 serves nothing, its share spills
        # uniformly onto the three survivors.
        assert np.all(levels[5:10, 0] == 0.0)
        assert np.allclose(levels[5:10, 1:], 0.5 + 0.5 / 3)
        # Post-detection: the balancer re-splits over the survivors.
        assert np.all(levels[10:15, 0] == 0.0)
        assert np.allclose(levels[10:15, 1:], 2.0 / 3)
        # Post-repair: back to the even split.
        assert np.allclose(levels[15:], 0.5)

    def test_total_death_raises(self):
        from repro.fleet.faults import FaultEvent

        loads = np.full(10, 0.5)
        balancer = build_balancer("round-robin", ())
        events = tuple(
            FaultEvent(
                node=node,
                kind="node-death",
                start_interval=2,
                end_interval=8,
                multiplier=0.0,
            )
            for node in range(2)
        )
        with pytest.raises(ValueError, match="kills every node"):
            split_with_timeline(loads, np.ones(2), balancer, events)

    def test_resilient_fleet_runs_serial_equals_jobs4(self):
        spec = resilient_fleet()
        serial = spec.run(BatchRunner(jobs=1))
        with BatchRunner(jobs=4) as runner:
            parallel = resilient_fleet().run(runner)
        assert serial.render() == parallel.render()
        assert serial.resilience_report() == parallel.resilience_report()

    def test_seed_changes_the_schedule(self):
        schedules = {
            resilient_fleet(seed=seed).fault_schedule() for seed in range(6)
        }
        assert len(schedules) > 1


# ----------------------------------------------------------------------
# spec plumbing: topology, fingerprints, gating
# ----------------------------------------------------------------------


class TestSpecPlumbing:
    def test_topology_must_sum_to_n_nodes(self):
        with pytest.raises(ValueError, match="topology rack counts sum"):
            plain_fleet(topology={"a": 3, "b": 3})
        with pytest.raises(ValueError, match="positive ints"):
            plain_fleet(topology={"a": 0, "b": 8})

    def test_rack_blocks_default_and_sorted(self):
        assert plain_fleet().rack_blocks() == (
            ("rack0", tuple(range(8))),
        )
        spec = plain_fleet(topology={"zone-b": 5, "zone-a": 3})
        assert spec.rack_blocks() == (
            ("zone-a", (0, 1, 2)),
            ("zone-b", (3, 4, 5, 6, 7)),
        )

    def test_topology_alone_engages_resilience(self):
        spec = plain_fleet(topology={"a": 4, "b": 4})
        assert spec.uses_resilience()
        assert spec.fingerprint() != plain_fleet().fingerprint()

    def test_detection_on_legacy_kind_moves_fingerprint(self):
        base = plain_fleet(
            faults=({"kind": "node-death", "probability": 0.3},)
        )
        detected = plain_fleet(
            faults=(
                {
                    "kind": "node-death",
                    "probability": 0.3,
                    "detection_s": 5.0,
                },
            )
        )
        assert not base.uses_resilience()
        assert detected.uses_resilience()
        assert base.fingerprint() != detected.fingerprint()

    def test_correlated_kinds_registered(self):
        from repro.fleet import FAULT_KINDS

        assert CORRELATED_KINDS <= set(FAULT_KINDS)

    def test_pack_dsl_accepts_topology_and_correlated_clauses(self):
        from repro.packs import compile_pack

        pack = compile_pack(
            {
                "name": "drill",
                "scenarios": [
                    {
                        "fleet": {
                            "workload": "memcached",
                            "manager": "static-big",
                            "n_nodes": 4,
                            "topology": {"a": 2, "b": 2},
                            "trace": {
                                "kind": "constant",
                                "level": 0.5,
                                "duration_s": 60,
                            },
                            "faults": [
                                {
                                    "kind": "rack-death",
                                    "probability": 0.5,
                                    "detection_s": 3,
                                    "repair_s": 20,
                                }
                            ],
                        }
                    }
                ],
            }
        )
        pack.validate_buildable()
        (item,) = pack.items
        assert item.spec.uses_resilience()


# ----------------------------------------------------------------------
# the resilience report
# ----------------------------------------------------------------------


class TestResilienceReport:
    def test_plain_fleet_has_no_report(self):
        outcome = plain_fleet(n_nodes=3).run()
        assert outcome.resilience_report() is None
        assert "resilience:" not in outcome.render()

    def test_report_fields_and_render(self):
        outcome = resilient_fleet().run()
        report = outcome.resilience_report()
        assert report is not None
        events = resilient_fleet().fault_schedule()
        assert report.n_events == len(events)
        assert report.nodes_faulted == len({e.node for e in events})
        assert report.nodes_affected >= report.nodes_faulted
        assert report.blast_radius == pytest.approx(
            report.nodes_affected / report.nodes_faulted
        )
        assert 0.0 <= report.qos_during_faults <= 1.0
        assert report.degradation_depth >= 0.0
        assert report.time_to_recover_s_max >= report.time_to_recover_s_mean
        assert report.overload_peak_level > 1.0
        assert report.peak_tail_ratio is not None
        rendered = outcome.render()
        assert "resilience:" in rendered
        assert "blast radius" in rendered
        payload = json.dumps(report.as_dict())
        assert "degradation_depth" in payload

    def test_pack_summary_carries_resilience(self, tmp_path):
        from repro.packs import run_pack

        result = run_pack("packs/rack-outage.yaml", quick=True)
        summary = result.summary()
        resilient = [
            item for item in summary["items"] if "resilience" in item
        ]
        assert len(resilient) == 3  # rack-outage x2 replicas + brownout
        for item in resilient:
            report = item["resilience"]
            assert {
                "blast_radius",
                "degradation_depth",
                "time_to_recover_s_mean",
            } <= set(report)
        reference = [
            item
            for item in summary["items"]
            if item["key"] == "no-faults-reference"
        ]
        assert reference and "resilience" not in reference[0]
        assert "blast radius" in result.render()


# ----------------------------------------------------------------------
# satellites: quarantine bound, env warnings, journal truncation
# ----------------------------------------------------------------------


class TestQuarantineBound:
    def test_oldest_evicted_past_entry_bound(self, tmp_path):
        cache = DiskCache(tmp_path, quarantine_max_entries=3)
        cache.quarantine_path.mkdir(parents=True)
        for i in range(6):
            path = cache.quarantine_path / f"entry{i}.pkl"
            path.write_bytes(b"x" * 10)
            os.utime(path, (1000 + i, 1000 + i))
        cache._bound_quarantine()
        survivors = sorted(p.name for p in cache.quarantine_path.iterdir())
        assert survivors == ["entry3.pkl", "entry4.pkl", "entry5.pkl"]
        assert cache.quarantine_evictions == 3

    def test_size_bound_evicts_oldest_first(self, tmp_path):
        cache = DiskCache(tmp_path, quarantine_max_bytes=25)
        cache.quarantine_path.mkdir(parents=True)
        for i in range(4):
            path = cache.quarantine_path / f"blob{i}"
            path.write_bytes(b"y" * 10)
            os.utime(path, (2000 + i, 2000 + i))
        cache._bound_quarantine()
        survivors = sorted(p.name for p in cache.quarantine_path.iterdir())
        assert survivors == ["blob2", "blob3"]
        assert cache.quarantine_evictions == 2

    def test_quarantining_a_corrupt_entry_triggers_the_bound(
        self, tmp_path, capsys
    ):
        cache = DiskCache(tmp_path, quarantine_max_entries=1)
        cache.quarantine_path.mkdir(parents=True)
        old = cache.quarantine_path / "ancient.pkl"
        old.write_bytes(b"z")
        os.utime(old, (100, 100))
        bad = tmp_path / "corrupt.pkl"
        bad.write_bytes(b"not a pickle")
        cache._quarantine_file(bad)
        assert not bad.exists()
        names = {p.name for p in cache.quarantine_path.iterdir()}
        assert names == {"corrupt.pkl"}
        assert cache.quarantine_evictions == 1

    def test_eviction_count_reaches_fault_line(self, tmp_path):
        from repro.cli import render_stats

        with BatchRunner(cache_dir=tmp_path) as runner:
            runner.disk.quarantine_evictions = 4
            lines = render_stats(runner)
        fault_lines = [line for line in lines if line.startswith("[fault]")]
        assert fault_lines and "4 quarantine eviction(s)" in fault_lines[0]


class TestEnvWarnings:
    def test_unknown_repro_var_warns_with_suggestion(
        self, monkeypatch, capsys
    ):
        import repro.sim.supervise as supervise

        monkeypatch.setattr(supervise, "_warned_env", set())
        monkeypatch.setenv("REPRO_MAX_DISPATCH", "9")
        RetryPolicy.from_env()
        err = capsys.readouterr().err
        assert "unrecognized REPRO_MAX_DISPATCH" in err
        assert "did you mean 'REPRO_MAX_DISPATCHES'" in err

    def test_known_vars_do_not_warn(self, monkeypatch, capsys):
        import repro.sim.supervise as supervise

        monkeypatch.setattr(supervise, "_warned_env", set())
        monkeypatch.setenv("REPRO_MAX_DISPATCHES", "7")
        monkeypatch.setenv("REPRO_CHAOS", "crash:0.1")
        policy = RetryPolicy.from_env()
        assert policy.max_dispatches == 7
        assert "unrecognized" not in capsys.readouterr().err

    def test_warns_once_per_process(self, monkeypatch, capsys):
        import repro.sim.supervise as supervise

        monkeypatch.setattr(supervise, "_warned_env", set())
        monkeypatch.setenv("REPRO_BOGUS", "1")
        RetryPolicy.from_env()
        RetryPolicy.from_env()
        assert capsys.readouterr().err.count("REPRO_BOGUS") == 1


class TestJournalTruncation:
    def test_truncate_empties_and_rereads_as_fresh(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = RunJournal.open(path, {"command": "all"})
        journal.record("abc")
        journal.record("def")
        assert path.stat().st_size > 0
        journal.truncate()
        assert path.stat().st_size == 0
        assert journal.completed == set()
        # An empty journal reads as no journal: resume starts fresh.
        resumed = RunJournal.open(path, {"command": "all"}, resume=True)
        assert not resumed.resumed and resumed.completed == set()

    def test_successful_cli_run_truncates_journal(self, tmp_path):
        from repro.cli import main
        from repro.sim.supervise import JOURNAL_NAME

        code = main(
            ["fig2", "--quick", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        journal = tmp_path / JOURNAL_NAME
        assert journal.exists() and journal.stat().st_size == 0

    def test_finish_journal_keeps_failed_runs(self, tmp_path):
        from repro.cli import _finish_journal

        runner = BatchRunner(cache_dir=tmp_path)
        runner.journal = RunJournal.open(
            tmp_path / "journal.log", {"command": "x"}
        )
        runner.journal.record("abc")
        runner.specs_failed = 1
        _finish_journal(runner)
        assert (tmp_path / "journal.log").stat().st_size > 0
        runner.specs_failed = 0
        _finish_journal(runner)
        assert (tmp_path / "journal.log").stat().st_size == 0
