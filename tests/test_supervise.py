"""Tests for the fault-tolerance layer: supervised pool recovery,
poison-spec isolation, watchdog timeouts, degraded serial mode, the
run journal and crash-safe resume.

Worker faults are injected with :mod:`repro.sim.chaos` (the config
rides the environment into forked workers); everything asserts the
standing determinism contract -- no crash/retry/resume history may
change a result.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import (
    ExecutionError,
    ResumeMismatchError,
    RunInterruptedError,
    SpecFailedError,
    SpecTimeoutError,
    WorkerCrashError,
)
from repro.scenarios import ScenarioSpec, TraceSpec
from repro.sim import batch, chaos
from repro.sim.batch import BatchRunner
from repro.sim.supervise import RetryPolicy, RunJournal


def tiny_specs() -> list[ScenarioSpec]:
    base = ScenarioSpec(
        workload="memcached",
        trace=TraceSpec.constant(0.6, 15.0),
        manager="static-big",
    )
    return list(base.sweep(manager=["static-big", "octopus-man"], seed=[1, 2]))


def assert_same_results(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.spec == right.spec
        assert left.manager_stats == right.manager_stats
        assert left.result.observations == right.result.observations


@pytest.fixture(scope="module")
def golden():
    """Fault-free serial outcomes for ``tiny_specs()`` (the reference)."""
    return BatchRunner(jobs=1).run(tiny_specs())


def _collect(runner: BatchRunner, specs):
    """Split an ``on_failure="yield"`` run into outcomes and errors."""
    outcomes, errors = {}, {}
    for index, result in runner.iter_run(specs, on_failure="yield"):
        (errors if isinstance(result, ExecutionError) else outcomes)[
            index
        ] = result
    return outcomes, errors


class TestRetryPolicy:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_DISPATCHES", "7")
        monkeypatch.setenv("REPRO_TIMEOUT_FLOOR_S", "12.5")
        policy = RetryPolicy.from_env()
        assert policy.max_dispatches == 7
        assert policy.timeout_floor_s == 12.5
        assert policy.max_pool_rebuilds == 5  # untouched default

    def test_malformed_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_DISPATCHES", "not-a-number")
        assert RetryPolicy.from_env().max_dispatches == 3

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.5)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(10) == 0.5

    def test_watchdog_disabled_by_nonpositive_floor(self):
        assert RetryPolicy(timeout_floor_s=0).chunk_timeout_s(1e9) == math.inf
        policy = RetryPolicy(timeout_floor_s=10, timeout_per_cost_s=0.5)
        assert policy.chunk_timeout_s(100) == pytest.approx(60.0)


class TestSupervisedPool:
    def test_transient_worker_crash_recovered(self, tmp_path, golden):
        """The headline property: a worker crash mid-chunk costs a pool
        rebuild and a retry, never a result."""
        specs = tiny_specs()
        config = chaos.ChaosConfig(
            seed=0,
            state_dir=str(tmp_path / "state"),
            crash_fingerprints=(specs[0].fingerprint(),),
        )
        with chaos.active_config(config):
            with BatchRunner(jobs=2) as runner:
                outcomes = runner.run(specs)
        assert_same_results(golden, outcomes)
        assert runner.worker_crashes >= 1
        assert runner.pool_rebuilds >= 1
        assert chaos.fired_markers(tmp_path / "state")

    def test_poison_spec_isolated_to_worker_crash_error(self, golden):
        """Bisection + solo confirmation blame exactly the poison spec;
        every other spec completes with untouched results."""
        specs = tiny_specs()
        victim = specs[1].fingerprint()
        config = chaos.ChaosConfig(seed=0, poison_fingerprints=(victim,))
        with chaos.active_config(config):
            with BatchRunner(jobs=2) as runner:
                outcomes, errors = _collect(runner, specs)
        assert set(errors) == {1}
        error = errors[1]
        assert isinstance(error, WorkerCrashError)
        assert error.fingerprint == victim
        assert victim in str(error)
        assert sorted(outcomes) == [0, 2, 3]
        assert_same_results(
            [golden[0], golden[2], golden[3]],
            [outcomes[0], outcomes[2], outcomes[3]],
        )
        assert runner.specs_failed == 1

    def test_poison_spec_raises_after_batch_completes(self):
        """Default ``on_failure="raise"``: the error surfaces only after
        every other spec has been yielded."""
        specs = tiny_specs()
        victim = specs[0].fingerprint()
        config = chaos.ChaosConfig(seed=0, poison_fingerprints=(victim,))
        seen = []
        with chaos.active_config(config):
            with BatchRunner(jobs=2) as runner:
                with pytest.raises(WorkerCrashError) as exc_info:
                    for index, _ in runner.iter_run(specs):
                        seen.append(index)
        assert exc_info.value.fingerprint == victim
        assert sorted(seen) == [1, 2, 3]

    def test_transient_hang_tripped_by_watchdog_and_retried(
        self, tmp_path, golden
    ):
        """A hung worker is killed at the watchdog deadline and the
        chunk retried; the once-only hang lets the retry complete."""
        specs = tiny_specs()
        config = chaos.ChaosConfig(
            seed=0,
            state_dir=str(tmp_path / "state"),
            hang_fingerprints=(specs[0].fingerprint(),),
            hang_s=60.0,
        )
        policy = RetryPolicy(
            timeout_floor_s=3.0, timeout_per_cost_s=0.0, backoff_base_s=0.01
        )
        with chaos.active_config(config):
            with BatchRunner(jobs=2, retry_policy=policy) as runner:
                outcomes = runner.run(specs)
        assert_same_results(golden, outcomes)
        assert runner.spec_timeouts >= 1

    def test_repeated_hang_becomes_spec_timeout_error(self, golden):
        """A spec that hangs on *every* dispatch (no once-only marker)
        ends in SpecTimeoutError naming it; batch-mates complete."""
        specs = tiny_specs()
        victim = specs[2].fingerprint()
        config = chaos.ChaosConfig(
            seed=0, hang_fingerprints=(victim,), hang_s=60.0
        )
        policy = RetryPolicy(
            max_dispatches=2,
            timeout_floor_s=1.0,
            timeout_per_cost_s=0.0,
            backoff_base_s=0.01,
        )
        with chaos.active_config(config):
            with BatchRunner(jobs=2, retry_policy=policy) as runner:
                outcomes, errors = _collect(runner, specs)
        assert set(errors) == {2}
        error = errors[2]
        assert isinstance(error, SpecTimeoutError)
        assert error.fingerprint == victim
        assert error.timeout_s == pytest.approx(1.0)
        assert_same_results(
            [golden[0], golden[1], golden[3]],
            [outcomes[0], outcomes[1], outcomes[3]],
        )

    def test_degrades_to_serial_when_pool_keeps_dying(self, golden):
        """Past ``max_pool_rebuilds`` the batch finishes in-process:
        chaos only injects inside pool workers, so degraded serial
        execution completes every spec -- slower, never dead."""
        specs = tiny_specs()
        config = chaos.ChaosConfig(
            seed=0,
            poison_fingerprints=tuple(s.fingerprint() for s in specs),
        )
        policy = RetryPolicy(max_pool_rebuilds=1, backoff_base_s=0.01)
        with chaos.active_config(config):
            with BatchRunner(jobs=2, retry_policy=policy) as runner:
                outcomes = runner.run(specs)
        assert runner.degraded
        assert runner.worker_crashes >= 2
        assert_same_results(golden, outcomes)


class TestSpecExceptions:
    def test_serial_engine_exception_isolated(self, monkeypatch, golden):
        specs = tiny_specs()
        bad = specs[2].fingerprint()
        real = batch.execute_scenario

        def flaky(spec):
            if spec.fingerprint() == bad:
                raise RuntimeError("engine blew up")
            return real(spec)

        monkeypatch.setattr(batch, "execute_scenario", flaky)
        runner = BatchRunner()
        outcomes, errors = _collect(runner, specs)
        assert set(errors) == {2}
        assert isinstance(errors[2], SpecFailedError)
        assert errors[2].exception_type == "RuntimeError"
        assert runner.specs_failed == 1
        assert_same_results(
            [golden[0], golden[1], golden[3]],
            [outcomes[0], outcomes[1], outcomes[3]],
        )

    def test_serial_engine_exception_raises_after_batch(self, monkeypatch):
        specs = tiny_specs()
        bad = specs[0].fingerprint()
        real = batch.execute_scenario

        def flaky(spec):
            if spec.fingerprint() == bad:
                raise RuntimeError("engine blew up")
            return real(spec)

        monkeypatch.setattr(batch, "execute_scenario", flaky)
        seen = []
        runner = BatchRunner()
        with pytest.raises(SpecFailedError):
            for index, _ in runner.iter_run(specs):
                seen.append(index)
        assert sorted(seen) == [1, 2, 3]

    def test_pool_engine_exception_isolated(self, monkeypatch, golden):
        """A Python exception inside a pooled spec comes back as a
        SpecFailure proxy, not a lost chunk: chunk-mates keep results
        and nothing is retried (failures are deterministic by purity).
        """
        specs = tiny_specs()
        bad = specs[1].fingerprint()
        real = ScenarioSpec.run

        def flaky(self):
            if self.fingerprint() == bad:
                raise ValueError("boom")
            return real(self)

        monkeypatch.setattr(ScenarioSpec, "run", flaky)
        with BatchRunner(jobs=2) as runner:
            outcomes, errors = _collect(runner, specs)
        assert set(errors) == {1}
        assert isinstance(errors[1], SpecFailedError)
        assert errors[1].exception_type == "ValueError"
        assert runner.worker_crashes == 0  # the worker survived
        assert_same_results(
            [golden[0], golden[2], golden[3]],
            [outcomes[0], outcomes[2], outcomes[3]],
        )

    def test_failures_are_not_cached(self, monkeypatch, tmp_path, golden):
        specs = tiny_specs()
        bad = specs[0].fingerprint()
        real = batch.execute_scenario

        def flaky(spec):
            if spec.fingerprint() == bad:
                raise RuntimeError("transient infra issue")
            return real(spec)

        monkeypatch.setattr(batch, "execute_scenario", flaky)
        runner = BatchRunner(cache_dir=tmp_path)
        _, errors = _collect(runner, specs)
        assert set(errors) == {0}
        monkeypatch.setattr(batch, "execute_scenario", real)

        healed = BatchRunner(cache_dir=tmp_path)
        outcomes = healed.run(specs)
        assert healed.cache_misses == 1  # only the failed spec re-runs
        assert_same_results(golden, outcomes)


class TestRunJournal:
    HEADER = {"command": "all", "seed": 1, "quick": True}

    def test_fresh_journal_records_and_reloads(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = RunJournal.open(path, self.HEADER)
        assert not journal.resumed and journal.completed == set()
        journal.record("fp-a")
        journal.record("fp-b")
        journal.record("fp-a")  # idempotent
        assert journal.recorded == 2

        resumed = RunJournal.open(path, self.HEADER, resume=True)
        assert resumed.resumed
        assert resumed.completed == {"fp-a", "fp-b"}

    def test_resume_with_different_header_refuses(self, tmp_path):
        path = tmp_path / "journal.log"
        RunJournal.open(path, self.HEADER).record("fp-a")
        with pytest.raises(ResumeMismatchError):
            RunJournal.open(path, {**self.HEADER, "seed": 2}, resume=True)

    def test_open_without_resume_truncates(self, tmp_path):
        path = tmp_path / "journal.log"
        RunJournal.open(path, self.HEADER).record("fp-a")
        fresh = RunJournal.open(path, self.HEADER)
        assert fresh.completed == set()
        reread = RunJournal.open(path, self.HEADER, resume=True)
        assert reread.completed == set()

    def test_torn_tail_line_ignored(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = RunJournal.open(path, self.HEADER)
        journal.record("fp-a")
        with path.open("ab") as fh:
            fh.write(b"fp-torn-no-newline")
        resumed = RunJournal.open(path, self.HEADER, resume=True)
        assert resumed.completed == {"fp-a"}

    def test_resume_of_missing_journal_starts_fresh(self, tmp_path):
        journal = RunJournal.open(
            tmp_path / "journal.log", self.HEADER, resume=True
        )
        assert not journal.resumed and journal.completed == set()


class TestInterruptAndResume:
    def test_stop_request_drains_and_raises(self, tmp_path):
        specs = tiny_specs()
        runner = BatchRunner(cache_dir=tmp_path / "cache")
        runner.journal = RunJournal.open(
            tmp_path / "journal.log", {"run": "x"}
        )
        events = runner.iter_run(specs)
        first_index, _ = next(events)
        runner.request_stop()
        with pytest.raises(RunInterruptedError) as exc_info:
            list(events)
        runner.close()
        assert exc_info.value.remaining == len(specs) - 1
        assert len(runner.journal.completed) == 1
        assert specs[first_index].fingerprint() in runner.journal.completed

    def test_interrupted_then_resumed_matches_uninterrupted(
        self, tmp_path, golden
    ):
        """The acceptance property: interrupt + ``--resume`` produces
        results identical to a run that was never interrupted (resumed
        outcomes are re-served from the outcome cache)."""
        specs = tiny_specs()
        header = {"command": "all", "seed": 1}
        cache = tmp_path / "cache"
        journal_path = tmp_path / "journal.log"

        interrupted = BatchRunner(cache_dir=cache)
        interrupted.journal = RunJournal.open(journal_path, header)
        events = interrupted.iter_run(specs)
        next(events)
        interrupted.request_stop()
        with pytest.raises(RunInterruptedError):
            list(events)
        interrupted.close()

        resumed = BatchRunner(cache_dir=cache)
        resumed.journal = RunJournal.open(journal_path, header, resume=True)
        assert resumed.journal.resumed
        outcomes = resumed.run(specs)
        resumed.close()
        assert_same_results(golden, outcomes)
        assert resumed.cache_hits >= 1  # completed work was not redone
        assert resumed.journal.completed == {
            spec.fingerprint() for spec in specs
        }

    def test_interrupt_in_pool_mode_preserves_completed_work(self, tmp_path):
        """Pool path: stop after the first completion; in-flight chunks
        drain, their outcomes land in the cache, the rest is counted.

        The batch must be larger than the supervisor's in-flight window
        (jobs + 2), otherwise everything is already dispatched by the
        time the stop lands and the run just finishes."""
        base = tiny_specs()[0]
        specs = list(
            base.sweep(
                manager=["static-big", "octopus-man"], seed=[1, 2, 3, 4]
            )
        )
        runner = BatchRunner(jobs=2, cache_dir=tmp_path / "cache")
        events = runner.iter_run(specs)
        completed = [next(events)]
        runner.request_stop()
        with pytest.raises(RunInterruptedError):
            for item in events:
                completed.append(item)
        runner.close()
        # Everything that was yielded is re-servable from the cache.
        warm = BatchRunner(cache_dir=tmp_path / "cache")
        reread = {
            index: outcome
            for index, outcome in warm.iter_run(
                [specs[index] for index, _ in completed]
            )
        }
        assert warm.cache_misses == 0
        for position, (index, outcome) in enumerate(completed):
            assert_same_results([outcome], [reread[position]])
