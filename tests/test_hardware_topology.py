"""Unit tests for configurations, the config space and the ladders."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.heuristic import hipster_ladder, pareto_ladder
from repro.hardware.cores import CoreKind
from repro.hardware.topology import (
    PAPER_FIG2C_LADDER,
    Configuration,
    config_by_label,
    config_capacity_ips,
    config_power_w,
    enumerate_configurations,
    octopus_man_ladder,
    pareto_configurations,
    rank_configurations,
    validate_configuration,
)


class TestConfiguration:
    def test_labels_follow_paper_style(self):
        assert Configuration(2, 2, 0.90, 0.65).label == "2B2S-0.90"
        assert Configuration(0, 4, None, 0.65).label == "4S-0.65"
        assert Configuration(2, 0, 1.15, None).label == "2B-1.15"

    def test_empty_configuration_rejected(self):
        with pytest.raises(ValueError, match="at least one core"):
            Configuration(0, 0, None, None)

    def test_frequency_presence_must_match_cores(self):
        with pytest.raises(ValueError, match="big_freq"):
            Configuration(1, 0, None, None)
        with pytest.raises(ValueError, match="small_freq"):
            Configuration(0, 1, None, None)
        with pytest.raises(ValueError, match="big_freq"):
            Configuration(0, 1, 1.15, 0.65)

    def test_single_cluster_kind(self):
        assert Configuration(2, 0, 1.15, None).single_cluster_kind is CoreKind.BIG
        assert Configuration(0, 2, None, 0.65).single_cluster_kind is CoreKind.SMALL
        assert Configuration(1, 1, 1.15, 0.65).single_cluster_kind is None

    def test_validation_against_platform(self, platform):
        with pytest.raises(ValueError, match="only 2 big cores"):
            validate_configuration(platform, Configuration(3, 0, 1.15, None))
        with pytest.raises(ValueError, match="not an operating point"):
            validate_configuration(platform, Configuration(1, 0, 1.00, None))


class TestConfigurationSpace:
    def test_full_space_has_34_configs(self, platform):
        assert len(enumerate_configurations(platform)) == 34

    def test_four_core_space_has_25_configs(self, platform):
        assert len(enumerate_configurations(platform, max_total_cores=4)) == 25

    def test_space_has_no_duplicates(self, platform):
        configs = enumerate_configurations(platform)
        assert len(set(configs)) == len(configs)

    def test_config_by_label_roundtrip(self, platform):
        configs = enumerate_configurations(platform)
        for config in configs:
            assert config_by_label(configs, config.label) == config

    def test_config_by_label_unknown(self, platform):
        with pytest.raises(KeyError, match="no configuration"):
            config_by_label(enumerate_configurations(platform), "9B-1.15")

    @given(n_big=st.integers(0, 2), n_small=st.integers(0, 4))
    def test_capacity_monotone_in_cores(self, n_big, n_small):
        """Adding a core never reduces microbenchmark capacity."""
        platform = __import__("repro.hardware.juno", fromlist=["juno_r1"]).juno_r1()
        if n_big == 0 and n_small == 0:
            return
        config = Configuration(
            n_big,
            n_small,
            1.15 if n_big else None,
            0.65 if n_small else None,
        )
        base = config_capacity_ips(platform, config)
        if n_big < 2:
            bigger = Configuration(n_big + 1, n_small, 1.15, config.small_freq_ghz)
            assert config_capacity_ips(platform, bigger) > base

    def test_power_monotone_in_big_dvfs(self, platform):
        low = config_power_w(platform, Configuration(2, 0, 0.60, None))
        high = config_power_w(platform, Configuration(2, 0, 1.15, None))
        assert low < high


class TestLadders:
    def test_rank_is_capacity_sorted(self, platform):
        ranked = rank_configurations(platform)
        capacities = [config_capacity_ips(platform, c) for c in ranked]
        assert capacities == sorted(capacities)

    def test_pareto_frontier_monotone_in_both_axes(self, platform):
        frontier = pareto_configurations(platform)
        capacities = [config_capacity_ips(platform, c) for c in frontier]
        powers = [config_power_w(platform, c) for c in frontier]
        assert capacities == sorted(capacities)
        assert powers == sorted(powers)

    def test_pareto_frontier_not_dominated(self, platform):
        frontier = set(pareto_configurations(platform))
        all_measured = [
            (config_capacity_ips(platform, c), config_power_w(platform, c), c)
            for c in enumerate_configurations(platform)
        ]
        for cap, power, config in all_measured:
            if config not in frontier:
                continue
            dominated = any(
                (oc >= cap and op < power) or (oc > cap and op <= power)
                for oc, op, _ in all_measured
            )
            assert not dominated, config.label

    def test_hipster_ladder_is_the_paper_fig2c_ladder_on_juno(self, platform):
        ladder = hipster_ladder(platform)
        assert tuple(c.label for c in ladder) == PAPER_FIG2C_LADDER

    def test_hipster_ladder_top_is_max_single_thread_state(self, platform):
        assert hipster_ladder(platform)[-1].label == "2B-1.15"

    def test_pareto_ladder_limited_to_four_cores(self, platform):
        for config in pareto_ladder(platform, max_total_cores=4):
            assert config.total_cores <= 4

    def test_octopus_ladder_is_small_then_big_at_max_dvfs(self, platform):
        ladder = octopus_man_ladder(platform)
        labels = [c.label for c in ladder]
        assert labels == ["1S-0.65", "2S-0.65", "3S-0.65", "4S-0.65", "2B-1.15"]
        for config in ladder:
            assert config.single_cluster_kind is not None

    def test_octopus_ladder_with_single_big(self, platform):
        labels = [c.label for c in octopus_man_ladder(platform, include_single_big=True)]
        assert "1B-1.15" in labels
