"""Unit tests for the DVFS controller, power model, energy meter,
perf counters (with the Juno idle bug) and affinity manager."""

from __future__ import annotations

import pytest

from repro.hardware.affinity import AffinityManager, Role
from repro.hardware.counters import PerfCounters
from repro.hardware.dvfs import DVFSController
from repro.hardware.power import EnergyMeter, PowerModel
from repro.hardware.soc import KernelConfig
from repro.hardware.topology import Configuration


class TestDVFS:
    def test_starts_at_max(self, platform):
        dvfs = DVFSController(platform.clusters)
        assert dvfs.frequency("big") == 1.15
        assert dvfs.frequency("small") == 0.65

    def test_transition_counting(self, platform):
        dvfs = DVFSController(platform.clusters)
        assert dvfs.set_frequency("big", 0.60) is True
        assert dvfs.set_frequency("big", 0.60) is False  # no-op
        assert dvfs.set_frequency("big", 0.90) is True
        assert dvfs.transitions == 2
        assert dvfs.transition_time_s == pytest.approx(2 * 50e-6)

    def test_invalid_operating_point_rejected(self, platform):
        dvfs = DVFSController(platform.clusters)
        with pytest.raises(ValueError, match="not an operating point"):
            dvfs.set_frequency("big", 1.0)

    def test_unknown_cluster_rejected(self, platform):
        dvfs = DVFSController(platform.clusters)
        with pytest.raises(KeyError):
            dvfs.frequency("gpu")

    def test_set_min_max_helpers(self, platform):
        dvfs = DVFSController(platform.clusters)
        dvfs.set_min("big")
        assert dvfs.frequency("big") == 0.60
        dvfs.set_max("big")
        assert dvfs.frequency("big") == 1.15

    def test_snapshot(self, platform):
        dvfs = DVFSController(platform.clusters)
        assert dvfs.snapshot() == {"big": 1.15, "small": 0.65}


class TestPowerModel:
    def test_breakdown_channels_sum(self, platform):
        model = PowerModel(platform)
        breakdown = model.breakdown(1.15, 0.65, {"B0": 1.0, "S0": 0.5})
        assert breakdown.total_w == pytest.approx(
            breakdown.big_w + breakdown.small_w + breakdown.rest_w
        )
        assert breakdown.rest_w == platform.rest_of_system_w

    def test_more_utilization_more_power(self, platform):
        model = PowerModel(platform)
        low = model.system_power_w(1.15, 0.65, {"B0": 0.2})
        high = model.system_power_w(1.15, 0.65, {"B0": 0.9})
        assert low < high

    def test_cpuidle_gates_idle_cores(self, platform):
        gated = PowerModel(platform, KernelConfig(cpuidle_enabled=True))
        ungated = PowerModel(platform, KernelConfig(cpuidle_enabled=False))
        utils = {"B0": 1.0}
        assert gated.system_power_w(1.15, 0.65, utils) < ungated.system_power_w(
            1.15, 0.65, utils
        )

    def test_unknown_core_rejected(self, platform):
        with pytest.raises(ValueError, match="unknown core ids"):
            PowerModel(platform).breakdown(1.15, 0.65, {"X9": 1.0})


class TestEnergyMeter:
    def test_registers_accumulate(self, platform):
        model = PowerModel(platform)
        meter = EnergyMeter()
        breakdown = model.breakdown(1.15, 0.65, {"B0": 1.0})
        meter.record(breakdown, 2.0)
        meter.record(breakdown, 3.0)
        assert meter.total_j == pytest.approx(breakdown.total_w * 5.0)
        assert meter.elapsed_s == 5.0
        assert meter.mean_power_w == pytest.approx(breakdown.total_w)

    def test_read_is_monotone(self, platform):
        meter = EnergyMeter()
        model = PowerModel(platform)
        breakdown = model.breakdown(1.15, 0.65, {})
        first = meter.read()
        meter.record(breakdown, 1.0)
        second = meter.read()
        assert all(second[k] >= first[k] for k in first)

    def test_negative_duration_rejected(self, platform):
        meter = EnergyMeter()
        breakdown = PowerModel(platform).breakdown(1.15, 0.65, {})
        with pytest.raises(ValueError):
            meter.record(breakdown, -1.0)


class TestPerfCounters:
    def test_faithful_when_cpuidle_disabled(self, platform, rng):
        counters = PerfCounters(platform, KernelConfig(cpuidle_enabled=False))
        truth = {"B0": 1e9, "B1": 0.0}
        sample = counters.read(truth, rng)
        assert sample["B0"] == 1e9
        assert sample["B1"] == 0.0
        assert set(sample) == set(platform.core_ids)

    def test_juno_bug_fires_with_idle_core_and_cpuidle(self, platform, rng):
        counters = PerfCounters(platform, KernelConfig(cpuidle_enabled=True))
        sample = counters.read({"B0": 1e9}, rng)  # other cores idle
        assert sample["B0"] != 1e9  # garbage

    def test_no_bug_when_all_cores_busy(self, platform, rng):
        counters = PerfCounters(platform, KernelConfig(cpuidle_enabled=True))
        truth = {cid: 1e9 for cid in platform.core_ids}
        assert counters.read(truth, rng) == truth

    def test_bug_can_be_disabled(self, platform, rng):
        counters = PerfCounters(
            platform, KernelConfig(cpuidle_enabled=True), juno_perf_bug=False
        )
        sample = counters.read({"B0": 1e9}, rng)
        assert sample["B0"] == 1e9


class TestAffinity:
    def test_lc_cores_are_lowest_numbered(self, platform):
        manager = AffinityManager(platform)
        placement = manager.apply(Configuration(1, 2, 1.15, 0.65))
        assert placement.lc_cores == ("B0", "S0", "S1")

    def test_batch_jobs_fill_remaining_cores(self, platform):
        manager = AffinityManager(platform)
        placement = manager.apply(Configuration(0, 2, None, 0.65), n_batch_jobs=4)
        assert set(placement.batch_assignment) == {"B0", "B1", "S2", "S3"}

    def test_surplus_batch_jobs_are_suspended(self, platform):
        manager = AffinityManager(platform)
        placement = manager.apply(Configuration(2, 2, 1.15, 0.65), n_batch_jobs=6)
        assert len(placement.batch_assignment) == 2  # only two free cores

    def test_migration_counting(self, platform):
        manager = AffinityManager(platform)
        first = manager.apply(Configuration(2, 0, 1.15, None))
        assert first.migration_event is False  # initial placement is free
        same = manager.apply(Configuration(2, 0, 0.90, None))
        assert same.migration_event is False  # DVFS change, same cores
        moved = manager.apply(Configuration(0, 4, None, 0.65))
        assert moved.migration_event is True
        assert moved.migrated_cores == 6  # 2 out, 4 in
        assert manager.migration_events == 1

    def test_roles(self, platform):
        manager = AffinityManager(platform)
        placement = manager.apply(Configuration(1, 0, 1.15, None), n_batch_jobs=1)
        assert manager.role_of("B0", placement) is Role.LATENCY_CRITICAL
        assert manager.role_of("B1", placement) is Role.BATCH
        assert manager.role_of("S3", placement) is Role.IDLE
