"""Tests for the execution-chaos harness: deterministic fault
selection, the environment wire format, once-only marker claims and
seeded cache corruption."""

from __future__ import annotations

import os

import pytest

from repro.scenarios import ScenarioSpec, TraceSpec
from repro.sim import chaos
from repro.sim.batch import MANIFEST_NAME, BatchRunner
from repro.sim.chaos import ChaosConfig


class TestFaultSelection:
    def test_targeted_lists_win_over_rates(self):
        config = ChaosConfig(
            seed=0,
            state_dir="/tmp/x",
            crash_rate=1,  # would otherwise crash everything
            poison_fingerprints=("fp-p",),
            kill_fingerprints=("fp-k",),
            hang_fingerprints=("fp-h",),
        )
        assert config.fault_for("fp-p") == "poison"
        assert config.fault_for("fp-k") == "kill"
        assert config.fault_for("fp-h") == "hang"
        assert config.fault_for("anything-else") == "crash"

    def test_rate_selection_is_seed_deterministic(self):
        config = ChaosConfig(seed=3, state_dir="/tmp/x", crash_rate=4)
        picks = {f"fp-{i}": config.fault_for(f"fp-{i}") for i in range(64)}
        again = {f"fp-{i}": config.fault_for(f"fp-{i}") for i in range(64)}
        assert picks == again
        crashed = [fp for fp, mode in picks.items() if mode == "crash"]
        # Roughly 1-in-4, and a different seed picks different victims.
        assert 4 <= len(crashed) <= 32
        other = ChaosConfig(seed=4, state_dir="/tmp/x", crash_rate=4)
        assert any(other.fault_for(fp) != picks[fp] for fp in picks)

    def test_zero_rates_and_empty_lists_select_nothing(self):
        config = ChaosConfig(seed=0)
        assert config.fault_for("fp-anything") is None

    def test_rate_without_state_dir_rejected(self):
        with pytest.raises(ValueError, match="state_dir"):
            ChaosConfig(seed=0, crash_rate=8)


class TestWireFormat:
    def test_encode_decode_roundtrip(self):
        config = ChaosConfig(
            seed=7,
            state_dir="/tmp/markers",
            crash_rate=8,
            hang_rate=16,
            hang_s=2.5,
            crash_fingerprints=("a", "b"),
            poison_fingerprints=("c",),
        )
        assert ChaosConfig.decode(config.encode()) == config

    def test_active_config_sets_and_restores_env(self, tmp_path):
        config = ChaosConfig(seed=1, state_dir=str(tmp_path / "s"))
        assert chaos.active() is None
        with chaos.active_config(config) as active:
            assert active == config
            assert chaos.active() == config
            assert (tmp_path / "s").is_dir()  # marker dir pre-created
        assert chaos.active() is None
        assert chaos.ENV_VAR not in os.environ

    def test_malformed_env_means_chaos_off(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "{not json")
        assert chaos.active() is None


class TestMarkers:
    def test_claim_is_once_only(self, tmp_path):
        assert chaos._claim(str(tmp_path), "crash", "fp-a") is True
        assert chaos._claim(str(tmp_path), "crash", "fp-a") is False
        assert chaos._claim(str(tmp_path), "hang", "fp-a") is True
        assert chaos.fired_markers(tmp_path) == ["crash-fp-a", "hang-fp-a"]

    def test_maybe_inject_without_chaos_is_a_noop(self):
        chaos.maybe_inject("fp-whatever")  # must not raise or exit


class TestCorruptCache:
    @staticmethod
    def _populated(tmp_path, name):
        cache = tmp_path / name
        spec = ScenarioSpec(
            workload="memcached",
            trace=TraceSpec.constant(0.6, 15.0),
            manager="static-big",
        )
        specs = list(spec.sweep(seed=[1, 2]))
        BatchRunner(cache_dir=cache).run(specs)
        return cache, specs

    def test_same_seed_same_damage(self, tmp_path):
        cache_a, _ = self._populated(tmp_path, "a")
        cache_b, _ = self._populated(tmp_path, "b")
        report_a = chaos.corrupt_cache(cache_a, seed=5)
        report_b = chaos.corrupt_cache(cache_b, seed=5)
        assert report_a.actions == report_b.actions
        assert report_a  # it did something

    def test_manifest_tail_truncated_and_body_scribbled(self, tmp_path):
        cache, _ = self._populated(tmp_path, "c")
        before = (cache / MANIFEST_NAME).stat().st_size
        report = chaos.corrupt_cache(cache, seed=0)
        after = (cache / MANIFEST_NAME).stat().st_size
        assert after < before
        assert any("truncated" in action for action in report.actions)
        assert any("scribbled" in action for action in report.actions)

    def test_corrupted_cache_recomputes_to_identical_results(self, tmp_path):
        """The end-to-end corruption property: damage the cache, rerun,
        get byte-identical outcomes (recomputed or still-valid), with
        the run completing normally."""
        cache, specs = self._populated(tmp_path, "d")
        golden = BatchRunner().run(specs)
        chaos.corrupt_cache(cache, seed=1)
        runner = BatchRunner(cache_dir=cache, memory_entries=0)
        outcomes = runner.run(specs)
        assert len(outcomes) == len(golden)
        for left, right in zip(golden, outcomes):
            assert left.spec == right.spec
            assert left.result.observations == right.result.observations

    def test_missing_cache_dir_is_harmless(self, tmp_path):
        report = chaos.corrupt_cache(tmp_path / "nope", seed=0)
        assert not report
