"""Byte-identity of the dense engine against the reference implementation.

The dense/core-indexed interval engine (PR 3) claims *bit-identical*
output to the seed implementation -- same rng draw order and counts, same
floats in every observation -- which is why ``KERNEL_VERSION`` was not
bumped and cached scenario results stay valid.  These tests enforce the
claim three ways:

* engine-vs-reference runs over scenarios covering every hot-path branch
  (collocation, migrations, CPUidle/Juno-bug, bursty and Poisson
  arrivals, single- and many-server configurations, zero load);
* golden fingerprints of registry scenarios pinned from the pre-refactor
  engine (commit b2d065f) -- a regression here means cached experiment
  results are silently invalid;
* unit-level equivalence of each dict-path API against its array-native
  fast path on randomized inputs.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.hardware.counters import PerfCounters
from repro.hardware.power import PowerModel
from repro.hardware.soc import KernelConfig
from repro.loadgen.traces import ConstantTrace, StepTrace
from repro.policies.octopusman import OctopusMan
from repro.policies.static import StaticPolicy, static_all_big, static_all_small
from repro.hardware.topology import Configuration
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.contention import aggregate_pressure, aggregate_pressure_indexed
from repro.sim.engine import run_experiment
from repro.sim.engine_reference import run_reference_experiment
from repro.sim.latency import linear_quantile
from repro.sim.queueing import DispatchQueue
from repro.workloads.memcached import memcached
from repro.workloads.spec import spec_job_set
from repro.workloads.websearch import websearch

OBSERVATION_FIELDS = (
    "index", "t_start_s", "duration_s", "offered_load", "measured_load",
    "arrival_rps", "n_requests", "tail_latency_ms", "mean_latency_ms",
    "qos_met", "tardiness", "power_w", "energy_j", "big_ips", "small_ips",
    "counter_garbage", "config_label", "big_freq_ghz", "small_freq_ghz",
    "migrated_cores", "migration_event", "mean_utilization", "backlog_s",
    "shed_work_s", "batch_instructions",
)


def result_fingerprint(result) -> str:
    """Order-sensitive hash over every observation field (exact reprs)."""
    h = hashlib.sha256()
    for o in result.observations:
        h.update(
            repr(tuple(getattr(o, f) for f in OBSERVATION_FIELDS)).encode()
        )
    return h.hexdigest()


def assert_identical(new, ref):
    """Every observation field bit-identical (via exact repr) in order."""
    assert len(new) == len(ref)
    for o_new, o_ref in zip(new.observations, ref.observations):
        for field in OBSERVATION_FIELDS:
            v_new, v_ref = getattr(o_new, field), getattr(o_ref, field)
            assert repr(v_new) == repr(v_ref), (
                f"interval {o_new.index} field {field}: "
                f"{v_new!r} != {v_ref!r}"
            )


class Flapper(StaticPolicy):
    """Alternates between cluster configs: exercises migrations + rng adder."""

    def __init__(self):
        super().__init__(Configuration(2, 0, 1.15, None), name="flapper")
        self._flip = False

    def decide(self):
        from repro.policies.base import resolve_decision

        self._flip = not self._flip
        config = (
            Configuration(2, 0, 1.15, None)
            if self._flip
            else Configuration(0, 4, None, 0.65)
        )
        return resolve_decision(self.ctx.platform, config, collocate_batch=False)


class TestEngineMatchesReference:
    """End-to-end: optimized engine == reference engine, bit for bit."""

    def _both(self, platform, workload, trace, make_manager, **kwargs):
        new = run_experiment(platform, workload, trace, make_manager(), **kwargs)
        ref = run_reference_experiment(
            platform, workload, trace, make_manager(), **kwargs
        )
        assert_identical(new, ref)

    def test_static_big_websearch(self, platform):
        self._both(
            platform, websearch(), ConstantTrace(0.5, 25),
            lambda: static_all_big(platform), seed=42,
        )

    def test_static_small_single_server_regime(self, platform):
        """1S config: the queue's single-server path."""
        self._both(
            platform, memcached(), ConstantTrace(0.3, 25),
            lambda: StaticPolicy(Configuration(0, 1, None, 0.65)), seed=5,
        )

    def test_many_servers_with_collocation(self, platform):
        wl = memcached().with_overrides(n_threads=6)
        self._both(
            platform, wl, ConstantTrace(0.8, 25),
            lambda: StaticPolicy(
                Configuration(2, 4, 1.15, 0.65), collocate_batch=True
            ),
            batch_jobs=spec_job_set("lbm"), seed=7,
        )

    def test_migration_heavy_manager_draws_preserved(self, platform):
        """Flapping managers hit the migration latency adder every other
        interval; its rng draw must stay in the stream."""
        self._both(
            platform, memcached(), ConstantTrace(0.55, 30),
            Flapper, seed=3,
        )

    def test_octopus_man_adaptive(self, platform):
        self._both(
            platform, memcached(), StepTrace([(15, 0.9), (25, 0.2)]),
            OctopusMan, seed=11,
        )

    def test_cpuidle_enabled_juno_bug_draws(self, platform):
        """With CPUidle on, garbage counter draws must match per-core."""
        self._both(
            platform, websearch(), ConstantTrace(0.01, 20),
            lambda: static_all_big(platform, collocate_batch=True),
            batch_jobs=spec_job_set("calculix"),
            kernel=KernelConfig(cpuidle_enabled=True), seed=3,
        )

    def test_zero_load_empty_intervals(self, platform):
        self._both(
            platform, memcached(), ConstantTrace(0.0, 10),
            lambda: static_all_small(platform), seed=1,
        )

    def test_poisson_arrivals_burstiness_one(self, platform):
        wl = memcached().with_overrides(burstiness=1.0)
        self._both(
            platform, wl, ConstantTrace(0.6, 25),
            lambda: static_all_big(platform), seed=9,
        )


class TestEpochAgainstReference:
    """Three-way check: reference == scalar loop == decision-epoch path.

    ``TestEngineMatchesReference`` runs the default engine (epoch fast
    path enabled) against the reference; these scenarios additionally
    force the scalar loop and pin all three fingerprints equal on runs
    where the epoch path provably engages (low-load decision-stable
    segments long enough to batch)."""

    def _three_way(self, platform, workload, trace, make_manager, **kwargs):
        from repro.sim.engine import EngineConfig, IntervalSimulator

        ref = run_reference_experiment(
            platform, workload, trace, make_manager(), **kwargs
        )
        scalar = run_experiment(
            platform, workload, trace, make_manager(),
            engine_config=EngineConfig(epoch_fast_path=False), **kwargs,
        )
        sim = IntervalSimulator(
            platform, workload, trace, make_manager(),
            engine_config=EngineConfig(epoch_fast_path=True),
            **{k: v for k, v in kwargs.items() if k != "seed"},
            seed=kwargs.get("seed", 0),
        )
        epoch = sim.run()
        assert sim.epochs_run > 0, "scenario must exercise the epoch path"
        fp_ref = result_fingerprint(ref)
        assert result_fingerprint(scalar) == fp_ref
        assert result_fingerprint(epoch) == fp_ref

    def test_static_big_low_load(self, platform):
        self._three_way(
            platform, memcached(), ConstantTrace(0.25, 60),
            lambda: static_all_big(platform), seed=13,
        )

    def test_static_small_zero_load(self, platform):
        self._three_way(
            platform, memcached(), ConstantTrace(0.0, 40),
            lambda: static_all_small(platform), seed=2,
        )

    def test_table_driven_step_epochs(self, platform):
        from repro.policies.table_driven import TableDrivenPolicy

        table = [
            (0.1, Configuration(0, 2, None, 0.65)),
            (0.3, Configuration(0, 4, None, 0.65)),
            (1.0, Configuration(2, 0, 1.15, None)),
        ]
        self._three_way(
            platform, memcached(), StepTrace([(30, 0.05), (30, 0.2)]),
            lambda: TableDrivenPolicy(table), seed=17,
        )


class TestGoldenFingerprints:
    """Pinned golden result fingerprints: byte-identity with the seed
    across refactors, not merely self-consistency.

    Re-pinned exactly once, at the columnar storage-format bump
    (``SCHEMA_VERSION`` 1 -> 2): every numeric *value* was verified
    bit-identical against the pre-columnar engine (commit cbdd2d4), but
    the repr-based hash also sees scalar container types, and typed
    columns normalize those -- fields that happened to carry a Python
    ``int`` zero (e.g. ``big_ips`` from ``sum(())`` in batch-free
    intervals) or an ``np.float64`` now materialize uniformly as Python
    floats.  The pre-bump hashes are kept in ``GOLDEN_V1`` to document
    the re-pin."""

    GOLDEN = {
        "fig01-hipster-in": (
            "7eb29c68308c11bc27b86ef0e5c9e20bf3ef8b9c45c14eaad873e629c321681b"
        ),
        "diurnal-octopus-man": (
            "f3d5df4a8d9447773108f70d5b5df7a4c39b312b458ef67bb858c2ea4d3b5baa"
        ),
        "collocation-websearch-lbm": (
            "c4fb3e264f118721a6af1b098185dab217996a99ea27a42600bedadbe8f35dc9"
        ),
        "steady-cpuidle": (
            "989a202ef2bd9f40213f1904404e851d566df9f626f7a9b41cf5b5d2374d3152"
        ),
    }

    #: Dataclass-era pins (storage format 1, commit b2d065f) -- retired
    #: at the format bump, retained as documentation of the migration.
    GOLDEN_V1 = {
        "fig01-hipster-in": (
            "c0da99d853de1cf584002502dfdfb64d515416496b5fe0357ee1ef48ecb5c427"
        ),
        "diurnal-octopus-man": (
            "3bde815fa739484deb2b39068854741440a135f6175649623068cb28e8409ca5"
        ),
        "collocation-websearch-lbm": (
            "5a9d6ee6d4b6f73622ee913ea9f7812e282d0566756150ac188a4936c3c71e19"
        ),
        "steady-cpuidle": (
            "c58b6c57841c0c6496b8f417673527fd68a6bd9fbedd43d347bcf8abb386b4a3"
        ),
    }

    def _spec(self, name):
        if name == "fig01-hipster-in":
            return DEFAULT_REGISTRY.build(
                "diurnal-policy", workload="memcached", manager="hipster-in",
                quick=True,
            )
        if name == "diurnal-octopus-man":
            return DEFAULT_REGISTRY.build(
                "diurnal-policy", workload="memcached", manager="octopus-man",
                quick=True,
            )
        if name == "collocation-websearch-lbm":
            return DEFAULT_REGISTRY.build(
                "collocation", workload="websearch", program="lbm",
                manager="hipster-co", quick=True,
            )
        return DEFAULT_REGISTRY.build(
            "steady-config", workload="memcached", config_label="2B2S-0.90",
            load=0.7, duration_s=60.0,
        )

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_golden(self, name):
        outcome = self._spec(name).run()
        assert result_fingerprint(outcome.result) == self.GOLDEN[name]


class TestDensePathUnits:
    """Array-native fast paths agree with the dict APIs on random inputs."""

    def test_counters_read_matches_read_array(self, platform):
        rng_data = np.random.default_rng(0)
        counters = PerfCounters(
            platform, KernelConfig(cpuidle_enabled=True), juno_perf_bug=True
        )
        for trial in range(50):
            # Random subset of cores active; sometimes everything busy so
            # both the garbage and the clean branch are exercised.
            truth = {
                cid: float(rng_data.uniform(0, 1e10))
                for cid in platform.core_ids
                if trial % 3 == 0 or rng_data.random() < 0.7
            }
            dict_sample = counters.read(truth, np.random.default_rng(trial))
            vec = np.array(
                [float(truth.get(cid, 0.0)) for cid in platform.core_ids]
            )
            arr_sample, garbage = counters.read_array(
                vec, np.random.default_rng(trial)
            )
            assert dict_sample == {
                cid: float(arr_sample[i])
                for i, cid in enumerate(platform.core_ids)
            }
            expected_garbage = dict_sample != {
                cid: float(truth.get(cid, 0.0)) for cid in platform.core_ids
            }
            assert garbage == expected_garbage

    def test_counters_clean_when_bug_disarmed(self, platform):
        counters = PerfCounters(
            platform, KernelConfig(cpuidle_enabled=False), juno_perf_bug=True
        )
        assert not counters.bug_armed
        vec = np.zeros(platform.n_cores)
        sample, garbage = counters.read_array(vec, np.random.default_rng(0))
        assert not garbage
        assert np.array_equal(sample, vec)

    @pytest.mark.parametrize("cpuidle", [False, True])
    def test_power_breakdown_matches_breakdown_array(self, platform, cpuidle):
        rng = np.random.default_rng(4)
        model = PowerModel(platform, KernelConfig(cpuidle_enabled=cpuidle))
        for _ in range(50):
            utils = {
                cid: float(rng.random())
                for cid in platform.core_ids
                if rng.random() < 0.8
            }
            dense = np.array(
                [float(utils.get(cid, 0.0)) for cid in platform.core_ids]
            )
            a = model.breakdown(1.15, 0.65, utils)
            b = model.breakdown_array(1.15, 0.65, dense)
            assert (a.big_w, a.small_w, a.rest_w) == (b.big_w, b.small_w, b.rest_w)

    def test_power_array_rejects_bad_utilization(self, platform):
        model = PowerModel(platform)
        bad = np.zeros(platform.n_cores)
        bad[0] = 1.5
        with pytest.raises(ValueError, match="within"):
            model.breakdown_array(1.15, 0.65, bad)

    def test_aggregate_pressure_indexed_matches_dict(self, platform):
        rng = np.random.default_rng(8)
        for _ in range(30):
            cores = [
                cid for cid in platform.core_ids if rng.random() < 0.6
            ]
            mem = {cid: float(rng.random()) for cid in cores}
            big_ids = set(platform.big.core_ids)
            a = aggregate_pressure(mem, platform.big.core_ids)
            b = aggregate_pressure_indexed(
                [mem[cid] for cid in cores],
                [cid in big_ids for cid in cores],
            )
            assert (a.big, a.small) == (b.big, b.small)

    def test_dispatch_matches_rng_choice(self):
        """The threshold dispatch replays ``rng.choice`` bit for bit."""
        for n_servers in (1, 2, 3, 6):
            for seed in range(5):
                queue = DispatchQueue(
                    rng=np.random.default_rng(seed), balance_exponent=0.55
                )
                queue.reconfigure(
                    [1.0 + 0.3 * k for k in range(n_servers)], now=0.0
                )
                assigned = queue._dispatch(500)
                replay = np.random.default_rng(seed)
                expected = replay.choice(n_servers, size=500, p=queue._weights)
                assert np.array_equal(assigned, expected)

    def test_linear_quantile_matches_np_quantile(self):
        rng = np.random.default_rng(12)
        for _ in range(300):
            n = int(rng.integers(1, 4000))
            values = rng.lognormal(0.0, 1.5, size=n)
            q = float(rng.uniform(0.01, 0.99))
            assert linear_quantile(values, q) == float(np.quantile(values, q))

    def test_linear_quantile_destructive_leaves_value_intact(self):
        values = np.random.default_rng(1).random(101)
        expected = float(np.quantile(values, 0.9))
        assert linear_quantile(values, 0.9, destructive=True) == expected

    def test_platform_core_index_is_dense_and_stable(self, platform):
        assert list(platform.core_index.values()) == list(
            range(platform.n_cores)
        )
        assert [
            platform.core_ids[i] for i in platform.big_core_index
        ] == list(platform.big.core_ids)
        assert [
            platform.core_ids[i] for i in platform.small_core_index
        ] == list(platform.small.core_ids)
