"""Integration tests for the Hipster manager (Algorithm 2 end to end)."""

from __future__ import annotations

import pytest

from repro.core.hipster import Hipster, HipsterParams, Phase, Variant, hipster_co, hipster_in
from repro.loadgen.diurnal import DiurnalTrace
from repro.loadgen.traces import ConstantTrace, StepTrace
from repro.policies.octopusman import OctopusMan
from repro.policies.static import static_all_big
from repro.sim.engine import run_experiment
from repro.workloads.memcached import memcached
from repro.workloads.spec import spec_job_set
from repro.workloads.websearch import websearch


def short_params(**overrides):
    defaults = dict(learning_duration_s=80.0, reenter_window_s=50.0)
    defaults.update(overrides)
    return HipsterParams(**defaults)


class TestPhases:
    def test_starts_in_learning_then_exploits(self, platform):
        manager = hipster_in(short_params())
        run_experiment(
            platform, websearch(), ConstantTrace(0.5, 120), manager, seed=3
        )
        assert manager.phase is Phase.EXPLOITATION
        assert manager.phase_switches >= 1

    def test_table_populated_during_learning(self, platform):
        manager = hipster_in(short_params())
        run_experiment(
            platform, websearch(), ConstantTrace(0.5, 100), manager, seed=3
        )
        assert len(manager.table) > 0

    def test_reenters_learning_on_persistent_violations(self, platform):
        """Algorithm 2, line 18: a load the table never saw at a level the
        current entries cannot serve forces re-entry."""
        manager = hipster_in(
            short_params(learning_duration_s=40.0, reenter_window_s=30.0)
        )
        trace = StepTrace([(70, 0.15), (120, 0.97)])
        run_experiment(platform, memcached(), trace, manager, seed=3)
        assert manager.phase_switches >= 2  # learn -> exploit -> learn (at least)

    def test_action_space_is_four_core_space(self, platform):
        manager = hipster_in(short_params())
        run_experiment(platform, websearch(), ConstantTrace(0.5, 5), manager, seed=3)
        assert len(manager.configurations) == 25
        assert all(c.total_cores <= 4 for c in manager.configurations)

    def test_variant_coercion(self):
        assert Hipster("in").variant is Variant.INTERACTIVE
        assert Hipster("co").variant is Variant.COLLOCATED
        with pytest.raises(ValueError):
            Hipster("turbo")

    def test_params_validation(self):
        with pytest.raises(ValueError):
            HipsterParams(learning_duration_s=-1)
        with pytest.raises(ValueError):
            HipsterParams(reenter_threshold=1.5)
        with pytest.raises(ValueError):
            HipsterParams(epsilon=1.0)


class TestHipsterInBehaviour:
    def test_beats_octopus_on_qos(self, platform):
        """The paper's headline: HipsterIn improves the QoS guarantee over
        Octopus-Man on the diurnal day (Web-Search: 80% -> 96% there)."""
        workload = websearch()
        trace = DiurnalTrace(duration_s=600, seed=11)
        hipster = run_experiment(
            platform, workload, trace, hipster_in(short_params(learning_duration_s=200)),
            seed=5,
        )
        octopus = run_experiment(platform, workload, trace, OctopusMan(), seed=5)
        assert hipster.qos_guarantee() > octopus.qos_guarantee()

    def test_saves_energy_vs_static_big(self, platform):
        workload = memcached()
        trace = DiurnalTrace(duration_s=600, seed=11)
        hipster = run_experiment(
            platform, workload, trace, hipster_in(short_params(learning_duration_s=200)),
            seed=5,
        )
        static = run_experiment(platform, workload, trace, static_all_big(platform), seed=5)
        assert hipster.energy_reduction_vs(static) > 0.08

    def test_exploitation_adapts_configuration_to_load(self, platform):
        manager = hipster_in(short_params(learning_duration_s=150))
        trace = StepTrace([(150, 0.5), (40, 0.2), (40, 0.9)])
        result = run_experiment(platform, memcached(), trace, manager, seed=5)
        low = result.slice(160, 190)
        high = result.slice(200, 230)
        low_capacity = sum(o.decision.config.total_cores for o in low)
        # At 20% load the chosen configs must be cheaper than at 90%.
        assert low.mean_power_w() < high.mean_power_w()
        assert low_capacity <= sum(o.decision.config.total_cores for o in high) + len(low)

    def test_idle_cluster_parked_at_min(self, platform):
        manager = hipster_in(short_params())
        result = run_experiment(
            platform, memcached(), ConstantTrace(0.15, 120), manager, seed=5
        )
        small_only = [
            o for o in result if o.decision.config.single_cluster_kind is not None
            and o.decision.config.n_big == 0
        ]
        assert small_only  # low load must reach small-only configs
        assert all(
            o.big_freq_ghz == platform.big.min_freq_ghz for o in small_only
        )


class TestHipsterCoBehaviour:
    def test_runs_batch_on_leftover_cores(self, platform):
        manager = hipster_co(short_params())
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.4, 60), manager,
            batch_jobs=spec_job_set("calculix"), seed=5,
        )
        assert result.batch_total_instructions() > 0

    def test_batch_cluster_races_to_max(self, platform):
        manager = hipster_co(short_params())
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.2, 100), manager,
            batch_jobs=spec_job_set("calculix"), seed=5,
        )
        for o in result:
            config = o.decision.config
            if config.n_big == 0:  # LC on small only -> big cluster is batch
                assert o.big_freq_ghz == platform.big.max_freq_ghz

    def test_without_batch_jobs_degrades_to_power_objective(self, platform):
        manager = hipster_co(short_params())
        result = run_experiment(
            platform, websearch(), ConstantTrace(0.4, 30), manager, seed=5
        )
        assert result.batch_total_instructions() == 0  # no jobs provided

    def test_co_beats_octopus_qos_when_collocated(self, platform):
        workload = websearch()
        trace = DiurnalTrace(duration_s=500, seed=11)
        jobs = spec_job_set("calculix")
        hipster = run_experiment(
            platform, workload, trace,
            hipster_co(short_params(learning_duration_s=200)),
            batch_jobs=jobs, seed=5,
        )
        octopus = run_experiment(
            platform, workload, trace, OctopusMan(collocate_batch=True),
            batch_jobs=jobs, seed=5,
        )
        assert hipster.qos_guarantee() > octopus.qos_guarantee()
