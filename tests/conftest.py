"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.juno import juno_r1


@pytest.fixture(scope="session")
def platform():
    """The calibrated Juno R1 platform (immutable, shared)."""
    return juno_r1()


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
