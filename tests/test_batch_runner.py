"""Tests for the batch execution layer: the persistent worker pool,
cost-aware scheduling, the two-tier cache, parallelism and dedup."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.scenarios import ScenarioSpec, TraceSpec
from repro.sim.batch import (
    MANIFEST_NAME,
    BatchRunner,
    estimate_cost,
    get_runner,
    plan_chunks,
)


def tiny_specs() -> list[ScenarioSpec]:
    """A small but non-trivial batch: two managers x two seeds."""
    base = ScenarioSpec(
        workload="memcached",
        trace=TraceSpec.constant(0.6, 15.0),
        manager="static-big",
    )
    return list(base.sweep(manager=["static-big", "octopus-man"], seed=[1, 2]))


def assert_same_results(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.spec == right.spec
        assert left.manager_stats == right.manager_stats
        assert left.result.observations == right.result.observations


class TestDeterminism:
    def test_serial_vs_two_workers_identical(self):
        """The issue's acceptance property: worker fan-out must not
        perturb results -- each worker rebuilds managers from factories,
        so a run stays a pure function of its spec."""
        specs = tiny_specs()
        serial = BatchRunner(jobs=1).run(specs)
        with BatchRunner(jobs=2) as parallel_runner:
            parallel = parallel_runner.run(specs)
        assert_same_results(serial, parallel)

    def test_order_preserved(self):
        specs = tiny_specs()
        with BatchRunner(jobs=2) as runner:
            outcomes = runner.run(specs)
        assert [o.spec for o in outcomes] == specs

    def test_duplicate_specs_run_once_and_fan_out(self):
        spec = tiny_specs()[0]
        runner = BatchRunner()
        outcomes = runner.run([spec, spec, spec])
        assert runner.cache_misses == 1
        assert_same_results([outcomes[0]], [outcomes[1]])
        assert_same_results([outcomes[0]], [outcomes[2]])

    def test_persistent_pool_path_byte_identical_to_serial(self):
        """Two successive batches through one pooled runner (the shape
        of a whole ``all`` invocation through one persistent pool) are
        byte-identical to fresh serial runs."""
        specs = tiny_specs()
        serial = BatchRunner(jobs=1).run(specs)
        with BatchRunner(jobs=2) as runner:
            first = runner.run(specs[:2])
            second = runner.run(specs)  # [0:2] now from the LRU tier
        assert_same_results(serial[:2], first)
        assert_same_results(serial, second)


class TestPersistentPool:
    def test_pool_reused_across_run_calls(self):
        specs = tiny_specs()
        with BatchRunner(jobs=2, memory_entries=0) as runner:
            runner.run(specs[:2])
            first_pool = runner._pool
            assert first_pool is not None
            runner.run(specs[2:])
            assert runner._pool is first_pool
            assert runner.pool_spawns == 1
            assert runner.pool_workers == 2

    def test_no_pool_for_serial_runner(self):
        runner = BatchRunner(jobs=1)
        runner.run(tiny_specs()[:1])
        assert runner._pool is None and runner.pool_spawns == 0
        assert runner.pool_workers == 0

    def test_close_shuts_pool_down_and_is_idempotent(self):
        runner = BatchRunner(jobs=2)
        runner.run(tiny_specs()[:2])
        assert runner._pool is not None
        runner.close()
        assert runner._pool is None
        runner.close()  # idempotent

    def test_context_manager_closes(self):
        with BatchRunner(jobs=2) as runner:
            runner.run(tiny_specs()[:2])
            assert runner._pool is not None
        assert runner._pool is None

    def test_single_spec_runs_in_process_until_pool_exists(self):
        """One pending spec is not worth a pool spawn; once workers are
        warm they are used."""
        specs = tiny_specs()
        with BatchRunner(jobs=2, memory_entries=0) as runner:
            runner.run([specs[0]])
            assert runner.pool_spawns == 0
            runner.run(specs)  # >1 pending: pool spawns
            assert runner.pool_spawns == 1


class TestMemoryTier:
    def test_repeat_dispatch_hits_memory_without_cache_dir(self):
        specs = tiny_specs()
        runner = BatchRunner()
        first = runner.run(specs)
        assert runner.cache_misses == len(specs)
        second = runner.run(specs)
        assert runner.memory_hits == len(specs)
        assert runner.cache_misses == len(specs)  # nothing recomputed
        assert_same_results(first, second)

    def test_memory_tier_can_be_disabled(self):
        spec = tiny_specs()[0]
        runner = BatchRunner(memory_entries=0)
        runner.run([spec])
        runner.run([spec])
        assert runner.cache_misses == 2 and runner.memory_hits == 0

    def test_lru_evicts_beyond_capacity(self):
        specs = tiny_specs()
        runner = BatchRunner(memory_entries=2)
        runner.run(specs)  # 4 unique specs through a 2-entry LRU
        assert len(runner._memory) == 2
        # The two most recent stay; the two oldest recompute.
        runner.run(specs[2:])
        assert runner.memory_hits == 2

    def test_size_bound_evicts_oldest_but_keeps_newest(self):
        """The observation-weighted bound caps resident outcomes even
        when the entry count is nowhere near its limit -- but never
        evicts the entry just inserted."""
        specs = tiny_specs()  # 15 observations per outcome
        runner = BatchRunner(memory_observations=20)
        runner.run(specs)
        assert len(runner._memory) == 1  # any second entry busts 20 obs
        assert runner._memory_weight == 15
        # The survivor is the most recently stored outcome.
        (key,) = runner._memory
        assert key == specs[-1].fingerprint()

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="memory_entries"):
            BatchRunner(memory_entries=-1)
        with pytest.raises(ValueError, match="memory_observations"):
            BatchRunner(memory_observations=-1)


class TestDiskCache:
    def test_second_run_hits_cache(self, tmp_path):
        specs = tiny_specs()
        cold = BatchRunner(cache_dir=tmp_path)
        first = cold.run(specs)
        assert cold.cache_misses == len(specs)
        assert cold.cache_hits == 0

        warm = BatchRunner(cache_dir=tmp_path)
        second = warm.run(specs)
        assert warm.cache_hits == len(specs)
        assert warm.disk_hits == len(specs)
        assert warm.cache_misses == 0
        assert_same_results(first, second)

    def test_cache_keyed_by_fingerprint(self, tmp_path):
        spec = tiny_specs()[0]
        BatchRunner(cache_dir=tmp_path).run([spec])
        assert (tmp_path / f"{spec.fingerprint()}.pkl").exists()
        assert (tmp_path / MANIFEST_NAME).exists()

    def test_changed_spec_misses(self, tmp_path):
        runner = BatchRunner(cache_dir=tmp_path)
        spec = tiny_specs()[0]
        runner.run([spec])
        runner.run([spec.with_(seed=99)])
        assert runner.cache_misses == 2

    def test_warm_start_reads_manifest_not_per_key_files(self, tmp_path):
        """The pack alone can serve a warm start: deleting every per-key
        pickle must not cause a single recompute."""
        specs = tiny_specs()
        first = BatchRunner(cache_dir=tmp_path).run(specs)
        for path in tmp_path.glob("*.pkl"):
            path.unlink()
        warm = BatchRunner(cache_dir=tmp_path)
        second = warm.run(specs)
        assert warm.cache_hits == len(specs) and warm.cache_misses == 0
        assert_same_results(first, second)

    def test_per_key_files_alone_also_serve_legacy_caches(self, tmp_path):
        """A PR-3-era cache directory (no manifest) still warm-starts."""
        specs = tiny_specs()[:2]
        first = BatchRunner(cache_dir=tmp_path).run(specs)
        (tmp_path / MANIFEST_NAME).unlink()
        warm = BatchRunner(cache_dir=tmp_path)
        second = warm.run(specs)
        assert warm.cache_hits == len(specs)
        assert_same_results(first, second)


class TestCacheCorruption:
    def test_corrupt_entry_in_both_tiers_recomputed(self, tmp_path):
        spec = tiny_specs()[0]
        runner = BatchRunner(cache_dir=tmp_path)
        (original,) = runner.run([spec])
        path = tmp_path / f"{spec.fingerprint()}.pkl"
        path.write_bytes(b"not a pickle")
        (tmp_path / MANIFEST_NAME).write_bytes(b"garbage with no header\n")

        recovered = BatchRunner(cache_dir=tmp_path)
        (outcome,) = recovered.run([spec])
        assert recovered.cache_misses == 1
        assert_same_results([original], [outcome])
        # The entry was rewritten and is loadable again.
        with path.open("rb") as fh:
            assert pickle.load(fh).spec == spec

    def test_truncated_per_key_entry_deleted_on_detection(self, tmp_path):
        """Regression: a corrupt per-key pickle used to survive as a
        miss forever, re-parsed (and re-failed) on every warm start; now
        detection deletes it before the recompute overwrites it."""
        spec = tiny_specs()[0]
        BatchRunner(cache_dir=tmp_path).run([spec])
        path = tmp_path / f"{spec.fingerprint()}.pkl"
        truncated = path.read_bytes()[:20]
        path.write_bytes(truncated)
        (tmp_path / MANIFEST_NAME).unlink()  # isolate the per-key tier

        runner = BatchRunner(cache_dir=tmp_path, memory_entries=0)
        assert runner._cache_load(spec.fingerprint()) is None
        assert not path.exists(), "corrupt entry must be deleted, not kept"

    def test_corrupt_per_key_entry_served_from_manifest(self, tmp_path):
        """With a healthy pack record the corrupt per-key file never
        even gets opened -- the manifest tier sits in front of it."""
        spec = tiny_specs()[0]
        (original,) = BatchRunner(cache_dir=tmp_path).run([spec])
        (tmp_path / f"{spec.fingerprint()}.pkl").write_bytes(b"junk")
        warm = BatchRunner(cache_dir=tmp_path)
        (outcome,) = warm.run([spec])
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert_same_results([original], [outcome])

    def test_truncated_manifest_tail_keeps_valid_prefix(self, tmp_path):
        """A crashed writer leaves a half-record tail; records before it
        stay readable and the tail is ignored."""
        specs = tiny_specs()[:2]
        first = BatchRunner(cache_dir=tmp_path).run(specs)
        manifest = tmp_path / MANIFEST_NAME
        with manifest.open("ab") as fh:
            fh.write(b"deadbeef 999999\ntruncated-payload")
        for path in tmp_path.glob("*.pkl"):
            path.unlink()  # force the pack tier
        warm = BatchRunner(cache_dir=tmp_path)
        second = warm.run(specs)
        assert warm.cache_hits == len(specs)
        assert_same_results(first, second)


class TestConcurrentRunners:
    def test_two_runners_share_one_cache_dir(self, tmp_path):
        """Two runners racing over overlapping batches (atomic per-key
        writes + locked manifest appends) must corrupt nothing and agree
        on every outcome."""
        specs = tiny_specs()
        results: dict[str, list] = {}
        errors: list[BaseException] = []

        def drive(name: str, batch):
            try:
                results[name] = BatchRunner(cache_dir=tmp_path).run(batch)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=("a", specs)),
            threading.Thread(target=drive, args=("b", list(reversed(specs)))),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert_same_results(results["a"], list(reversed(results["b"])))

        # Every tier is intact: a fresh runner warm-starts fully from
        # the pack, and every per-key pickle still loads.
        warm = BatchRunner(cache_dir=tmp_path)
        replay = warm.run(specs)
        assert warm.cache_hits == len(specs) and warm.cache_misses == 0
        assert_same_results(results["a"], replay)
        for path in tmp_path.glob("*.pkl"):
            with path.open("rb") as fh:
                pickle.load(fh)


class TestScheduling:
    def cheap_and_expensive(self):
        base = ScenarioSpec(
            workload="memcached",
            trace=TraceSpec.constant(0.3, 10.0),
            manager="static-big",
        )
        cheap = [base.with_(seed=i) for i in range(6)]
        expensive = base.with_(trace=TraceSpec.constant(0.9, 600.0), seed=99)
        return cheap, expensive

    def test_cost_model_orders_by_work(self):
        cheap, expensive = self.cheap_and_expensive()
        assert estimate_cost(expensive) > 10 * estimate_cost(cheap[0])
        collocated = cheap[0].with_(batch_jobs="spec:calculix")
        assert estimate_cost(collocated) > estimate_cost(cheap[0])
        loaded = cheap[0].with_(trace=TraceSpec.constant(1.0, 10.0))
        assert estimate_cost(loaded) > estimate_cost(cheap[0])

    def test_plan_covers_every_spec_exactly_once(self):
        cheap, expensive = self.cheap_and_expensive()
        pending = [(s.fingerprint(), s) for s in cheap + [expensive]]
        chunks = plan_chunks(pending, jobs=2)
        flattened = [key for chunk in chunks for key, _ in chunk]
        assert sorted(flattened) == sorted(key for key, _ in pending)

    def test_longest_job_dispatches_first_and_alone(self):
        cheap, expensive = self.cheap_and_expensive()
        pending = [(s.fingerprint(), s) for s in cheap] + [
            (expensive.fingerprint(), expensive)
        ]
        chunks = plan_chunks(pending, jobs=2)
        assert chunks[0] == [(expensive.fingerprint(), expensive)]
        assert len(chunks) > 1  # the cheap tail is not serialized behind it

    def test_cheap_specs_share_chunks(self):
        base, _ = self.cheap_and_expensive()
        cheap = [base[0].with_(seed=i) for i in range(20)]
        pending = [(s.fingerprint(), s) for s in cheap]
        chunks = plan_chunks(pending, jobs=2)
        # Uniform costs over 2 workers x oversubscription: fewer chunks
        # than specs, i.e. chunking actually batches.
        assert len(chunks) < len(pending)

    def test_cost_model_handles_builder_default_traces(self):
        """Regression: a trace that leans on builder defaults (e.g. a
        bare diurnal) must cost-estimate via the built trace, not crash
        the parallel dispatch path with a KeyError."""
        spec = ScenarioSpec(
            workload="memcached", trace=TraceSpec("diurnal"), manager="static-big"
        )
        assert estimate_cost(spec) > 0
        assert plan_chunks([(spec.fingerprint(), spec)], jobs=2)

    def test_plan_is_deterministic(self):
        cheap, expensive = self.cheap_and_expensive()
        pending = [(s.fingerprint(), s) for s in cheap + [expensive]]
        assert plan_chunks(pending, jobs=3) == plan_chunks(pending, jobs=3)

    def test_empty_plan(self):
        assert plan_chunks([], jobs=4) == []


class TestRunnerBasics:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            BatchRunner(jobs=0)

    def test_rejects_non_specs(self):
        with pytest.raises(TypeError, match="ScenarioSpec"):
            BatchRunner().run(["fig1"])

    def test_results_unwraps(self):
        spec = tiny_specs()[0]
        (result,) = BatchRunner().results([spec])
        assert result.manager_name == "static-big"

    def test_get_runner_default_is_serial_uncached(self):
        runner = get_runner(None)
        assert runner.jobs == 1 and runner.cache_dir is None
        shared = BatchRunner(jobs=3)
        assert get_runner(shared) is shared


class TestExperimentEquivalence:
    """A figure module must produce the same artifact through a parallel
    cached runner as through the default serial path."""

    def test_fig9_serial_vs_parallel(self, tmp_path):
        from repro.experiments import fig09_learning_time

        serial = fig09_learning_time.run(quick=True)
        with BatchRunner(jobs=2, cache_dir=tmp_path) as runner:
            parallel = fig09_learning_time.run(quick=True, runner=runner)
        assert serial.render() == parallel.render()

    def test_calibrate_probes_share_cache(self, tmp_path):
        from repro.experiments.calibration import edge_tail_ms
        from repro.hardware.juno import juno_r1
        from repro.workloads.memcached import memcached

        runner = BatchRunner(cache_dir=tmp_path)
        first = edge_tail_ms(
            juno_r1(), memcached(), duration_s=30.0, seed=3, runner=runner
        )
        second = edge_tail_ms(
            juno_r1(), memcached(), duration_s=30.0, seed=3, runner=runner
        )
        assert first == second
        assert runner.cache_hits == 1
