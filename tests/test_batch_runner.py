"""Tests for the batch execution layer: the persistent worker pool,
cost-aware scheduling, the two-tier cache, parallelism and dedup."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.scenarios import ScenarioSpec, TraceSpec
from repro.sim.batch import (
    MANIFEST_NAME,
    BatchRunner,
    DiskCache,
    estimate_cost,
    get_runner,
    plan_chunks,
)


def tiny_specs() -> list[ScenarioSpec]:
    """A small but non-trivial batch: two managers x two seeds."""
    base = ScenarioSpec(
        workload="memcached",
        trace=TraceSpec.constant(0.6, 15.0),
        manager="static-big",
    )
    return list(base.sweep(manager=["static-big", "octopus-man"], seed=[1, 2]))


def assert_same_results(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.spec == right.spec
        assert left.manager_stats == right.manager_stats
        assert left.result.observations == right.result.observations


class TestDeterminism:
    def test_serial_vs_two_workers_identical(self):
        """The issue's acceptance property: worker fan-out must not
        perturb results -- each worker rebuilds managers from factories,
        so a run stays a pure function of its spec."""
        specs = tiny_specs()
        serial = BatchRunner(jobs=1).run(specs)
        with BatchRunner(jobs=2) as parallel_runner:
            parallel = parallel_runner.run(specs)
        assert_same_results(serial, parallel)

    def test_order_preserved(self):
        specs = tiny_specs()
        with BatchRunner(jobs=2) as runner:
            outcomes = runner.run(specs)
        assert [o.spec for o in outcomes] == specs

    def test_duplicate_specs_run_once_and_fan_out(self):
        spec = tiny_specs()[0]
        runner = BatchRunner()
        outcomes = runner.run([spec, spec, spec])
        assert runner.cache_misses == 1
        assert_same_results([outcomes[0]], [outcomes[1]])
        assert_same_results([outcomes[0]], [outcomes[2]])

    def test_persistent_pool_path_byte_identical_to_serial(self):
        """Two successive batches through one pooled runner (the shape
        of a whole ``all`` invocation through one persistent pool) are
        byte-identical to fresh serial runs."""
        specs = tiny_specs()
        serial = BatchRunner(jobs=1).run(specs)
        with BatchRunner(jobs=2) as runner:
            first = runner.run(specs[:2])
            second = runner.run(specs)  # [0:2] now from the LRU tier
        assert_same_results(serial[:2], first)
        assert_same_results(serial, second)


class TestPersistentPool:
    def test_pool_reused_across_run_calls(self):
        specs = tiny_specs()
        with BatchRunner(jobs=2, memory_entries=0) as runner:
            runner.run(specs[:2])
            first_pool = runner._pool
            assert first_pool is not None
            runner.run(specs[2:])
            assert runner._pool is first_pool
            assert runner.pool_spawns == 1
            assert runner.pool_workers == 2

    def test_no_pool_for_serial_runner(self):
        runner = BatchRunner(jobs=1)
        runner.run(tiny_specs()[:1])
        assert runner._pool is None and runner.pool_spawns == 0
        assert runner.pool_workers == 0

    def test_close_shuts_pool_down_and_is_idempotent(self):
        runner = BatchRunner(jobs=2)
        runner.run(tiny_specs()[:2])
        assert runner._pool is not None
        runner.close()
        assert runner._pool is None
        runner.close()  # idempotent

    def test_context_manager_closes(self):
        with BatchRunner(jobs=2) as runner:
            runner.run(tiny_specs()[:2])
            assert runner._pool is not None
        assert runner._pool is None

    def test_single_spec_runs_in_process_until_pool_exists(self):
        """One pending spec is not worth a pool spawn; once workers are
        warm they are used."""
        specs = tiny_specs()
        with BatchRunner(jobs=2, memory_entries=0) as runner:
            runner.run([specs[0]])
            assert runner.pool_spawns == 0
            runner.run(specs)  # >1 pending: pool spawns
            assert runner.pool_spawns == 1


class TestMemoryTier:
    def test_repeat_dispatch_hits_memory_without_cache_dir(self):
        specs = tiny_specs()
        runner = BatchRunner()
        first = runner.run(specs)
        assert runner.cache_misses == len(specs)
        second = runner.run(specs)
        assert runner.memory_hits == len(specs)
        assert runner.cache_misses == len(specs)  # nothing recomputed
        assert_same_results(first, second)

    def test_memory_tier_can_be_disabled(self):
        spec = tiny_specs()[0]
        runner = BatchRunner(memory_entries=0)
        runner.run([spec])
        runner.run([spec])
        assert runner.cache_misses == 2 and runner.memory_hits == 0

    def test_lru_evicts_beyond_capacity(self):
        specs = tiny_specs()
        runner = BatchRunner(memory_entries=2)
        runner.run(specs)  # 4 unique specs through a 2-entry LRU
        assert len(runner._memory) == 2
        # The two most recent stay; the two oldest recompute.
        runner.run(specs[2:])
        assert runner.memory_hits == 2

    def test_size_bound_evicts_oldest_but_keeps_newest(self):
        """The observation-weighted bound caps resident outcomes even
        when the entry count is nowhere near its limit -- but never
        evicts the entry just inserted."""
        specs = tiny_specs()  # 15 observations per outcome
        runner = BatchRunner(memory_observations=20)
        runner.run(specs)
        assert len(runner._memory) == 1  # any second entry busts 20 obs
        assert runner._memory_weight == 15
        # The survivor is the most recently stored outcome.
        (key,) = runner._memory
        assert key == specs[-1].fingerprint()

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="memory_entries"):
            BatchRunner(memory_entries=-1)
        with pytest.raises(ValueError, match="memory_observations"):
            BatchRunner(memory_observations=-1)


class TestDiskCache:
    def test_second_run_hits_cache(self, tmp_path):
        specs = tiny_specs()
        cold = BatchRunner(cache_dir=tmp_path)
        first = cold.run(specs)
        assert cold.cache_misses == len(specs)
        assert cold.cache_hits == 0

        warm = BatchRunner(cache_dir=tmp_path)
        second = warm.run(specs)
        assert warm.cache_hits == len(specs)
        assert warm.disk_hits == len(specs)
        assert warm.cache_misses == 0
        assert_same_results(first, second)

    def test_cache_keyed_by_fingerprint(self, tmp_path):
        spec = tiny_specs()[0]
        BatchRunner(cache_dir=tmp_path).run([spec])
        assert (tmp_path / f"{spec.fingerprint()}.pkl").exists()
        assert (tmp_path / MANIFEST_NAME).exists()

    def test_changed_spec_misses(self, tmp_path):
        runner = BatchRunner(cache_dir=tmp_path)
        spec = tiny_specs()[0]
        runner.run([spec])
        runner.run([spec.with_(seed=99)])
        assert runner.cache_misses == 2

    def test_warm_start_reads_manifest_not_per_key_files(self, tmp_path):
        """The pack alone can serve a warm start: deleting every per-key
        pickle must not cause a single recompute."""
        specs = tiny_specs()
        first = BatchRunner(cache_dir=tmp_path).run(specs)
        for path in tmp_path.glob("*.pkl"):
            path.unlink()
        warm = BatchRunner(cache_dir=tmp_path)
        second = warm.run(specs)
        assert warm.cache_hits == len(specs) and warm.cache_misses == 0
        assert_same_results(first, second)

    def test_per_key_files_alone_also_serve_legacy_caches(self, tmp_path):
        """A PR-3-era cache directory (no manifest) still warm-starts."""
        specs = tiny_specs()[:2]
        first = BatchRunner(cache_dir=tmp_path).run(specs)
        (tmp_path / MANIFEST_NAME).unlink()
        warm = BatchRunner(cache_dir=tmp_path)
        second = warm.run(specs)
        assert warm.cache_hits == len(specs)
        assert_same_results(first, second)


class TestCacheCorruption:
    def test_corrupt_entry_in_both_tiers_recomputed(self, tmp_path):
        spec = tiny_specs()[0]
        runner = BatchRunner(cache_dir=tmp_path)
        (original,) = runner.run([spec])
        path = tmp_path / f"{spec.fingerprint()}.pkl"
        path.write_bytes(b"not a pickle")
        (tmp_path / MANIFEST_NAME).write_bytes(b"garbage with no header\n")

        recovered = BatchRunner(cache_dir=tmp_path)
        (outcome,) = recovered.run([spec])
        assert recovered.cache_misses == 1
        assert_same_results([original], [outcome])
        # The entry was rewritten and is loadable again.
        reloaded = DiskCache(tmp_path).load(spec.fingerprint())
        assert reloaded is not None and reloaded.spec == spec

    def test_truncated_per_key_entry_quarantined_on_detection(
        self, tmp_path, capsys
    ):
        """Regression: a corrupt per-key pickle used to survive as a
        miss forever, re-parsed (and re-failed) on every warm start; now
        detection moves it to quarantine/ before the recompute rewrites
        it -- out of the lookup path but preserved as evidence."""
        spec = tiny_specs()[0]
        BatchRunner(cache_dir=tmp_path).run([spec])
        path = tmp_path / f"{spec.fingerprint()}.pkl"
        truncated = path.read_bytes()[:20]
        path.write_bytes(truncated)
        (tmp_path / MANIFEST_NAME).unlink()  # isolate the per-key tier

        runner = BatchRunner(cache_dir=tmp_path, memory_entries=0)
        assert runner._cache_load(spec.fingerprint()) is None
        assert not path.exists(), "corrupt entry must leave the lookup path"
        quarantined = tmp_path / "quarantine" / path.name
        assert quarantined.read_bytes() == truncated
        assert runner.disk.corrupt_entries == 1
        assert "quarantined corrupt entry" in capsys.readouterr().err

    def test_scribbled_pack_record_quarantined(self, tmp_path, capsys):
        """A bit-rotted manifest record is copied to quarantine/ and the
        spec recomputes to the same bytes."""
        spec = tiny_specs()[0]
        (original,) = BatchRunner(cache_dir=tmp_path).run([spec])
        for path in tmp_path.glob("*.pkl"):
            path.unlink()  # force the pack tier
        manifest = tmp_path / MANIFEST_NAME
        data = bytearray(manifest.read_bytes())
        # Scribble into the record payload, past its header line.
        data[len(data) // 2] ^= 0xFF
        manifest.write_bytes(bytes(data))

        runner = BatchRunner(cache_dir=tmp_path, memory_entries=0)
        (outcome,) = runner.run([spec])
        assert runner.cache_misses == 1
        assert_same_results([original], [outcome])
        assert runner.disk.corrupt_entries == 1
        records = list((tmp_path / "quarantine").glob("*.pack-record"))
        assert len(records) == 1
        assert "quarantined corrupt manifest record" in capsys.readouterr().err

    def test_corrupt_per_key_entry_served_from_manifest(self, tmp_path):
        """With a healthy pack record the corrupt per-key file never
        even gets opened -- the manifest tier sits in front of it."""
        spec = tiny_specs()[0]
        (original,) = BatchRunner(cache_dir=tmp_path).run([spec])
        (tmp_path / f"{spec.fingerprint()}.pkl").write_bytes(b"junk")
        warm = BatchRunner(cache_dir=tmp_path)
        (outcome,) = warm.run([spec])
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert_same_results([original], [outcome])

    def test_truncated_manifest_tail_keeps_valid_prefix(self, tmp_path):
        """A crashed writer leaves a half-record tail; records before it
        stay readable and the tail is ignored."""
        specs = tiny_specs()[:2]
        first = BatchRunner(cache_dir=tmp_path).run(specs)
        manifest = tmp_path / MANIFEST_NAME
        with manifest.open("ab") as fh:
            fh.write(b"deadbeef 999999\ntruncated-payload")
        for path in tmp_path.glob("*.pkl"):
            path.unlink()  # force the pack tier
        warm = BatchRunner(cache_dir=tmp_path)
        second = warm.run(specs)
        assert warm.cache_hits == len(specs)
        assert_same_results(first, second)


class TestManifestCompaction:
    """DiskCache.close() rewrites the pack once dead bytes accumulate."""

    def eager_cache(self, cache_dir) -> DiskCache:
        """A cache that compacts on close as soon as any byte is dead."""
        return DiskCache(
            cache_dir, compact_min_dead_bytes=1, compact_dead_fraction=0.0
        )

    def read_pack_payload(self, cache_dir, key: str) -> bytes:
        """A key's payload read straight from the pack (fresh index)."""
        cache = DiskCache(cache_dir)
        offset, size, _crc = cache._load_pack_index()[key]
        with cache.manifest_path.open("rb") as fh:
            fh.seek(offset)
            return fh.read(size)

    def test_duplicate_appends_compact_away_on_close(self, tmp_path):
        cache = self.eager_cache(tmp_path)
        payloads = [(f"key{i:02d}", f"payload-{i}".encode() * 20) for i in range(8)]
        cache.store_many(payloads)
        cache.store_many(payloads)  # racing-appender duplicates: all dead
        dead_before, size_before = cache.dead_pack_bytes()
        assert dead_before > 0
        cache.close()
        assert cache.compactions == 1
        dead_after, size_after = DiskCache(tmp_path).dead_pack_bytes()
        assert dead_after == 0
        assert size_after < size_before
        for key, payload in payloads:
            assert self.read_pack_payload(tmp_path, key) == payload

    def test_malformed_tail_counts_as_dead_and_is_dropped(self, tmp_path):
        cache = self.eager_cache(tmp_path)
        cache.store_many([("alive", b"x" * 64)])
        with cache.manifest_path.open("ab") as fh:
            fh.write(b"crashed-writer 999999\nhalf-a-payload")
        cache.close()
        assert cache.compactions == 1
        assert self.read_pack_payload(tmp_path, "alive") == b"x" * 64
        assert b"crashed-writer" not in cache.manifest_path.read_bytes()

    def test_below_threshold_pack_left_untouched(self, tmp_path):
        cache = DiskCache(tmp_path)  # default thresholds (64 KiB dead)
        cache.store_many([(f"k{i}", b"y" * 100) for i in range(5)])
        before = cache.manifest_path.read_bytes()
        cache.close()
        assert cache.compactions == 0
        assert cache.manifest_path.read_bytes() == before

    def test_all_dead_threshold_respects_fraction(self, tmp_path):
        """A big pack with little dead weight is not worth rewriting."""
        cache = DiskCache(
            tmp_path, compact_min_dead_bytes=1, compact_dead_fraction=0.5
        )
        cache.store_many([(f"k{i}", b"z" * 1000) for i in range(10)])
        cache.store_many([("k0", b"z" * 1000)])  # ~9% dead
        cache.close()
        assert cache.compactions == 0

    def test_compacted_cache_still_serves_batch_runner(self, tmp_path):
        """End to end: duplicate outcome appends, an eager close, then a
        fresh runner warm-starts everything from the compacted pack."""
        specs = tiny_specs()
        runner = BatchRunner(cache_dir=tmp_path)
        runner._disk.compact_min_dead_bytes = 1
        runner._disk.compact_dead_fraction = 0.0
        first = runner.run(specs)
        # Duplicate the appends (what a racing runner doing the same
        # sweep leaves behind), then close -> compaction.
        import pickle as pickle_mod

        runner._disk.store_many(
            [
                (
                    spec.fingerprint(),
                    pickle_mod.dumps(outcome, pickle_mod.HIGHEST_PROTOCOL),
                )
                for spec, outcome in zip(specs, first)
            ]
        )
        assert runner.disk.dead_pack_bytes()[0] > 0
        runner.close()
        assert runner.disk.compactions == 1
        for path in tmp_path.glob("*.pkl"):
            path.unlink()  # pack-only warm start
        warm = BatchRunner(cache_dir=tmp_path)
        replay = warm.run(specs)
        assert warm.cache_hits == len(specs) and warm.cache_misses == 0
        assert_same_results(first, replay)

    def test_version_stranded_records_reclaimed(self, tmp_path):
        """Records from a retired cache-format generation are the
        *latest* for their (old-prefix) key, so latest-wins indexing
        alone would keep them alive forever; ``live_prefix`` lets
        compaction classify and reclaim them."""
        from repro.scenarios.spec import cache_key_prefix

        prefix = cache_key_prefix()
        cache = DiskCache(
            tmp_path,
            live_prefix=prefix,
            compact_min_dead_bytes=1,
            compact_dead_fraction=0.0,
        )
        stranded = [(f"s1-old-kernel-{i:024d}", b"old" * 50) for i in range(6)]
        bare_v1 = [(f"{i:024d}", b"bare" * 40) for i in range(3)]
        current = [(f"{prefix}{i:024d}", b"new" * 50) for i in range(4)]
        # Equal-or-newer generations must survive: a same-schema kernel
        # variant (ordering unknowable) and a newer build sharing the
        # directory.
        peers = [("s2-other-kernel-" + "9" * 24, b"peer" * 40)]
        newer = [("s99-future-" + "8" * 24, b"next" * 40)]
        cache.store_many(stranded)
        cache.store_many(bare_v1)
        cache.store_many(current)
        cache.store_many(peers)
        cache.store_many(newer)
        dead, _ = cache.dead_pack_bytes()
        assert dead > 0, "stranded records must count as dead"
        cache.close()
        assert cache.compactions == 1
        index = DiskCache(tmp_path)._load_pack_index()
        survivors = current + peers + newer
        assert sorted(index) == sorted(key for key, _ in survivors)
        for key, payload in survivors:
            assert self.read_pack_payload(tmp_path, key) == payload

    def test_stranded_per_key_files_swept_on_close(self, tmp_path):
        """The per-key twins of version-stranded records leak too --
        their retired keys are never looked up, so only the close-time
        sweep can reclaim them; current-generation files survive."""
        from repro.scenarios.spec import cache_key_prefix

        prefix = cache_key_prefix()
        old = tmp_path / "deadbeef00112233445566778899aabb.pkl"  # v1-era stem
        old.write_bytes(b"legacy payload")
        current = tmp_path / f"{prefix}{'0' * 24}.pkl"
        current.write_bytes(b"current payload")
        unrelated = tmp_path / "notes.txt"
        unrelated.write_text("not a cache entry")
        newer = tmp_path / f"s99-future-{'8' * 24}.pkl"
        newer.write_bytes(b"a newer build's entry")
        cache = DiskCache(tmp_path, live_prefix=prefix)
        cache.close()
        assert not old.exists()
        assert current.exists() and unrelated.exists() and newer.exists()
        assert cache.stranded_files_removed == 1
        # Without a live_prefix (generic use) nothing is touched.
        other = tmp_path / "whatever.pkl"
        other.write_bytes(b"x")
        DiskCache(tmp_path).close()
        assert other.exists()

    def test_runner_disk_cache_carries_current_prefix(self, tmp_path):
        from repro.scenarios.spec import cache_key_prefix

        runner = BatchRunner(cache_dir=tmp_path)
        assert runner.disk.live_prefix == cache_key_prefix()
        spec = tiny_specs()[0]
        assert spec.fingerprint().startswith(cache_key_prefix())

    def test_stale_index_after_foreign_compaction_serves_right_key(
        self, tmp_path
    ):
        """A reader whose cached index predates another process's
        compaction must never serve the wrong outcome.

        Engineered worst case: equal-length keys and equal-sized
        payloads, so the stale offset of one key lands exactly on the
        other key's payload in the compacted pack and unpickles
        cleanly -- only the identity check can catch it."""
        import pickle as pickle_mod

        spec_a, spec_b = tiny_specs()[:2]
        key_a, key_b = spec_a.fingerprint(), spec_b.fingerprint()
        outcome_a, outcome_b = BatchRunner().run([spec_a, spec_b])
        raw_a = pickle_mod.dumps(outcome_a, pickle_mod.HIGHEST_PROTOCOL)
        raw_b = pickle_mod.dumps(outcome_b, pickle_mod.HIGHEST_PROTOCOL)
        # Pad to a common size: pickle.loads ignores trailing bytes, so
        # both records stay decodable and perfectly aligned.
        size = max(len(raw_a), len(raw_b))
        payload_a, payload_b = raw_a.ljust(size, b"\0"), raw_b.ljust(size, b"\0")

        writer = DiskCache(tmp_path)
        writer.store_many([(key_a, payload_a)])  # dies at compaction...
        writer.store_many([(key_b, payload_b)])
        writer.store_many([(key_a, payload_a)])  # ...superseded by this
        reader = DiskCache(tmp_path)
        reader._load_pack_index()  # snapshot the pre-compaction offsets
        self.eager_cache(tmp_path).close()  # foreign compaction

        # Stale key_b offset == compacted key_a payload offset: without
        # the identity check this returns outcome_a for key_b.
        served = reader.load(key_b)
        assert served is not None
        assert served.spec.fingerprint() == key_b
        assert served.result.observations == outcome_b.result.observations
        also = reader.load(key_a)
        assert also is not None and also.spec.fingerprint() == key_a

    def test_racing_appenders_lose_nothing_to_compaction(self, tmp_path):
        """Appenders running while another handle compacts: the inode
        re-check after flock keeps every record reachable."""
        errors: list[BaseException] = []
        per_thread = 40

        def append(thread_id: int):
            try:
                cache = DiskCache(tmp_path)
                for i in range(per_thread):
                    cache.store_many(
                        [(f"t{thread_id}-{i:03d}", f"{thread_id}:{i}".encode())]
                    )
                cache.close()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def compact_repeatedly():
            try:
                for _ in range(25):
                    compactor = self.eager_cache(tmp_path)
                    # Dead weight so every close really rewrites.
                    compactor.store_many([("churn", b"c" * 64)] * 2)
                    compactor.close()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=append, args=(t,)) for t in range(3)
        ] + [threading.Thread(target=compact_repeatedly)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        index = DiskCache(tmp_path)._load_pack_index()
        for thread_id in range(3):
            for i in range(per_thread):
                key = f"t{thread_id}-{i:03d}"
                assert key in index, f"{key} lost during compaction"
                assert (
                    self.read_pack_payload(tmp_path, key)
                    == f"{thread_id}:{i}".encode()
                )


class TestConcurrentRunners:
    def test_two_runners_share_one_cache_dir(self, tmp_path):
        """Two runners racing over overlapping batches (atomic per-key
        writes + locked manifest appends) must corrupt nothing and agree
        on every outcome."""
        specs = tiny_specs()
        results: dict[str, list] = {}
        errors: list[BaseException] = []

        def drive(name: str, batch):
            try:
                results[name] = BatchRunner(cache_dir=tmp_path).run(batch)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=("a", specs)),
            threading.Thread(target=drive, args=("b", list(reversed(specs)))),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert_same_results(results["a"], list(reversed(results["b"])))

        # Every tier is intact: a fresh runner warm-starts fully from
        # the pack, and every per-key pickle still loads.
        warm = BatchRunner(cache_dir=tmp_path)
        replay = warm.run(specs)
        assert warm.cache_hits == len(specs) and warm.cache_misses == 0
        assert_same_results(results["a"], replay)
        per_key = DiskCache(tmp_path)
        for path in tmp_path.glob("*.pkl"):
            assert per_key._file_load(path.stem) is not None


class TestScheduling:
    def cheap_and_expensive(self):
        base = ScenarioSpec(
            workload="memcached",
            trace=TraceSpec.constant(0.3, 10.0),
            manager="static-big",
        )
        cheap = [base.with_(seed=i) for i in range(6)]
        expensive = base.with_(trace=TraceSpec.constant(0.9, 600.0), seed=99)
        return cheap, expensive

    def test_cost_model_orders_by_work(self):
        cheap, expensive = self.cheap_and_expensive()
        assert estimate_cost(expensive) > 10 * estimate_cost(cheap[0])
        collocated = cheap[0].with_(batch_jobs="spec:calculix")
        assert estimate_cost(collocated) > estimate_cost(cheap[0])
        loaded = cheap[0].with_(trace=TraceSpec.constant(1.0, 10.0))
        assert estimate_cost(loaded) > estimate_cost(cheap[0])

    def test_plan_covers_every_spec_exactly_once(self):
        cheap, expensive = self.cheap_and_expensive()
        pending = [(s.fingerprint(), s) for s in cheap + [expensive]]
        chunks = plan_chunks(pending, jobs=2)
        flattened = [key for chunk in chunks for key, _ in chunk]
        assert sorted(flattened) == sorted(key for key, _ in pending)

    def test_longest_job_dispatches_first_and_alone(self):
        cheap, expensive = self.cheap_and_expensive()
        pending = [(s.fingerprint(), s) for s in cheap] + [
            (expensive.fingerprint(), expensive)
        ]
        chunks = plan_chunks(pending, jobs=2)
        assert chunks[0] == [(expensive.fingerprint(), expensive)]
        assert len(chunks) > 1  # the cheap tail is not serialized behind it

    def test_cheap_specs_share_chunks(self):
        base, _ = self.cheap_and_expensive()
        cheap = [base[0].with_(seed=i) for i in range(20)]
        pending = [(s.fingerprint(), s) for s in cheap]
        chunks = plan_chunks(pending, jobs=2)
        # Uniform costs over 2 workers x oversubscription: fewer chunks
        # than specs, i.e. chunking actually batches.
        assert len(chunks) < len(pending)

    def test_cost_model_handles_builder_default_traces(self):
        """Regression: a trace that leans on builder defaults (e.g. a
        bare diurnal) must cost-estimate via the built trace, not crash
        the parallel dispatch path with a KeyError."""
        spec = ScenarioSpec(
            workload="memcached", trace=TraceSpec("diurnal"), manager="static-big"
        )
        assert estimate_cost(spec) > 0
        assert plan_chunks([(spec.fingerprint(), spec)], jobs=2)

    def test_plan_is_deterministic(self):
        cheap, expensive = self.cheap_and_expensive()
        pending = [(s.fingerprint(), s) for s in cheap + [expensive]]
        assert plan_chunks(pending, jobs=3) == plan_chunks(pending, jobs=3)

    def test_empty_plan(self):
        assert plan_chunks([], jobs=4) == []


class TestRunnerBasics:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            BatchRunner(jobs=0)

    def test_rejects_non_specs(self):
        with pytest.raises(TypeError, match="ScenarioSpec"):
            BatchRunner().run(["fig1"])

    def test_results_unwraps(self):
        spec = tiny_specs()[0]
        (result,) = BatchRunner().results([spec])
        assert result.manager_name == "static-big"

    def test_get_runner_default_is_serial_uncached(self):
        runner = get_runner(None)
        assert runner.jobs == 1 and runner.cache_dir is None
        shared = BatchRunner(jobs=3)
        assert get_runner(shared) is shared


class TestExperimentEquivalence:
    """A figure module must produce the same artifact through a parallel
    cached runner as through the default serial path."""

    def test_fig9_serial_vs_parallel(self, tmp_path):
        from repro.experiments import fig09_learning_time

        serial = fig09_learning_time.run(quick=True)
        with BatchRunner(jobs=2, cache_dir=tmp_path) as runner:
            parallel = fig09_learning_time.run(quick=True, runner=runner)
        assert serial.render() == parallel.render()

    def test_calibrate_probes_share_cache(self, tmp_path):
        from repro.experiments.calibration import edge_tail_ms
        from repro.hardware.juno import juno_r1
        from repro.workloads.memcached import memcached

        runner = BatchRunner(cache_dir=tmp_path)
        first = edge_tail_ms(
            juno_r1(), memcached(), duration_s=30.0, seed=3, runner=runner
        )
        second = edge_tail_ms(
            juno_r1(), memcached(), duration_s=30.0, seed=3, runner=runner
        )
        assert first == second
        assert runner.cache_hits == 1
