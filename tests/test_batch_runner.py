"""Tests for the batch execution layer: parallelism, caching, dedup."""

from __future__ import annotations

import pickle

import pytest

from repro.scenarios import ScenarioSpec, TraceSpec
from repro.sim.batch import BatchRunner, get_runner


def tiny_specs() -> list[ScenarioSpec]:
    """A small but non-trivial batch: two managers x two seeds."""
    base = ScenarioSpec(
        workload="memcached",
        trace=TraceSpec.constant(0.6, 15.0),
        manager="static-big",
    )
    return list(base.sweep(manager=["static-big", "octopus-man"], seed=[1, 2]))


def assert_same_results(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.spec == right.spec
        assert left.manager_stats == right.manager_stats
        assert left.result.observations == right.result.observations


class TestDeterminism:
    def test_serial_vs_two_workers_identical(self):
        """The issue's acceptance property: worker fan-out must not
        perturb results -- each worker rebuilds managers from factories,
        so a run stays a pure function of its spec."""
        specs = tiny_specs()
        serial = BatchRunner(jobs=1).run(specs)
        parallel = BatchRunner(jobs=2).run(specs)
        assert_same_results(serial, parallel)

    def test_order_preserved(self):
        specs = tiny_specs()
        outcomes = BatchRunner(jobs=2).run(specs)
        assert [o.spec for o in outcomes] == specs

    def test_duplicate_specs_run_once_and_fan_out(self):
        spec = tiny_specs()[0]
        runner = BatchRunner()
        outcomes = runner.run([spec, spec, spec])
        assert runner.cache_misses == 1
        assert_same_results([outcomes[0]], [outcomes[1]])
        assert_same_results([outcomes[0]], [outcomes[2]])


class TestCache:
    def test_second_run_hits_cache(self, tmp_path):
        specs = tiny_specs()
        cold = BatchRunner(cache_dir=tmp_path)
        first = cold.run(specs)
        assert cold.cache_misses == len(specs)
        assert cold.cache_hits == 0

        warm = BatchRunner(cache_dir=tmp_path)
        second = warm.run(specs)
        assert warm.cache_hits == len(specs)
        assert warm.cache_misses == 0
        assert_same_results(first, second)

    def test_cache_keyed_by_fingerprint(self, tmp_path):
        spec = tiny_specs()[0]
        runner = BatchRunner(cache_dir=tmp_path)
        runner.run([spec])
        assert (tmp_path / f"{spec.fingerprint()}.pkl").exists()

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        spec = tiny_specs()[0]
        runner = BatchRunner(cache_dir=tmp_path)
        (original,) = runner.run([spec])
        path = tmp_path / f"{spec.fingerprint()}.pkl"
        path.write_bytes(b"not a pickle")

        recovered = BatchRunner(cache_dir=tmp_path)
        (outcome,) = recovered.run([spec])
        assert recovered.cache_misses == 1
        assert_same_results([original], [outcome])
        # The entry was rewritten and is loadable again.
        with path.open("rb") as fh:
            assert pickle.load(fh).spec == spec

    def test_changed_spec_misses(self, tmp_path):
        runner = BatchRunner(cache_dir=tmp_path)
        spec = tiny_specs()[0]
        runner.run([spec])
        runner.run([spec.with_(seed=99)])
        assert runner.cache_misses == 2


class TestRunnerBasics:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            BatchRunner(jobs=0)

    def test_rejects_non_specs(self):
        with pytest.raises(TypeError, match="ScenarioSpec"):
            BatchRunner().run(["fig1"])

    def test_results_unwraps(self):
        spec = tiny_specs()[0]
        (result,) = BatchRunner().results([spec])
        assert result.manager_name == "static-big"

    def test_get_runner_default_is_serial_uncached(self):
        runner = get_runner(None)
        assert runner.jobs == 1 and runner.cache_dir is None
        shared = BatchRunner(jobs=3)
        assert get_runner(shared) is shared


class TestExperimentEquivalence:
    """A figure module must produce the same artifact through a parallel
    cached runner as through the default serial path."""

    def test_fig9_serial_vs_parallel(self, tmp_path):
        from repro.experiments import fig09_learning_time

        serial = fig09_learning_time.run(quick=True)
        parallel = fig09_learning_time.run(
            quick=True, runner=BatchRunner(jobs=2, cache_dir=tmp_path)
        )
        assert serial.render() == parallel.render()

    def test_calibrate_probes_share_cache(self, tmp_path):
        from repro.experiments.calibration import edge_tail_ms
        from repro.hardware.juno import juno_r1
        from repro.workloads.memcached import memcached

        runner = BatchRunner(cache_dir=tmp_path)
        first = edge_tail_ms(
            juno_r1(), memcached(), duration_s=30.0, seed=3, runner=runner
        )
        second = edge_tail_ms(
            juno_r1(), memcached(), duration_s=30.0, seed=3, runner=runner
        )
        assert first == second
        assert runner.cache_hits == 1
