"""Scenario-pack DSL: parsing, compilation, determinism, execution.

The load-bearing properties: a pack document compiles to the same
frozen-spec fingerprints every time (and independently of entry
order), probabilistic fault clauses lower to identical schedules under
a fixed seed whether the pack runs serially or over a worker pool, and
every malformed document fails with a ``PackError`` whose path points
at the offending clause.
"""

from __future__ import annotations

import json
import textwrap

import pytest
import yaml

from repro.errors import PackError, ReproError
from repro.fleet.spec import FleetSpec
from repro.packs import (
    SEED_STRIDE,
    CompiledPack,
    compile_pack,
    load_pack,
    parse_pack,
    run_pack,
)
from repro.scenarios.spec import ScenarioSpec
from repro.sim.batch import BatchRunner


def doc(text: str) -> dict:
    return yaml.safe_load(textwrap.dedent(text))


SMALL_PACK = doc("""
    name: unit
    description: test pack
    scenarios:
      - family: edge-load
        params: {workload: memcached, duration_s: 30.0}
        sweep:
          level: [0.4, 0.8]
      - scenario:
          workload: memcached
          manager: static-big
          trace: {kind: mmpp, levels: [0.3, 1.0], mean_dwell_s: [20, 5],
                  duration_s: 40, seed: 5}
        label: burst
        weight: 2
      - fleet:
          n_nodes: 3
          workload: memcached
          manager: static-big
          balancer: round-robin
          trace: {kind: constant, level: 0.5, duration_s: 20}
          faults:
            - {kind: node-death, probability: 0.5, earliest_s: 5}
          seed: 2
        label: tiny-fleet
""")


class TestParsing:
    def test_round_trip_through_yaml_and_json(self, tmp_path):
        yaml_file = tmp_path / "pack.yaml"
        yaml_file.write_text(yaml.safe_dump(SMALL_PACK))
        json_file = tmp_path / "pack.json"
        json_file.write_text(json.dumps(SMALL_PACK))
        from_yaml = compile_pack(load_pack(yaml_file))
        from_json = compile_pack(load_pack(json_file))
        assert from_yaml.fingerprints() == from_json.fingerprints()
        assert [i.key for i in from_yaml.items] == [
            i.key for i in from_json.items
        ]

    def test_entry_needs_exactly_one_kind(self):
        bad = doc("""
            name: x
            scenarios:
              - family: edge-load
                scenario: {workload: memcached}
        """)
        with pytest.raises(PackError, match=r"scenarios\[0\].*exactly one"):
            parse_pack(bad)

    def test_unknown_top_key_suggests(self):
        with pytest.raises(PackError, match="did you mean 'scenarios'"):
            parse_pack({"name": "x", "scenarois": []})

    def test_unknown_entry_key_suggests(self):
        bad = doc("""
            name: x
            scenarios:
              - family: edge-load
                wieght: 2
        """)
        with pytest.raises(PackError, match="did you mean 'weight'"):
            parse_pack(bad)

    def test_weight_must_be_positive_int(self):
        for weight in (0, -1, 1.5, True, "2"):
            bad = {"name": "x", "scenarios": [
                {"family": "edge-load", "weight": weight}]}
            with pytest.raises(PackError, match=r"scenarios\[0\].weight"):
                parse_pack(bad)

    def test_params_rejected_on_inline_entries(self):
        bad = doc("""
            name: x
            scenarios:
              - scenario: {workload: memcached}
                params: {seed: 3}
        """)
        with pytest.raises(PackError, match="only applies to family"):
            parse_pack(bad)

    def test_empty_scenarios_rejected(self):
        with pytest.raises(PackError, match="must not be empty"):
            parse_pack({"name": "x", "scenarios": []})

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(PackError, match="cannot read pack"):
            load_pack(tmp_path / "missing.yaml")

    def test_invalid_yaml(self, tmp_path):
        bad = tmp_path / "bad.yaml"
        bad.write_text("name: [unclosed")
        with pytest.raises(PackError, match="invalid YAML"):
            load_pack(bad)


class TestCompilation:
    def test_deterministic_fingerprints(self):
        a = compile_pack(SMALL_PACK)
        b = compile_pack(SMALL_PACK)
        assert a.fingerprints() == b.fingerprints()

    def test_fingerprints_independent_of_entry_order(self):
        reordered = dict(SMALL_PACK)
        reordered["scenarios"] = list(reversed(SMALL_PACK["scenarios"]))
        assert sorted(compile_pack(SMALL_PACK).fingerprints()) == sorted(
            compile_pack(reordered).fingerprints()
        )

    def test_sweep_expands_cartesian_over_sorted_keys(self):
        pack = compile_pack(doc("""
            name: x
            scenarios:
              - family: edge-load
                params: {workload: memcached, duration_s: 30.0}
                sweep:
                  level: [0.4, 0.8]
                  seed: [1, 2]
        """))
        assert len(pack.items) == 4
        variants = [dict(item.variant) for item in pack.items]
        # level is the outer axis (sorted key order), seed the inner.
        assert variants == [
            {"level": 0.4, "seed": 1}, {"level": 0.4, "seed": 2},
            {"level": 0.8, "seed": 1}, {"level": 0.8, "seed": 2}]

    def test_weight_expands_to_strided_seed_replicas(self):
        pack = compile_pack(SMALL_PACK)
        burst = [i for i in pack.items if i.key.startswith("burst")]
        assert [i.replica for i in burst] == [0, 1]
        base = burst[0].spec.seed
        assert burst[1].spec.seed == base + SEED_STRIDE
        assert burst[0].spec.fingerprint() != burst[1].spec.fingerprint()

    def test_keys_are_unique(self):
        pack = compile_pack(SMALL_PACK)
        keys = [item.key for item in pack.items]
        assert len(set(keys)) == len(keys)

    def test_items_are_ordinary_specs(self):
        pack = compile_pack(SMALL_PACK)
        kinds = [type(item.spec) for item in pack.items]
        assert kinds.count(FleetSpec) == 1
        assert kinds.count(ScenarioSpec) == len(pack.items) - 1
        assert isinstance(pack, CompiledPack)

    def test_quick_override_applies_to_family_entries_only(self):
        pack_doc = doc("""
            name: x
            scenarios:
              - family: diurnal-policy
                params: {workload: memcached, manager: static-big}
              - scenario:
                  workload: memcached
                  manager: static-big
                  trace: {kind: constant, level: 0.5, duration_s: 25}
        """)
        full = compile_pack(pack_doc)
        quick = compile_pack(pack_doc, quick=True)
        assert (
            quick.items[0].spec.trace.duration_s()
            < full.items[0].spec.trace.duration_s()
        )
        # The inline entry spells its duration out; --quick leaves it.
        assert (
            quick.items[1].spec.fingerprint()
            == full.items[1].spec.fingerprint()
        )

    def test_unknown_family_error_carries_path_and_suggestion(self):
        bad = {"name": "x", "scenarios": [{"family": "edge-lod"}]}
        with pytest.raises(PackError, match=r"scenarios\[0\].*did you mean 'edge-load'"):
            compile_pack(bad)

    def test_unknown_family_param_error(self):
        bad = {"name": "x", "scenarios": [
            {"family": "edge-load",
             "params": {"workload": "memcached", "levl": 0.5}}]}
        with pytest.raises(PackError, match="did you mean 'level'"):
            compile_pack(bad)

    def test_unknown_trace_kind_error(self):
        bad = {"name": "x", "scenarios": [{"scenario": {
            "workload": "memcached", "manager": "static-big",
            "trace": {"kind": "diurnl", "duration_s": 30}}}]}
        with pytest.raises(
            PackError, match=r"trace\.kind.*did you mean 'diurnal'"
        ):
            compile_pack(bad)

    def test_unknown_inline_field_error(self):
        bad = {"name": "x", "scenarios": [{"scenario": {
            "workload": "memcached", "manger": "static-big",
            "trace": {"kind": "constant", "level": 0.5, "duration_s": 30}}}]}
        with pytest.raises(PackError, match="did you mean 'manager'"):
            compile_pack(bad)

    def test_pack_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            compile_pack({"name": "x", "scenarios": [{"family": "nope"}]})

    def test_validate_buildable_catches_bad_trace_params(self):
        bad = {"name": "x", "scenarios": [{"scenario": {
            "workload": "memcached", "manager": "static-big",
            "trace": {"kind": "constant", "level": 0.5, "duration_s": 30,
                      "wobble": 3}}}]}
        pack = compile_pack(bad)  # spec layer doesn't build the trace
        with pytest.raises(PackError):
            pack.validate_buildable()


class TestExecution:
    def test_serial_and_parallel_runs_identical(self):
        """The pack's fault schedules and outcomes are fixed before any
        worker starts, so a worker pool cannot change the results."""
        serial = run_pack(compile_pack(SMALL_PACK))
        with BatchRunner(jobs=4) as runner:
            parallel = run_pack(compile_pack(SMALL_PACK), runner=runner)
        assert serial.rows() == parallel.rows()

    def test_outcomes_align_with_items(self):
        result = run_pack(compile_pack(SMALL_PACK))
        assert len(result.outcomes) == len(result.pack.items)
        rows = result.rows()
        assert [row[0] for row in rows] == [
            item.key for item in result.pack.items]
        for _, kind, qos, power, energy, status in rows:
            assert status == "ok"
            assert 0.0 <= qos <= 1.0
            assert power > 0.0 and energy > 0.0

    def test_fleet_rows_are_labelled(self):
        result = run_pack(compile_pack(SMALL_PACK))
        kinds = {key: kind for key, kind, *_ in result.rows()}
        assert kinds["tiny-fleet"] == "fleet(3)"
        assert kinds["burst"] == "scenario"

    def test_render_and_summary(self):
        result = run_pack(compile_pack(SMALL_PACK))
        rendered = result.render()
        assert "Pack -- unit" in rendered
        assert "tiny-fleet" in rendered
        summary = result.summary()
        assert summary["pack"] == "unit"
        assert len(summary["items"]) == len(result.pack.items)
        json.dumps(summary)  # JSON-ready

    def test_shipped_packs_all_compile(self):
        from pathlib import Path

        pack_dir = Path(__file__).resolve().parent.parent / "packs"
        files = sorted(pack_dir.glob("*.yaml"))
        assert len(files) >= 8
        for file in files:
            pack = compile_pack(load_pack(file))
            pack.validate_buildable()
            fingerprints = pack.fingerprints()
            assert len(set(fingerprints)) == len(fingerprints), file
