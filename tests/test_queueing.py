"""Unit and property tests for the dispatch queue."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.queueing import (
    DispatchQueue,
    lindley_completion_times,
    lindley_completion_times_reference,
)


def make_queue(seed=0, **kwargs):
    return DispatchQueue(rng=np.random.default_rng(seed), **kwargs)


def exponential_sampler(mean):
    def sample(rng, n):
        return rng.exponential(mean, size=n)

    return sample


class TestBasics:
    def test_requires_reconfigure_first(self):
        queue = make_queue()
        with pytest.raises(RuntimeError, match="reconfigure"):
            queue.run_interval(0, 1, 10, exponential_sampler(0.01))

    def test_rejects_empty_or_negative_speeds(self):
        queue = make_queue()
        with pytest.raises(ValueError):
            queue.reconfigure([], now=0)
        with pytest.raises(ValueError):
            queue.reconfigure([1.0, -1.0], now=0)

    def test_zero_rate_interval(self):
        queue = make_queue()
        queue.reconfigure([1.0], now=0)
        stats = queue.run_interval(0, 1, 0.0, exponential_sampler(0.01))
        assert stats.arrivals == 0
        assert stats.latencies_s.size == 0
        assert stats.mean_utilization == 0.0

    def test_latency_at_least_service(self):
        queue = make_queue()
        queue.reconfigure([1.0], now=0)
        stats = queue.run_interval(0, 10, 50, exponential_sampler(0.001))
        assert np.all(stats.latencies_s > 0)

    def test_arrival_times_within_interval(self):
        queue = make_queue()
        queue.reconfigure([1.0, 1.0], now=0)
        stats = queue.run_interval(3.0, 4.0, 100, exponential_sampler(0.001))
        assert np.all(stats.arrival_times_s >= 3.0)
        assert np.all(stats.arrival_times_s < 4.0)


class TestLindleyKernel:
    """The vectorized queue kernel must match the per-request loop."""

    @given(
        n=st.integers(1, 200),
        speed=st.floats(0.1, 4.0),
        free0=st.floats(0.0, 5.0),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_loop(self, n, speed, free0, seed):
        rng = np.random.default_rng(seed)
        arrivals = np.sort(rng.uniform(0.0, 10.0, size=n))
        service = rng.exponential(0.05, size=n) / speed
        fast = lindley_completion_times(arrivals, service, free0)
        slow = lindley_completion_times_reference(arrivals, service, free0)
        np.testing.assert_allclose(fast, slow, rtol=1e-9, atol=1e-12)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_completions_monotone_and_after_arrivals(self, seed):
        rng = np.random.default_rng(seed)
        n = 50
        arrivals = np.sort(rng.uniform(0.0, 5.0, size=n))
        service = rng.exponential(0.1, size=n)
        completion = lindley_completion_times(arrivals, service, 1.0)
        assert np.all(np.diff(completion) >= 0)  # FCFS order preserved
        # C_j >= a_j + s_j exactly in real arithmetic; allow float slack.
        assert np.all(completion >= (arrivals + service) * (1 - 1e-12))

    def test_burst_of_simultaneous_arrivals_serializes(self):
        """Equal arrival times (a batch) must queue behind each other."""
        arrivals = np.zeros(4)
        service = np.full(4, 0.25)
        completion = lindley_completion_times(arrivals, service, 0.0)
        np.testing.assert_allclose(completion, [0.25, 0.5, 0.75, 1.0])

    def test_initial_free_time_delays_first_request(self):
        completion = lindley_completion_times(
            np.array([0.0]), np.array([1.0]), 3.0
        )
        np.testing.assert_allclose(completion, [4.0])

    def test_run_interval_matches_reference_dispatch(self):
        """End to end: run_interval latencies equal a reference dispatch
        replay using the same rng draws."""
        queue = make_queue(seed=42, balance_exponent=0.55)
        queue.reconfigure([1.0, 0.4, 0.4], now=0.0)
        free_before = queue._free.copy()
        rng_replay = np.random.default_rng(42)
        stats = queue.run_interval(0.0, 5.0, 400.0, exponential_sampler(0.004))

        # Replay the rng stream: arrivals, demands, assignment.
        n = int(rng_replay.poisson(400.0 * 5.0))
        arrivals = np.sort(rng_replay.uniform(0.0, 5.0, size=n))
        demands = rng_replay.exponential(0.004, size=n)
        assigned = rng_replay.choice(3, size=n, p=queue._weights)
        assert n == stats.arrivals

        expected = np.empty(n)
        for k, speed in enumerate((1.0, 0.4, 0.4)):
            (idx,) = np.nonzero(assigned == k)
            if len(idx) == 0:
                continue
            completion = lindley_completion_times_reference(
                arrivals[idx], demands[idx] / speed, free_before[k]
            )
            expected[idx] = completion - arrivals[idx]
        np.testing.assert_allclose(stats.latencies_s, expected, rtol=1e-9)


class TestQueueingBehaviour:
    def test_latency_grows_with_utilization(self):
        """Mean sojourn time must increase with offered load."""
        means = []
        for rate in (100, 400, 800):
            queue = make_queue(seed=7)
            queue.reconfigure([1.0], now=0)
            all_lat = []
            for i in range(30):
                stats = queue.run_interval(i, i + 1, rate, exponential_sampler(0.001))
                all_lat.append(stats.latencies_s)
            means.append(float(np.mean(np.concatenate(all_lat))))
        assert means[0] < means[1] < means[2]

    def test_mm1_mean_close_to_theory(self):
        """M/M/1 at rho=0.5: mean sojourn = 1/(mu - lambda)."""
        queue = make_queue(seed=3, balance_exponent=1.0)
        queue.reconfigure([1.0], now=0)
        lat = []
        for i in range(200):
            stats = queue.run_interval(i, i + 1, 500, exponential_sampler(0.001))
            lat.append(stats.latencies_s)
        measured = float(np.mean(np.concatenate(lat)))
        assert measured == pytest.approx(1.0 / (1000 - 500), rel=0.15)

    def test_overload_builds_backlog_across_intervals(self):
        queue = make_queue(seed=5)
        queue.reconfigure([1.0], now=0)
        queue.run_interval(0, 1, 2000, exponential_sampler(0.001))  # rho = 2
        assert queue.backlog_s(1.0) > 0.5

    def test_faster_server_attracts_more_work(self):
        queue = make_queue(seed=9, balance_exponent=1.0)
        queue.reconfigure([2.0, 1.0], now=0)
        stats = queue.run_interval(0, 20, 500, exponential_sampler(0.002))
        # At balanced dispatch both servers see equal utilization.
        assert stats.utilizations[0] == pytest.approx(stats.utilizations[1], abs=0.1)

    def test_sublinear_balance_overloads_slow_server(self):
        """With exponent < 1 the slow server runs proportionally hotter."""
        queue = make_queue(seed=9, balance_exponent=0.0)  # uniform dispatch
        queue.reconfigure([3.0, 1.0], now=0)
        stats = queue.run_interval(0, 30, 900, exponential_sampler(0.002))
        assert stats.utilizations[1] > stats.utilizations[0]

    def test_burstiness_raises_tail_at_same_load(self):
        tails = []
        for burst in (1.0, 4.0):
            queue = make_queue(seed=11, burstiness=burst)
            queue.reconfigure([1.0], now=0)
            lat = []
            for i in range(100):
                stats = queue.run_interval(i, i + 1, 600, exponential_sampler(0.001))
                lat.append(stats.latencies_s)
            tails.append(float(np.quantile(np.concatenate(lat), 0.95)))
        assert tails[1] > tails[0] * 1.5

    def test_burst_arrival_rate_preserved(self):
        queue = make_queue(seed=13, burstiness=3.0)
        queue.reconfigure([10.0], now=0)
        total = 0
        for i in range(200):
            stats = queue.run_interval(i, i + 1, 100, exponential_sampler(0.0001))
            total += stats.arrivals
        assert total == pytest.approx(200 * 100, rel=0.1)


class TestReconfigure:
    def test_identical_speeds_are_noop(self):
        queue = make_queue(seed=1)
        queue.reconfigure([1.0, 2.0], now=0)
        queue.run_interval(0, 1, 1500, exponential_sampler(0.001))
        backlog_before = queue.backlog_s(1.0)
        queue.reconfigure([1.0, 2.0], now=1.0)
        assert queue.backlog_s(1.0) == pytest.approx(backlog_before)

    def test_dvfs_speed_change_rescales_backlog(self):
        queue = make_queue(seed=1)
        queue.reconfigure([1.0], now=0)
        queue.run_interval(0, 1, 3000, exponential_sampler(0.001))  # overload
        before = queue.backlog_s(1.0)
        queue.reconfigure([2.0], now=1.0)  # double the speed
        assert queue.backlog_s(1.0) == pytest.approx(before / 2, rel=0.01)

    def test_migration_charges_penalty(self):
        queue = make_queue(seed=1, migration_penalty_s=0.5)
        queue.reconfigure([1.0], now=0)
        queue.reconfigure([1.0, 1.0], now=0, migration=True)
        assert queue.backlog_s(0.0) == pytest.approx(1.0)  # 0.5 s x 2 servers

    def test_server_count_change_redistributes_work(self):
        queue = make_queue(seed=1)
        queue.reconfigure([1.0], now=0)
        queue.run_interval(0, 1, 3000, exponential_sampler(0.001))
        work_before = queue.backlog_s(1.0) * 1.0  # one unit-speed server
        queue.reconfigure([1.0, 1.0], now=1.0)
        per_server = queue.backlog_s(1.0) / 2
        assert per_server * 2 == pytest.approx(work_before, rel=0.01)

    def test_backlog_bound_sheds_work(self):
        queue = make_queue(seed=1, max_backlog_s=0.2)
        queue.reconfigure([1.0], now=0)
        stats = queue.run_interval(0, 1, 5000, exponential_sampler(0.001))
        assert stats.shed_work_s > 0
        assert queue.backlog_s(1.0) <= 0.2 * 1.001


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        rate=st.floats(min_value=1.0, max_value=500.0),
        n_servers=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_all_latencies_positive_and_finite(self, rate, n_servers, seed):
        queue = make_queue(seed=seed)
        queue.reconfigure([1.0] * n_servers, now=0)
        stats = queue.run_interval(0, 1, rate, exponential_sampler(0.001))
        assert np.all(np.isfinite(stats.latencies_s))
        assert np.all(stats.latencies_s >= 0)
        assert len(stats.utilizations) == n_servers
        assert all(0.0 <= u <= 1.0 for u in stats.utilizations)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_deterministic_for_seed(self, seed):
        results = []
        for _ in range(2):
            queue = make_queue(seed=seed)
            queue.reconfigure([1.0, 0.5], now=0)
            stats = queue.run_interval(0, 1, 200, exponential_sampler(0.002))
            results.append(stats.latencies_s)
        assert np.array_equal(results[0], results[1])
