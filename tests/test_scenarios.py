"""Tests for the declarative scenario layer (specs, registry, factories)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.loadgen.diurnal import DiurnalTrace
from repro.loadgen.traces import ConcatTrace, ConstantTrace, RampTrace
from repro.scenarios import (
    DEFAULT_REGISTRY,
    ScenarioRegistry,
    ScenarioSpec,
    TraceSpec,
)
from repro.scenarios.registry import (
    STANDARD_POLICIES,
    standard_policy_specs,
)
from repro.scenarios.spec import freeze_params, thaw_params


def quick_spec(**overrides) -> ScenarioSpec:
    base = dict(
        workload="memcached",
        trace=TraceSpec.constant(0.5, 20.0),
        manager="static-big",
        seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestParams:
    def test_freeze_sorts_and_normalizes(self):
        frozen = freeze_params({"b": 2, "a": {"y": 1, "x": [1, 2]}})
        assert frozen == (("a", (("x", (1, 2)), ("y", 1))), ("b", 2))
        assert thaw_params(frozen)["b"] == 2

    def test_freeze_rejects_non_plain_data(self):
        with pytest.raises(TypeError, match="plain data"):
            freeze_params({"rng": np.random.default_rng(0)})

    def test_freeze_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            freeze_params([("a", 1), ("a", 2)])


class TestTraceSpec:
    def test_builds_each_kind(self):
        assert isinstance(TraceSpec.diurnal(400.0).build(), DiurnalTrace)
        assert isinstance(TraceSpec.constant(0.5, 10.0).build(), ConstantTrace)
        assert isinstance(TraceSpec.ramp(0.5, 1.0, 100.0).build(), RampTrace)

    def test_concat_round_trip(self):
        spec = TraceSpec.concat(
            TraceSpec.diurnal(100.0, seed=7), TraceSpec.ramp(0.5, 1.0, 50.0)
        )
        trace = spec.build()
        assert isinstance(trace, ConcatTrace)
        assert trace.duration_s == pytest.approx(150.0)

    def test_concat_requires_parts(self):
        with pytest.raises(ValueError, match="at least one part"):
            TraceSpec("concat")

    def test_unknown_kind_fails_at_build(self):
        with pytest.raises(KeyError, match="trace kind"):
            TraceSpec("sinusoid", {"duration_s": 5.0}).build()


class TestScenarioSpec:
    def test_rejects_unknown_keys_eagerly(self):
        with pytest.raises(KeyError, match="workload"):
            quick_spec(workload="redis")
        with pytest.raises(KeyError, match="manager"):
            quick_spec(manager="round-robin")
        with pytest.raises(KeyError, match="batch job set"):
            quick_spec(batch_jobs="npb:ft")

    def test_specs_are_picklable_and_comparable(self):
        spec = quick_spec(manager_params={"collocate_batch": False})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_fingerprint_sensitivity(self):
        spec = quick_spec()
        assert spec.fingerprint() == quick_spec().fingerprint()
        assert spec.fingerprint() != quick_spec(seed=8).fingerprint()
        assert (
            spec.fingerprint()
            != quick_spec(trace=TraceSpec.constant(0.6, 20.0)).fingerprint()
        )
        assert spec.fingerprint() != quick_spec(manager="static-small").fingerprint()

    def test_label_does_not_affect_fingerprint(self):
        assert (
            quick_spec(label="a").fingerprint() == quick_spec(label="b").fingerprint()
        )

    def test_sweep_expands_cartesian_product(self):
        specs = quick_spec().sweep(
            seed=[1, 2, 3], manager=["static-big", "static-small"]
        )
        assert len(specs) == 6
        assert len({s.fingerprint() for s in specs}) == 6
        assert {s.seed for s in specs} == {1, 2, 3}

    def test_sweep_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            quick_spec().sweep(duration=[1, 2])

    def test_run_is_deterministic(self):
        spec = quick_spec()
        a = spec.run()
        b = spec.run()
        assert a.result.observations == b.result.observations

    def test_workload_params_override(self):
        light = quick_spec(workload_params={"demand_mean_ms": 0.01}).run().result
        heavy = quick_spec(workload_params={"demand_mean_ms": 0.05}).run().result
        assert float(np.mean(heavy.tails_ms)) > float(np.mean(light.tails_ms))

    def test_engine_overrides_reach_the_engine(self):
        spec = quick_spec(engine={"interval_s": 2.0})
        result = spec.run().result
        assert result.interval_s == 2.0

    def test_manager_stats_carry_phase_switches(self):
        spec = quick_spec(
            manager="hipster-in", manager_params={"learning_duration_s": 5.0}
        )
        outcome = spec.run()
        assert outcome.stat("phase_switches") is not None
        assert outcome.stat("nonexistent", -1) == -1


class TestRegistry:
    def test_default_registry_families(self):
        for family in (
            "diurnal-policy",
            "steady-config",
            "edge-load",
            "load-ramp",
            "collocation",
        ):
            assert family in DEFAULT_REGISTRY

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown scenario family"):
            DEFAULT_REGISTRY.build("nope")

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register("x", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", lambda: None)

    def test_diurnal_policy_durations(self):
        quick = DEFAULT_REGISTRY.build(
            "diurnal-policy", workload="memcached", manager="static-big", quick=True
        )
        full = DEFAULT_REGISTRY.build(
            "diurnal-policy", workload="memcached", manager="static-big"
        )
        assert thaw_params(quick.trace.params)["duration_s"] == 420.0
        assert thaw_params(full.trace.params)["duration_s"] == 1400.0

    def test_learning_phase_filled_for_hipster_only(self):
        hipster = DEFAULT_REGISTRY.build(
            "diurnal-policy", workload="memcached", manager="hipster-in", quick=True
        )
        octopus = DEFAULT_REGISTRY.build(
            "diurnal-policy", workload="memcached", manager="octopus-man", quick=True
        )
        assert thaw_params(hipster.manager_params)["learning_duration_s"] == 150.0
        assert octopus.manager_params == ()

    def test_collocation_names_batch_jobs(self):
        spec = DEFAULT_REGISTRY.build(
            "collocation", manager="hipster-co", program="lbm", quick=True
        )
        assert spec.batch_jobs == "spec:lbm"
        assert spec.workload == "websearch"

    def test_standard_policy_specs_line_up(self):
        specs = standard_policy_specs("websearch", quick=True)
        assert tuple(specs) == STANDARD_POLICIES
        assert all(s.workload == "websearch" for s in specs.values())
