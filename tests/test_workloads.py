"""Unit tests for workload models (latency-critical and batch)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.topology import Configuration
from repro.workloads.base import capacity_rps, lc_server_speeds
from repro.workloads.batch import MEMORY_CEILING_IPS, BatchJobSet, BatchProgram
from repro.workloads.memcached import memcached
from repro.workloads.spec import SPEC_CPU2006, spec_job_set, spec_mix, spec_program
from repro.workloads.websearch import websearch


class TestLatencyCriticalWorkloads:
    def test_table1_contracts(self):
        mc = memcached()
        ws = websearch()
        assert (mc.qos_percentile, mc.target_latency_ms, mc.max_load_rps) == (
            0.95,
            10.0,
            36_000.0,
        )
        assert (ws.qos_percentile, ws.target_latency_ms, ws.max_load_rps) == (
            0.90,
            500.0,
            44.0,
        )

    def test_dilation_preserves_utilization(self, rng):
        """rate/scale x demand*scale = the same offered work per second."""
        mc = memcached()
        rate = mc.sim_arrival_rate(1.0)
        demands = mc.sample_demands(rng, 200_000)
        offered_work = rate * float(np.mean(demands))
        undilated = mc.with_overrides(sim_scale=1.0)
        offered_ref = undilated.sim_arrival_rate(1.0) * (
            undilated.demand_mean_ms * 1e-3
        )
        assert offered_work == pytest.approx(offered_ref, rel=0.02)

    def test_reported_latency_descales_and_adds_floor(self):
        mc = memcached()
        sim_latency = np.array([mc.sim_scale * 1e-3])  # 1 ms real
        reported = mc.reported_latency_ms(sim_latency)
        assert reported[0] == pytest.approx(1.0 + mc.base_latency_ms)

    def test_demand_mean_matches_parameter(self, rng):
        ws = websearch()
        demands = ws.sample_demands(rng, 100_000)
        assert float(np.mean(demands)) == pytest.approx(
            ws.demand_mean_ms * 1e-3, rel=0.02
        )

    def test_core_speed_reference_is_one(self, platform):
        ws = websearch()
        assert ws.core_speed(
            platform.big.core_type, 1.15, platform.big.core_type
        ) == pytest.approx(1.0)

    def test_small_core_is_slower(self, platform):
        ws = websearch()
        small = ws.core_speed(platform.small.core_type, 0.65, platform.big.core_type)
        assert 0.2 < small < 0.5

    def test_small_core_penalty_applies(self, platform):
        base = websearch().with_overrides(small_core_penalty=1.0)
        penalized = websearch()  # 1.10
        assert penalized.core_speed(
            platform.small.core_type, 0.65, platform.big.core_type
        ) < base.core_speed(platform.small.core_type, 0.65, platform.big.core_type)

    def test_qos_contract_helpers(self):
        mc = memcached()
        assert mc.qos_met(9.9) and not mc.qos_met(10.1)
        assert mc.tardiness(15.0) == pytest.approx(1.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            memcached().with_overrides(qos_percentile=1.5)
        with pytest.raises(ValueError):
            memcached().with_overrides(max_load_rps=-1)


class TestServerSpeeds:
    def test_big_cores_first(self, platform):
        speeds = lc_server_speeds(
            websearch(), platform, Configuration(1, 2, 1.15, 0.65)
        )
        assert len(speeds) == 3
        assert speeds[0] > speeds[1] == speeds[2]

    def test_truncated_to_thread_count(self, platform):
        wl = websearch().with_overrides(n_threads=2)
        speeds = lc_server_speeds(wl, platform, Configuration(2, 2, 1.15, 0.65))
        assert len(speeds) == 2

    def test_slowdowns_reduce_speed(self, platform):
        config = Configuration(2, 2, 1.15, 0.65)
        clean = lc_server_speeds(websearch(), platform, config)
        slowed = lc_server_speeds(
            websearch(), platform, config, big_slowdown=1.5, small_slowdown=1.2
        )
        assert slowed[0] == pytest.approx(clean[0] / 1.5)
        assert slowed[-1] == pytest.approx(clean[-1] / 1.2)

    def test_invalid_slowdown_rejected(self, platform):
        with pytest.raises(ValueError):
            lc_server_speeds(
                websearch(), platform, Configuration(1, 0, 1.15, None), big_slowdown=0.5
            )

    def test_capacity_scales_with_dvfs(self, platform):
        ws = websearch()
        low = capacity_rps(ws, platform, Configuration(2, 0, 0.60, None))
        high = capacity_rps(ws, platform, Configuration(2, 0, 1.15, None))
        assert high == pytest.approx(low * 1.15 / 0.60, rel=0.01)

    def test_max_load_within_2b_capacity(self, platform):
        """Table 1's max load must be servable by 2B-1.15 (rho < 1)."""
        for workload in (memcached(), websearch()):
            capacity = capacity_rps(
                workload, platform, Configuration(2, 0, 1.15, None)
            )
            assert workload.max_load_rps < capacity


class TestBatchPrograms:
    def test_compute_bound_scales_with_frequency(self, platform):
        calculix = spec_program("calculix")
        low = calculix.ips(platform.big.core_type, 0.60)
        high = calculix.ips(platform.big.core_type, 1.15)
        assert high / low > 1.7  # nearly linear in f

    def test_memory_bound_barely_scales(self, platform):
        lbm = spec_program("lbm")
        low = lbm.ips(platform.big.core_type, 0.60)
        high = lbm.ips(platform.big.core_type, 1.15)
        assert high / low < 1.25

    def test_big_core_advantage_spread(self, platform):
        """Compute-bound programs gain ~2.6x from big cores; memory-bound
        far less (the Figure 11 spread)."""
        big, small = platform.big.core_type, platform.small.core_type
        calculix = spec_program("calculix")
        lbm = spec_program("lbm")
        calculix_gain = calculix.ips(big, 1.15) / calculix.ips(small, 0.65)
        lbm_gain = lbm.ips(big, 1.15) / lbm.ips(small, 0.65)
        assert calculix_gain == pytest.approx(2.6, abs=0.2)
        assert lbm_gain < 1.4

    def test_memory_ceiling_binds(self, platform):
        fully_bound = BatchProgram("membound", ipc_factor=1.0, mem_intensity=1.0)
        assert fully_bound.ips(platform.big.core_type, 1.15) == pytest.approx(
            MEMORY_CEILING_IPS
        )

    def test_throughput_factor_applies(self, platform):
        program = spec_program("povray")
        full = program.ips(platform.big.core_type, 1.15)
        degraded = program.ips(platform.big.core_type, 1.15, throughput_factor=0.5)
        assert degraded == pytest.approx(full * 0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BatchProgram("x", ipc_factor=0.0, mem_intensity=0.5)
        with pytest.raises(ValueError):
            BatchProgram("x", ipc_factor=1.0, mem_intensity=1.5)

    def test_spec_suite_has_figure11_programs(self):
        names = {p.name for p in SPEC_CPU2006}
        assert len(SPEC_CPU2006) == 12
        assert {"povray", "calculix", "lbm", "libquantum", "zeusmp"} <= names

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError, match="unknown SPEC program"):
            spec_program("doom")

    def test_job_sets(self):
        single = spec_job_set("lbm")
        assert single.program_for_job(0).name == "lbm"
        assert single.program_for_job(5).name == "lbm"
        mix = spec_mix()
        assert mix.program_for_job(0).name == "povray"
        assert mix.program_for_job(12).name == "povray"  # round robin
        with pytest.raises(ValueError):
            BatchJobSet(programs=())

    @settings(max_examples=30, deadline=None)
    @given(
        ipc=st.floats(min_value=0.1, max_value=2.0),
        mem=st.floats(min_value=0.0, max_value=1.0),
        freq_idx=st.integers(0, 2),
    )
    def test_ips_interpolates_between_bottleneck_rates(self, platform, ipc, mem, freq_idx):
        """The bottleneck law is a harmonic interpolation: IPS always lies
        between the compute rate and the memory ceiling."""
        program = BatchProgram("p", ipc_factor=ipc, mem_intensity=mem)
        freq = platform.big.core_type.freqs_ghz[freq_idx]
        ips = program.ips(platform.big.core_type, freq)
        compute_only = ipc * platform.big.core_type.microbench_ips(freq)
        lo = min(compute_only, MEMORY_CEILING_IPS)
        hi = max(compute_only, MEMORY_CEILING_IPS)
        assert lo * 0.999 <= ips <= hi * 1.001
