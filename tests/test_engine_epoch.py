"""Byte-identity and gating of the decision-epoch fast path.

The epoch-batched interval loop (``EngineConfig.epoch_fast_path``)
claims *bit-identical* output to the scalar loop of the same engine --
same rng draw order, same summation order, same floats in every
observation column -- so ``KERNEL_VERSION`` stayed unchanged and cached
scenario results remain valid.  These tests enforce the claim three
ways:

* epoch-vs-scalar differential runs over scenarios covering every
  epoch-path branch (static and table-driven managers, empty intervals,
  collocation, trace shapes that split epochs at bucket boundaries),
  asserting every observation column equal down to its bytes *and* that
  the epoch path actually engaged;
* gating tests pinning the scalar path wherever byte-identity cannot be
  batched (armed perf counters) or batching cannot pay (high arrival
  rates), plus managers that never opted into the epoch contract;
* unit-level equivalence of the batched building blocks (bulk
  ``ObservationTable.extend``, ``EnergyMeter.record_many``, the dense
  fancy-index scatter) against their one-at-a-time counterparts, on
  randomized inputs, including a hypothesis fuzz of epoch boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.power import EnergyMeter, PowerBreakdown
from repro.hardware.soc import KernelConfig
from repro.hardware.topology import Configuration
from repro.loadgen.diurnal import DiurnalTrace
from repro.loadgen.traces import ConstantTrace, RampTrace, SampledTrace, StepTrace
from repro.policies.octopusman import OctopusMan
from repro.policies.static import StaticPolicy, static_all_big, static_all_small
from repro.policies.table_driven import TableDrivenPolicy
from repro.sim.engine import (
    _EPOCH_MIN_INTERVALS,
    EngineConfig,
    IntervalSimulator,
)
from repro.sim.records import POOLED_FIELDS, SCALAR_FIELDS, ObservationTable
from repro.workloads.memcached import memcached
from repro.workloads.spec import spec_job_set
from repro.workloads.websearch import websearch

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the image bakes hypothesis in
    HAVE_HYPOTHESIS = False


def small_table() -> TableDrivenPolicy:
    return TableDrivenPolicy(
        [
            (0.1, Configuration(0, 2, None, 0.65)),
            (0.25, Configuration(0, 4, None, 0.65)),
            (1.0, Configuration(2, 0, 1.15, None)),
        ]
    )


def run_columns(platform, make_policy, trace, *, epoch, workload=None,
                collocate=False, kernel=None, seed=7, n_intervals=None):
    """Run once and return (columns keyed by field, simulator)."""
    wl = workload or memcached()
    sim = IntervalSimulator(
        platform,
        wl,
        trace,
        make_policy(),
        batch_jobs=spec_job_set("calculix") if collocate else None,
        kernel=kernel,
        engine_config=EngineConfig(epoch_fast_path=epoch),
        seed=seed,
    )
    result = sim.run(n_intervals)
    table = result._table
    cols = {name: table.column(name) for name in SCALAR_FIELDS}
    for name in POOLED_FIELDS:
        cols[name] = np.asarray([repr(v) for v in table.column(name)])
    return cols, sim


def assert_columns_identical(scenario, cols_scalar, cols_epoch):
    for name, scalar_col in cols_scalar.items():
        epoch_col = cols_epoch[name]
        if scalar_col.tobytes() != epoch_col.tobytes():
            bad = np.flatnonzero(~(scalar_col == epoch_col))[:5]
            raise AssertionError(
                f"{scenario}: column {name} differs at rows {bad.tolist()}: "
                f"scalar={scalar_col[bad]!r} epoch={epoch_col[bad]!r}"
            )


def assert_differential(platform, make_policy, trace, *, min_epochs=1, **kw):
    cols_scalar, sim_scalar = run_columns(
        platform, make_policy, trace, epoch=False, **kw
    )
    cols_epoch, sim_epoch = run_columns(
        platform, make_policy, trace, epoch=True, **kw
    )
    assert sim_scalar.epochs_run == 0
    assert sim_epoch.epochs_run >= min_epochs, (
        f"epoch path never engaged ({sim_epoch.epochs_run} epochs)"
    )
    assert_columns_identical(trace.__class__.__name__, cols_scalar, cols_epoch)
    return sim_epoch


class TestEpochDifferential:
    """Epoch-vs-scalar byte-identity with the epoch path engaged."""

    def test_static_constant(self, platform):
        sim = assert_differential(
            platform, lambda: static_all_big(platform), ConstantTrace(0.3, 150.0)
        )
        # Heavy-rate point (expected ~432 requests/interval): one scalar
        # interval at the decision boundary, batched epochs for the bulk,
        # and at most one sub-minimum tail left to the scalar loop.
        assert sim.epoch_intervals >= 150 - 1 - _EPOCH_MIN_INTERVALS

    def test_static_small_cluster(self, platform):
        assert_differential(
            platform, lambda: static_all_small(platform), ConstantTrace(0.2, 90.0)
        )

    def test_zero_load_empty_intervals(self, platform):
        assert_differential(
            platform, lambda: static_all_big(platform), ConstantTrace(0.0, 80.0)
        )

    def test_table_driven_step(self, platform):
        assert_differential(
            platform,
            small_table,
            StepTrace([(40.0, 0.05), (40.0, 0.3), (40.0, 0.15)]),
            min_epochs=2,
        )

    def test_table_driven_diurnal(self, platform):
        # A deep trough keeps the quiet stretch in the light-rate regime
        # where runs of a couple of stable intervals already batch.
        assert_differential(
            platform,
            small_table,
            DiurnalTrace(duration_s=240.0, min_load=0.005, max_load=0.3),
            min_epochs=2,
        )

    def test_table_driven_ramp(self, platform):
        assert_differential(
            platform,
            small_table,
            RampTrace(start_level=0.02, end_level=0.34, ramp_s=80.0, lead_s=20.0),
        )

    def test_collocated_batch(self, platform):
        assert_differential(
            platform,
            lambda: static_all_big(platform, collocate_batch=True),
            ConstantTrace(0.3, 100.0),
            collocate=True,
        )

    def test_websearch(self, platform):
        assert_differential(
            platform,
            small_table,
            DiurnalTrace(duration_s=150.0),
            workload=websearch(),
        )

    def test_epoch_block_boundary(self, platform):
        # Longer than _EPOCH_BLOCK: the run must split into several
        # epochs and still match byte for byte.
        sim = assert_differential(
            platform,
            lambda: static_all_big(platform),
            ConstantTrace(0.02, 600.0),
            min_epochs=2,
        )
        assert sim.epoch_intervals == 599


class TestEpochGating:
    """Scenarios that must keep (or return to) the scalar path."""

    def run_epoch(self, platform, make_policy, trace, **kw):
        _, sim = run_columns(platform, make_policy, trace, epoch=True, **kw)
        return sim

    def test_cpuidle_counters_pin_scalar(self, platform):
        # Armed perf counters consume rng draws per interval, which only
        # the scalar loop replays -- and the observations still match.
        cols_scalar, sim_scalar = run_columns(
            platform, lambda: static_all_big(platform), ConstantTrace(0.3, 60.0),
            epoch=False, kernel=KernelConfig(cpuidle_enabled=True),
        )
        cols_epoch, sim_epoch = run_columns(
            platform, lambda: static_all_big(platform), ConstantTrace(0.3, 60.0),
            epoch=True, kernel=KernelConfig(cpuidle_enabled=True),
        )
        assert sim_epoch.epochs_run == 0
        assert_columns_identical("cpuidle", cols_scalar, cols_epoch)

    def test_high_load_gated_off(self, platform):
        # Above the amortization cutoff the batched kernel cannot beat
        # the L1-resident scalar kernel; the engine must not try.
        sim = self.run_epoch(
            platform, lambda: static_all_big(platform), ConstantTrace(0.9, 60.0)
        )
        assert sim.epochs_run == 0

    def test_feedback_policy_stays_scalar(self, platform):
        sim = self.run_epoch(
            platform, OctopusMan, StepTrace([(40.0, 0.1), (40.0, 0.3)])
        )
        assert sim.epochs_run == 0

    def test_flapping_subclass_stays_scalar(self, platform):
        # A subclass with an impure decide() inherits StaticPolicy's
        # epoch contract, but never repeats a decision -- the observed-
        # repeat gate keeps it off the batched path.
        class Flapper(StaticPolicy):
            def __init__(self):
                super().__init__(Configuration(2, 0, 1.15, None), name="flapper")
                self._flip = False

            def decide(self):
                from repro.policies.base import resolve_decision

                self._flip = not self._flip
                config = (
                    Configuration(2, 0, 1.15, None)
                    if self._flip
                    else Configuration(0, 4, None, 0.65)
                )
                return resolve_decision(
                    self.ctx.platform, config, collocate_batch=False
                )

        cols_scalar, _ = run_columns(
            platform, Flapper, ConstantTrace(0.2, 50.0), epoch=False
        )
        cols_epoch, sim = run_columns(
            platform, Flapper, ConstantTrace(0.2, 50.0), epoch=True
        )
        assert sim.epochs_run == 0
        assert_columns_identical("flapper", cols_scalar, cols_epoch)

    def test_epoch_fast_path_off_by_config(self, platform):
        sim = self.run_epoch(
            platform, lambda: static_all_big(platform), ConstantTrace(0.3, 60.0)
        )
        assert sim.epochs_run > 0
        _, sim_off = run_columns(
            platform, lambda: static_all_big(platform), ConstantTrace(0.3, 60.0),
            epoch=False,
        )
        assert sim_off.epochs_run == 0


class TestExtendMatchesAppend:
    """Bulk extend() writes the identical rows append() would."""

    def rows(self, rng, n):
        rows = []
        for i in range(n):
            row = {}
            for field in SCALAR_FIELDS:
                if field == "index":
                    row[field] = i
                elif field in ("n_requests", "migrated_cores"):
                    row[field] = int(rng.integers(0, 50))
                elif field in ("qos_met", "counter_garbage", "migration_event"):
                    row[field] = bool(rng.integers(0, 2))
                else:
                    row[field] = float(rng.uniform(0.0, 100.0))
            rows.append(row)
        return rows

    def test_extend_bit_identical(self):
        rng = np.random.default_rng(11)
        rows = self.rows(rng, 23)
        one = ObservationTable(23)
        for row in rows:
            one.append(decision="decision-a", config_label="cfg", **row)
        bulk = ObservationTable(23)
        columns = {
            field: np.asarray([row[field] for row in rows])
            for field in SCALAR_FIELDS
        }
        start = bulk.extend(
            23, decision="decision-a", config_label="cfg", **columns
        )
        assert start == 0
        for field in SCALAR_FIELDS:
            assert one.column(field).tobytes() == bulk.column(field).tobytes()
        for field in POOLED_FIELDS:
            assert list(one.column(field)) == list(bulk.column(field))

    def test_extend_broadcasts_scalars(self):
        rng = np.random.default_rng(3)
        rows = self.rows(rng, 7)
        for row in rows:
            row["duration_s"] = 1.0
            row["migration_event"] = False
        one = ObservationTable(7)
        for row in rows:
            one.append(decision="d", config_label="c", **row)
        bulk = ObservationTable(7)
        columns = {
            field: np.asarray([row[field] for row in rows])
            for field in SCALAR_FIELDS
        }
        columns["duration_s"] = 1.0
        columns["migration_event"] = False
        bulk.extend(7, decision="d", config_label="c", **columns)
        for field in SCALAR_FIELDS:
            assert one.column(field).tobytes() == bulk.column(field).tobytes()

    def test_extend_rejects_missing_fields(self):
        table = ObservationTable(4)
        with pytest.raises(TypeError):
            table.extend(4, decision="d", config_label="c", index=np.arange(4))


class TestBatchedBuildingBlocks:
    """Unit equivalence of the epoch path's vectorized pieces."""

    def test_record_many_bit_identical(self):
        rng = np.random.default_rng(5)
        big = rng.uniform(0.5, 9.0, 64)
        small = rng.uniform(0.1, 3.0, 64)
        rest = rng.uniform(0.2, 1.0, 64)
        one = EnergyMeter()
        for b, s, r in zip(big, small, rest):
            one.record(PowerBreakdown(float(b), float(s), float(r)), 1.0)
        many = EnergyMeter()
        many.record_many(big, small, rest, 1.0)
        assert one.read() == many.read()
        assert one.elapsed_s == many.elapsed_s

    def test_record_many_rejects_negative_duration(self):
        meter = EnergyMeter()
        with pytest.raises(ValueError):
            meter.record_many(np.ones(3), np.ones(3), np.ones(3), -1.0)

    def test_fancy_scatter_matches_element_loop(self):
        # The dense true-IPS/utilization scatter in the interval loop:
        # with unique targets, one fancy-indexed assignment writes the
        # identical floats the old per-element loop did.
        rng = np.random.default_rng(9)
        for _ in range(25):
            n_cores = int(rng.integers(2, 9))
            n_used = int(rng.integers(1, n_cores + 1))
            lc_index = rng.permutation(n_cores)[:n_used].astype(np.intp)
            coeff = rng.uniform(1e8, 1e10, n_used)
            utils = rng.uniform(0.0, 1.0, n_used)
            base = rng.uniform(0.0, 1e9, n_cores)

            looped = base.copy()
            for j, core in enumerate(lc_index):
                looped[core] = coeff[j] * utils[j]
            scattered = base.copy()
            scattered[lc_index] = coeff * utils
            assert looped.tobytes() == scattered.tobytes()


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
class TestEpochBoundaryFuzz:
    """Property fuzz: arbitrary traces/tables/seeds stay byte-identical."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        levels=st.lists(
            st.floats(0.0, 0.4), min_size=3, max_size=12
        ),
        thresholds=st.tuples(
            st.floats(0.02, 0.15),
            st.floats(0.16, 0.45),
        ),
        seed=st.integers(0, 2**16),
        interval_count=st.integers(8, 48),
    )
    def test_table_driven_fuzz(self, platform, levels, thresholds, seed,
                               interval_count):
        lo, hi = thresholds
        policy_table = [
            (lo, Configuration(0, 2, None, 0.65)),
            (hi, Configuration(0, 4, None, 0.65)),
            (1.0, Configuration(2, 0, 1.15, None)),
        ]
        trace = SampledTrace([float(lv) for lv in levels], interval_s=8.0)
        n = min(interval_count, trace.n_intervals())
        cols_scalar, _ = run_columns(
            platform, lambda: TableDrivenPolicy(policy_table), trace,
            epoch=False, seed=seed, n_intervals=n,
        )
        cols_epoch, _ = run_columns(
            platform, lambda: TableDrivenPolicy(policy_table), trace,
            epoch=True, seed=seed, n_intervals=n,
        )
        assert_columns_identical("fuzz", cols_scalar, cols_epoch)
