"""Diurnal load pattern (Figure 1 of the paper).

Production services see large diurnal swings: the paper's load generator
(Faban, adapted from CloudSuite) models a 36-hour diurnal pattern
compressed so that one hour becomes one minute.  Figure 1 shows Web-Search
load moving between roughly 5% and 95% of maximum capacity with two broad
daytime peaks.  :class:`DiurnalTrace` synthesizes that shape -- a mixture
of Gaussian bumps over the compressed day -- plus smooth AR(1) noise so
consecutive intervals are correlated the way real traffic is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.loadgen.traces import LoadTrace

#: (center, width, height) of the Gaussian bumps composing the base shape,
#: on normalized time [0, 1].  Two major peaks plus a morning shoulder.
_SHAPE_BUMPS = (
    (0.02, 0.05, 0.45),
    (0.22, 0.06, 0.35),
    (0.40, 0.10, 0.85),
    (0.62, 0.07, 0.55),
    (0.83, 0.07, 0.95),
)

_SHAPE_FLOOR = 0.04


def diurnal_shape(x: np.ndarray) -> np.ndarray:
    """The noiseless diurnal profile on normalized time ``x`` in [0, 1]."""
    x = np.asarray(x, dtype=float)
    raw = np.full_like(x, _SHAPE_FLOOR)
    for center, width, height in _SHAPE_BUMPS:
        raw = raw + height * np.exp(-0.5 * ((x - center) / width) ** 2)
    return np.clip(raw, 0.0, 1.0)


@dataclass(frozen=True)
class DiurnalTrace(LoadTrace):
    """A compressed diurnal day: Figure 1's load pattern.

    Parameters
    ----------
    duration_s:
        Length of the compressed day.  The paper's Memcached experiments
        span ~1400 s and Web-Search ~1000 s.
    min_load, max_load:
        The load range the shape is rescaled into.
    noise_std:
        Standard deviation of the AR(1) noise (fraction of max load).
    noise_rho:
        AR(1) correlation between consecutive seconds.
    seed:
        Noise seed; the same seed always yields the same trace.
    """

    duration_s: float = 1400.0
    min_load: float = 0.05
    max_load: float = 0.95
    noise_std: float = 0.015
    noise_rho: float = 0.8
    seed: int = 42
    _samples: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= self.min_load < self.max_load <= 1.0:
            raise ValueError("need 0 <= min_load < max_load <= 1")
        if self.noise_std < 0 or not 0.0 <= self.noise_rho < 1.0:
            raise ValueError("invalid noise parameters")
        n = int(np.ceil(self.duration_s)) + 1
        x = np.arange(n) / max(self.duration_s, 1.0)
        base = diurnal_shape(x)
        scaled = self.min_load + (self.max_load - self.min_load) * base
        rng = np.random.default_rng(self.seed)
        noise = np.empty(n)
        innovation_std = self.noise_std * np.sqrt(1.0 - self.noise_rho**2)
        noise[0] = rng.normal(0.0, self.noise_std)
        for i in range(1, n):
            noise[i] = self.noise_rho * noise[i - 1] + rng.normal(0.0, innovation_std)
        samples = np.clip(scaled + noise, 0.0, 1.0)
        object.__setattr__(self, "_samples", samples)

    def load_at(self, t: float) -> float:
        """Offered load fraction at time ``t``, linearly interpolated."""
        t = self._check(t)
        return float(np.interp(t, np.arange(len(self._samples)), self._samples))
