"""Markov-modulated (bursty) load: the MMPP arrival shape.

Production traffic is burstier than any smooth diurnal curve: flash
crowds, retry storms and upstream batch jobs switch a service between
quiet and saturated regimes on second scales.  The standard stochastic
model is the Markov-modulated Poisson process -- the arrival *rate*
follows a continuous-time Markov chain over a small set of states, and
within a state arrivals are Poisson.  The engine already draws Poisson
arrivals from an offered-load level, so an MMPP trace only has to
supply the modulating chain: a piecewise-constant load level whose
state-dwell times are exponential with per-state means.

The chain is synthesized once at construction from ``seed`` (same seed,
same trace -- the same determinism contract every other trace obeys)
and stored as segment boundaries, so lookups are a binary search and
:meth:`~repro.loadgen.traces.LoadTrace.load_at_many` is the same
``searchsorted`` vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.loadgen.traces import LoadTrace

#: Hard cap on synthesized chain segments: guards against a pack typo
#: (microsecond dwell times over an hours-long trace) allocating without
#: bound.
MAX_SEGMENTS = 1_000_000


@dataclass(frozen=True)
class MMPPTrace(LoadTrace):
    """Bursty offered load: a Markov chain over discrete load states.

    Parameters
    ----------
    levels:
        Offered-load level of each chain state (at least two).
    mean_dwell_s:
        Mean exponential dwell time of each state, seconds (same length
        as ``levels``).
    duration_s:
        Total trace length; the chain is synthesized until it covers it.
    seed:
        Chain seed; the same seed always yields the same state path.
    start_state:
        Index of the state the chain starts in.

    State transitions are uniform over the *other* states (for two
    states this is the classic on/off burst model); richer routing can
    be expressed by duplicating states.
    """

    levels: tuple[float, ...]
    mean_dwell_s: tuple[float, ...]
    duration_s: float
    seed: int = 0
    start_state: int = 0
    _bounds: np.ndarray = field(init=False, repr=False, compare=False)
    _segment_levels: np.ndarray = field(init=False, repr=False, compare=False)

    def __init__(
        self,
        levels: Sequence[float],
        mean_dwell_s: Sequence[float],
        duration_s: float,
        seed: int = 0,
        start_state: int = 0,
    ):
        levels = tuple(float(v) for v in levels)
        dwells = tuple(float(d) for d in mean_dwell_s)
        if len(levels) < 2:
            raise ValueError("an MMPP trace needs at least two states")
        if len(dwells) != len(levels):
            raise ValueError(
                "mean_dwell_s must give one dwell time per state "
                f"({len(dwells)} dwells for {len(levels)} states)"
            )
        for level in levels:
            if not 0.0 <= level <= 1.5:
                raise ValueError("levels must be within [0, 1.5]")
        for dwell in dwells:
            if dwell <= 0:
                raise ValueError("mean dwell times must be positive")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0 <= start_state < len(levels):
            raise ValueError("start_state must index a state")
        object.__setattr__(self, "levels", levels)
        object.__setattr__(self, "mean_dwell_s", dwells)
        object.__setattr__(self, "duration_s", float(duration_s))
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "start_state", int(start_state))
        bounds, seg_levels = self._synthesize()
        object.__setattr__(self, "_bounds", bounds)
        object.__setattr__(self, "_segment_levels", seg_levels)

    def _synthesize(self) -> tuple[np.ndarray, np.ndarray]:
        """The chain's segment end-times and per-segment levels."""
        rng = np.random.default_rng(self.seed)
        n_states = len(self.levels)
        state = self.start_state
        elapsed = 0.0
        ends: list[float] = []
        seg_levels: list[float] = []
        while elapsed < self.duration_s:
            if len(ends) >= MAX_SEGMENTS:
                raise ValueError(
                    f"MMPP chain exceeds {MAX_SEGMENTS} segments; "
                    "dwell times are too short for this duration"
                )
            dwell = rng.exponential(self.mean_dwell_s[state])
            elapsed = min(elapsed + dwell, self.duration_s)
            ends.append(elapsed)
            seg_levels.append(self.levels[state])
            # Uniform jump to one of the other states, scalar rng order.
            jump = int(rng.integers(0, n_states - 1))
            state = jump if jump < state else jump + 1
        bounds = np.asarray(ends, dtype=float)
        bounds.flags.writeable = False
        levels_arr = np.asarray(seg_levels, dtype=float)
        levels_arr.flags.writeable = False
        return bounds, levels_arr

    def load_at(self, t: float) -> float:
        t = self._check(t)
        index = min(
            int(np.searchsorted(self._bounds, t, side="right")),
            len(self._segment_levels) - 1,
        )
        return float(self._segment_levels[index])

    def load_at_many(self, times) -> np.ndarray:
        t = self._check_many(times)
        idx = np.minimum(
            np.searchsorted(self._bounds, t, side="right"),
            len(self._segment_levels) - 1,
        )
        return self._segment_levels[idx]
