"""Load generation: the simulated counterpart of the paper's Faban client.

Traces map time to offered load (a fraction of the workload's calibrated
maximum); the engine turns them into Poisson request arrivals.
"""

from repro.loadgen.diurnal import DiurnalTrace, diurnal_shape
from repro.loadgen.mmpp import MMPPTrace
from repro.loadgen.traces import (
    ConcatTrace,
    ConstantTrace,
    LoadTrace,
    RampTrace,
    ReplayTrace,
    SampledTrace,
    SpikeTrace,
    StepTrace,
)

__all__ = [
    "ConcatTrace",
    "ConstantTrace",
    "DiurnalTrace",
    "LoadTrace",
    "MMPPTrace",
    "RampTrace",
    "ReplayTrace",
    "SampledTrace",
    "SpikeTrace",
    "StepTrace",
    "diurnal_shape",
]
