"""Load traces: offered load as a function of time.

The controllers under study only ever see the offered load of the current
monitoring interval, so a trace is simply a function from time to a load
fraction in ``[0, 1]`` (of the workload's calibrated maximum).  Besides the
diurnal pattern (:mod:`repro.loadgen.diurnal`), the paper's evaluation uses
a linear ramp (Figure 8, 50% to 100% over 175 s) and motivates sudden load
spikes (Section 2, citing "The Tail at Scale"); constant and step traces
round out the toolbox for tests and calibration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np


class LoadTrace(abc.ABC):
    """Offered load over time, as a fraction of the workload maximum."""

    #: Total trace duration in seconds.
    duration_s: float

    @abc.abstractmethod
    def load_at(self, t: float) -> float:
        """Offered load fraction at time ``t`` (clamped to the trace)."""

    def load_at_many(self, times: "Sequence[float] | np.ndarray") -> np.ndarray:
        """Vectorized :meth:`load_at` over many query times.

        The engine reads a whole run's interval-midpoint loads through
        this once, up front (the decision-epoch fast path needs the
        lookahead; the scalar path indexes the same array).  The default
        delegates per element, so every float is :meth:`load_at`'s own;
        trace classes overriding it with batched arithmetic must return
        bit-identical values, which ``tests/test_loadgen.py`` pins.
        """
        return np.array([self.load_at(float(t)) for t in times], dtype=float)

    def n_intervals(self, interval_s: float = 1.0) -> int:
        """Number of whole monitoring intervals the trace covers."""
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        return int(self.duration_s / interval_s)

    def _check(self, t: float) -> float:
        if t < 0:
            raise ValueError("time must be non-negative")
        return min(t, self.duration_s)

    def _check_many(self, times: "Sequence[float] | np.ndarray") -> np.ndarray:
        """Vectorized :meth:`_check`: validate then clamp to the trace."""
        times = np.asarray(times, dtype=float)
        if times.size and float(times.min()) < 0:
            raise ValueError("time must be non-negative")
        return np.minimum(times, self.duration_s)


@dataclass(frozen=True)
class ConstantTrace(LoadTrace):
    """A fixed offered load, used for calibration and steady-state sweeps."""

    level: float
    duration_s: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.level <= 1.5:
            raise ValueError("level must be within [0, 1.5]")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    def load_at(self, t: float) -> float:
        self._check(t)
        return self.level

    def load_at_many(self, times) -> np.ndarray:
        checked = self._check_many(times)
        return np.full(checked.shape, self.level, dtype=float)


@dataclass(frozen=True)
class StepTrace(LoadTrace):
    """Piecewise-constant load: a sequence of ``(duration_s, level)`` steps."""

    steps: tuple[tuple[float, float], ...]
    duration_s: float = 0.0

    def __init__(self, steps: Sequence[tuple[float, float]]):
        if not steps:
            raise ValueError("need at least one step")
        for duration, level in steps:
            if duration <= 0:
                raise ValueError("step durations must be positive")
            if not 0.0 <= level <= 1.5:
                raise ValueError("step levels must be within [0, 1.5]")
        object.__setattr__(self, "steps", tuple((float(d), float(l)) for d, l in steps))
        object.__setattr__(self, "duration_s", float(sum(d for d, _ in steps)))

    def load_at(self, t: float) -> float:
        t = self._check(t)
        elapsed = 0.0
        for duration, level in self.steps:
            elapsed += duration
            if t < elapsed:
                return level
        return self.steps[-1][1]

    def load_at_many(self, times) -> np.ndarray:
        t = self._check_many(times)
        # cumsum accumulates left to right, exactly the scalar loop's
        # ``elapsed`` values; side="right" finds the first bound > t,
        # i.e. the first step whose ``t < elapsed`` test passes.
        bounds = np.cumsum([d for d, _ in self.steps])
        idx = np.minimum(
            np.searchsorted(bounds, t, side="right"), len(self.steps) - 1
        )
        return np.asarray([level for _, level in self.steps], dtype=float)[idx]


@dataclass(frozen=True)
class RampTrace(LoadTrace):
    """Linear ramp from ``start_level`` to ``end_level`` (Figure 8).

    The ramp occupies ``ramp_s`` seconds after ``lead_s`` seconds of the
    start level; any remaining time holds the end level.
    """

    start_level: float
    end_level: float
    ramp_s: float
    lead_s: float = 0.0
    hold_s: float = 0.0
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("start_level", "end_level"):
            if not 0.0 <= getattr(self, attr) <= 1.5:
                raise ValueError(f"{attr} must be within [0, 1.5]")
        if self.ramp_s <= 0:
            raise ValueError("ramp_s must be positive")
        if self.lead_s < 0 or self.hold_s < 0:
            raise ValueError("lead_s and hold_s must be non-negative")
        object.__setattr__(
            self, "duration_s", self.lead_s + self.ramp_s + self.hold_s
        )

    def load_at(self, t: float) -> float:
        t = self._check(t)
        if t < self.lead_s:
            return self.start_level
        if t >= self.lead_s + self.ramp_s:
            return self.end_level
        frac = (t - self.lead_s) / self.ramp_s
        return self.start_level + frac * (self.end_level - self.start_level)


@dataclass(frozen=True)
class ConcatTrace(LoadTrace):
    """Several traces played back to back (e.g. warm-up then a ramp)."""

    parts: tuple[LoadTrace, ...]
    duration_s: float = 0.0

    def __init__(self, parts: Sequence[LoadTrace]):
        if not parts:
            raise ValueError("need at least one part")
        object.__setattr__(self, "parts", tuple(parts))
        object.__setattr__(self, "duration_s", float(sum(p.duration_s for p in parts)))

    def load_at(self, t: float) -> float:
        t = self._check(t)
        for part in self.parts:
            if t < part.duration_s:
                return part.load_at(t)
            t -= part.duration_s
        return self.parts[-1].load_at(self.parts[-1].duration_s)


@dataclass(frozen=True)
class SampledTrace(LoadTrace):
    """Uniformly sampled load levels, one per ``interval_s`` seconds.

    Unlike :class:`StepTrace` (which scans its steps on every lookup),
    lookups here are O(1), so a fleet of nodes can each carry a
    per-interval load schedule hundreds of entries long -- the shape a
    load balancer emits -- without quadratic replay cost.
    """

    levels: tuple[float, ...]
    interval_s: float = 1.0
    duration_s: float = 0.0

    def __init__(self, levels: Sequence[float], interval_s: float = 1.0):
        if not levels:
            raise ValueError("need at least one level")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        for level in levels:
            if not 0.0 <= level <= 1.5:
                raise ValueError("levels must be within [0, 1.5]")
        object.__setattr__(self, "levels", tuple(float(level) for level in levels))
        object.__setattr__(self, "interval_s", float(interval_s))
        object.__setattr__(self, "duration_s", float(len(levels) * interval_s))

    def load_at(self, t: float) -> float:
        t = self._check(t)
        index = min(int(t / self.interval_s), len(self.levels) - 1)
        return self.levels[index]

    def load_at_many(self, times) -> np.ndarray:
        t = self._check_many(times)
        idx = np.minimum(
            (t / self.interval_s).astype(np.int64), len(self.levels) - 1
        )
        return np.asarray(self.levels, dtype=float)[idx]


@dataclass(frozen=True)
class ReplayTrace(LoadTrace):
    """Replay of a recorded load series: explicit ``(time, level)`` points.

    Where :class:`SampledTrace` assumes a uniform sampling grid, a replay
    carries its own (strictly increasing) timestamps -- the shape of a
    production monitoring export, which samples on state changes or at
    irregular scrape intervals.  ``interp`` selects how load between
    points is read: ``"previous"`` holds the last recorded level (a
    step function, the usual semantics of counter scrapes) and
    ``"linear"`` interpolates between points.
    """

    times_s: tuple[float, ...]
    levels: tuple[float, ...]
    interp: str = "previous"
    duration_s: float = 0.0

    def __init__(
        self,
        times_s: Sequence[float],
        levels: Sequence[float],
        interp: str = "previous",
        duration_s: float | None = None,
    ):
        if len(times_s) != len(levels):
            raise ValueError(
                f"times_s and levels must align ({len(times_s)} times, "
                f"{len(levels)} levels)"
            )
        if not times_s:
            raise ValueError("need at least one recorded point")
        times = tuple(float(t) for t in times_s)
        if times[0] < 0:
            raise ValueError("recorded times must be non-negative")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("recorded times must be strictly increasing")
        for level in levels:
            if not 0.0 <= level <= 1.5:
                raise ValueError("levels must be within [0, 1.5]")
        if interp not in ("previous", "linear"):
            raise ValueError(
                f"interp must be 'previous' or 'linear', got {interp!r}"
            )
        if duration_s is None:
            duration_s = times[-1] if times[-1] > 0 else 1.0
        if duration_s < times[-1]:
            raise ValueError("duration_s must cover the recorded points")
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "levels", tuple(float(v) for v in levels))
        object.__setattr__(self, "interp", interp)
        object.__setattr__(self, "duration_s", float(duration_s))

    def _arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(self.times_s, dtype=float),
            np.asarray(self.levels, dtype=float),
        )

    def load_at(self, t: float) -> float:
        t = self._check(t)
        times, levels = self._arrays()
        if self.interp == "linear":
            return float(np.interp(t, times, levels))
        # "previous": the last point at or before t; times before the
        # first recorded point hold the first level.
        index = max(int(np.searchsorted(times, t, side="right")) - 1, 0)
        return float(levels[index])

    def load_at_many(self, times_query) -> np.ndarray:
        t = self._check_many(times_query)
        times, levels = self._arrays()
        if self.interp == "linear":
            return np.interp(t, times, levels)
        idx = np.maximum(np.searchsorted(times, t, side="right") - 1, 0)
        return levels[idx]


@dataclass(frozen=True)
class SpikeTrace(LoadTrace):
    """A sudden load spike on top of a base level (Section 2's 'sudden
    load spikes' stressor)."""

    base_level: float
    spike_level: float
    spike_start_s: float
    spike_duration_s: float
    duration_s: float

    def __post_init__(self) -> None:
        for attr in ("base_level", "spike_level"):
            if not 0.0 <= getattr(self, attr) <= 1.5:
                raise ValueError(f"{attr} must be within [0, 1.5]")
        if self.spike_duration_s <= 0 or self.duration_s <= 0:
            raise ValueError("durations must be positive")
        if not 0.0 <= self.spike_start_s <= self.duration_s:
            raise ValueError("spike_start_s must lie within the trace")

    def load_at(self, t: float) -> float:
        t = self._check(t)
        if self.spike_start_s <= t < self.spike_start_s + self.spike_duration_s:
            return self.spike_level
        return self.base_level
