"""Detection/recovery timelines and the blast-radius report.

The legacy fault split (:func:`repro.fleet.spec._split_with_faults`)
redistributes load the instant a node's capacity multiplier changes --
the balancer is omniscient.  Real failure detectors lag: between onset
and detection the balancer keeps routing to a dead or degraded node,
and the surviving nodes only absorb the spill once the detector fires.
This module models that lag with **two** capacity-multiplier matrices:

* *physical* -- what the hardware actually does; a fault applies from
  its ``start_interval``.
* *known* -- what the balancer believes; a fault only applies from its
  ``detect_interval`` (repair is assumed observed immediately, so
  known-dead is always a subset of physically-dead).

:func:`split_with_timeline` segments the run wherever either matrix
changes, re-runs the fleet's balancer per segment over the *known*
capacities, then spills the share routed to undetected-dead nodes
uniformly across the physically-alive ones (the load balancer's
connection failover, which is capacity-blind).  The result is ordinary
per-node ``SampledTrace`` levels -- pre-fault / undetected-overload /
post-redistribution / post-repair are just consecutive segments -- so
node specs stay frozen, cacheable, and byte-identical serial or
``--jobs N``.

:class:`ResilienceReport` condenses a resilient fleet's outcome into
the numbers an operator asks after a drill: how deep QoS dipped during
the failure windows, how long recovery took, how far the blast spread
beyond the nodes that actually failed, and how hot the survivors ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.fleet.faults import FaultEvent

#: Per-node offered-load ceiling shared with the legacy fault split: a
#: survivor can be asked for at most 1.5x its capacity; demand beyond
#: that is dropped (the fleet is simply over capacity).
MAX_NODE_LEVEL = 1.5


def timeline_multipliers(
    events: tuple[FaultEvent, ...], *, n_nodes: int, n_intervals: int
) -> tuple[np.ndarray, np.ndarray]:
    """The ``(physical, known)`` capacity-multiplier matrices.

    Both are ``(n_intervals, n_nodes)``.  ``physical`` applies each
    event over ``[start_interval, end_interval)``; ``known`` over
    ``[detected_at, end_interval)`` -- the detector lag is the gap.
    """
    physical = np.ones((n_intervals, n_nodes))
    known = np.ones((n_intervals, n_nodes))
    for event in events:
        physical[event.start_interval : event.end_interval, event.node] *= (
            event.multiplier
        )
        known[event.detected_at : event.end_interval, event.node] *= event.multiplier
    return physical, known


def split_with_timeline(
    fleet_loads: np.ndarray,
    capacities: np.ndarray,
    balancer: Any,
    events: tuple[FaultEvent, ...],
) -> np.ndarray:
    """Per-node offered-load levels under the detection/recovery timeline.

    Segments the run at every interval where the physical or known
    multiplier pattern changes, and per segment:

    1. re-runs ``balancer.split`` over the *known*-alive nodes with
       their known effective capacities (detected degradation shrinks a
       node's share; detected death removes it),
    2. spills the share assigned to undetected-dead nodes uniformly
       across the physically-alive ones (capacity-blind failover),
    3. inflates what lands on physically-degraded nodes by the inverse
       multiplier (their service times stretch), capped at
       :data:`MAX_NODE_LEVEL`.

    Raises ``ValueError`` if any segment leaves no node physically
    alive.
    """
    n_intervals, n_nodes = (len(fleet_loads), len(capacities))
    physical, known = timeline_multipliers(
        events, n_nodes=n_nodes, n_intervals=n_intervals
    )
    levels = np.zeros((n_intervals, n_nodes))
    pattern = np.concatenate([physical, known], axis=1)
    boundaries = [0]
    for t in range(1, n_intervals):
        if not np.array_equal(pattern[t], pattern[t - 1]):
            boundaries.append(t)
    boundaries.append(n_intervals)
    for seg_start, seg_end in zip(boundaries[:-1], boundaries[1:]):
        prow = physical[seg_start]
        krow = known[seg_start]
        phys_alive = np.flatnonzero(prow > 0)
        if phys_alive.size == 0:
            raise ValueError(
                "fault schedule kills every node -- lower the probability "
                "or add nodes"
            )
        known_alive = np.flatnonzero(krow > 0)
        # The balancer plans over what it *believes*: the known-alive
        # nodes at their known effective capacities, splitting the
        # whole fleet demand among them.
        sub = fleet_loads[seg_start:seg_end] * n_nodes / known_alive.size
        effective = capacities[known_alive] * krow[known_alive]
        split = balancer.split(sub, effective)
        assigned = np.zeros((seg_end - seg_start, n_nodes))
        assigned[:, known_alive] = split
        # Undetected-dead nodes (balancer still routes to them, but the
        # hardware is gone): spill their share uniformly across the
        # physically-alive nodes.
        ghosts = np.flatnonzero((krow > 0) & (prow == 0))
        if ghosts.size:
            spill = assigned[:, ghosts].sum(axis=1) / phys_alive.size
            assigned[:, phys_alive] += spill[:, None]
            assigned[:, ghosts] = 0.0
        # What a degraded node receives inflates by 1/multiplier.
        inflated = assigned[:, phys_alive] / prow[phys_alive]
        levels[seg_start:seg_end, phys_alive] = np.minimum(inflated, MAX_NODE_LEVEL)
    return levels


@dataclass(frozen=True)
class ResilienceReport:
    """The blast-radius digest of a resilient fleet run.

    ``blast_radius`` is nodes whose planned load changed divided by
    nodes that actually faulted -- 1.0 means the damage stayed put,
    ``n_nodes / nodes_faulted`` means everyone felt it.  QoS fractions
    are the share of intervals meeting the fleet latency target
    (``fleet_ratio <= 1``) inside vs. outside the fault windows;
    ``degradation_depth`` is their gap.  ``time_to_recover_s`` measures,
    per fault event, onset to the first subsequent interval back under
    target (censored at end-of-run -- ``recoveries_censored`` counts
    those).  ``overload_peak_level`` is the hottest *planned* per-node
    level during any window; ``peak_tail_ratio`` the hottest *measured*
    node tail-latency ratio (``None`` when node peaks were not
    collected).
    """

    n_events: int
    nodes_faulted: int
    nodes_affected: int
    blast_radius: float
    fault_intervals: int
    qos_baseline: float
    qos_during_faults: float
    degradation_depth: float
    time_to_recover_s_mean: float
    time_to_recover_s_max: float
    recoveries_censored: int
    overload_peak_level: float
    peak_tail_ratio: float | None = None

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready mapping (rounded the way summaries are)."""
        return {
            "n_events": self.n_events,
            "nodes_faulted": self.nodes_faulted,
            "nodes_affected": self.nodes_affected,
            "blast_radius": round(self.blast_radius, 6),
            "fault_intervals": self.fault_intervals,
            "qos_baseline": round(self.qos_baseline, 6),
            "qos_during_faults": round(self.qos_during_faults, 6),
            "degradation_depth": round(self.degradation_depth, 6),
            "time_to_recover_s_mean": round(self.time_to_recover_s_mean, 3),
            "time_to_recover_s_max": round(self.time_to_recover_s_max, 3),
            "recoveries_censored": self.recoveries_censored,
            "overload_peak_level": round(self.overload_peak_level, 6),
            "peak_tail_ratio": (
                None
                if self.peak_tail_ratio is None
                else round(self.peak_tail_ratio, 6)
            ),
        }

    def render_lines(self) -> list[str]:
        """Human-readable report lines for fleet/pack renders."""
        lines = [
            (
                f"resilience: {self.n_events} event(s) on "
                f"{self.nodes_faulted} node(s), blast radius "
                f"{self.blast_radius:.2f} ({self.nodes_affected} affected)"
            ),
            (
                f"  QoS {self.qos_baseline * 100:.1f}% baseline -> "
                f"{self.qos_during_faults * 100:.1f}% during faults "
                f"(depth {self.degradation_depth * 100:.1f}pp over "
                f"{self.fault_intervals} interval(s))"
            ),
            (
                f"  recovery {self.time_to_recover_s_mean:.1f}s mean / "
                f"{self.time_to_recover_s_max:.1f}s max"
                + (
                    f" ({self.recoveries_censored} censored)"
                    if self.recoveries_censored
                    else ""
                )
            ),
        ]
        survivor = f"  survivor overload peak {self.overload_peak_level:.3f}x"
        if self.peak_tail_ratio is not None:
            survivor += f", peak tail ratio {self.peak_tail_ratio:.3f}x"
        lines.append(survivor)
        return lines


def build_resilience_report(
    *,
    events: tuple[FaultEvent, ...],
    planned_levels: np.ndarray,
    baseline_levels: np.ndarray,
    fleet_ratio: np.ndarray | None,
    interval_s: float,
    node_peak_ratios: np.ndarray | None = None,
) -> ResilienceReport:
    """Condense a resilient fleet's plan + measurements into a report.

    ``planned_levels`` are the timeline split's per-node levels,
    ``baseline_levels`` the counterfactual faultless split of the same
    demand; a node whose rounded plan differs anywhere is "affected".
    ``fleet_ratio`` (per-interval max tail/target across nodes) drives
    the QoS and recovery numbers; when unavailable the report still
    carries the structural fields.
    """
    n_intervals, n_nodes = planned_levels.shape
    faulted = sorted({event.node for event in events})
    affected_mask = ~np.all(
        np.round(planned_levels, 6) == np.round(baseline_levels, 6), axis=0
    )
    nodes_affected = int(affected_mask.sum())
    window = np.zeros(n_intervals, dtype=bool)
    for event in events:
        window[event.start_interval : event.end_interval] = True
    fault_intervals = int(window.sum())
    physical = np.ones((n_intervals, n_nodes), dtype=bool)
    for event in events:
        if event.multiplier == 0.0:
            physical[event.start_interval : event.end_interval, event.node] = False
    alive_levels = np.where(physical, planned_levels, 0.0)
    overload_peak = (
        float(alive_levels[window].max())
        if fault_intervals
        else float(alive_levels.max(initial=0.0))
    )
    qos_baseline = qos_during = 1.0
    ttrs: list[float] = []
    censored = 0
    if fleet_ratio is not None and len(fleet_ratio) == n_intervals:
        ok = np.asarray(fleet_ratio) <= 1.0
        outside = ~window
        if outside.any():
            qos_baseline = float(ok[outside].mean())
        # No fault windows (topology declared, nothing fired): the
        # during-faults QoS degenerates to the baseline, depth 0.
        qos_during = float(ok[window].mean()) if window.any() else qos_baseline
        for event in events:
            start = event.start_interval
            if start >= n_intervals:
                continue
            recovered = np.flatnonzero(ok[start:])
            if recovered.size:
                ttrs.append(float(recovered[0]) * interval_s)
            else:
                ttrs.append(float(n_intervals - start) * interval_s)
                censored += 1
    return ResilienceReport(
        n_events=len(events),
        nodes_faulted=len(faulted),
        nodes_affected=nodes_affected,
        blast_radius=(nodes_affected / len(faulted)) if faulted else 0.0,
        fault_intervals=fault_intervals,
        qos_baseline=qos_baseline,
        qos_during_faults=qos_during,
        degradation_depth=max(0.0, qos_baseline - qos_during),
        time_to_recover_s_mean=(sum(ttrs) / len(ttrs)) if ttrs else 0.0,
        time_to_recover_s_max=max(ttrs) if ttrs else 0.0,
        recoveries_censored=censored,
        overload_peak_level=overload_peak,
        peak_tail_ratio=(
            float(np.max(node_peak_ratios))
            if node_peak_ratios is not None and len(node_peak_ratios)
            else None
        ),
    )


__all__ = [
    "MAX_NODE_LEVEL",
    "ResilienceReport",
    "build_resilience_report",
    "split_with_timeline",
    "timeline_multipliers",
]
