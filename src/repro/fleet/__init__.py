"""Fleet-scale simulation: many Hipster-managed nodes behind a balancer.

The paper manages one Juno board; a production service runs thousands.
This package opens the node-count axis: a frozen, fingerprinted
:class:`~repro.fleet.spec.FleetSpec` describes N simulated nodes and a
load-balancer policy, expands into ordinary per-node
:class:`~repro.scenarios.spec.ScenarioSpec`s (each node runs the full
single-board co-simulator with its own manager instance), fans out over
the existing :class:`~repro.sim.batch.BatchRunner`, and folds node runs
into cluster-level metrics (total watts, tail-of-tails QoS, utilization
skew) in :mod:`repro.fleet.aggregate`.

Importing this package registers the fleet scenario families
(``fleet-diurnal``, ``fleet-ramp``, ``fleet-collocation``) in
:data:`repro.scenarios.DEFAULT_REGISTRY`.
"""

from repro.fleet import families  # noqa: F401  (registers fleet families)
from repro.fleet.aggregate import FleetAccumulator, FleetOutcome, NodeReduction
from repro.fleet.balancer import (
    BALANCER_FACTORIES,
    LeastLoadedBalancer,
    LoadBalancer,
    PowerAwareBalancer,
    RoundRobinBalancer,
    build_balancer,
)
from repro.fleet.faults import (
    CORRELATED_KINDS,
    FAULT_KINDS,
    FaultClause,
    FaultEvent,
    capacity_multipliers,
    lower_faults,
)
from repro.fleet.resilience import (
    ResilienceReport,
    build_resilience_report,
    split_with_timeline,
    timeline_multipliers,
)
from repro.fleet.spec import FLEET_SCHEMA_VERSION, FleetSpec


def run_fleet(spec: FleetSpec, runner=None) -> FleetOutcome:
    """Run a fleet spec through a batch runner (see :meth:`FleetSpec.run`).

    .. deprecated:: 1.1
       Use :func:`repro.api.run_scenario` (or :meth:`FleetSpec.run`)
       instead; this shim forwards and will be removed.
    """
    import warnings

    warnings.warn(
        "repro.fleet.run_fleet is deprecated; use repro.api.run_scenario "
        "or FleetSpec.run instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return spec.run(runner)


__all__ = [
    "BALANCER_FACTORIES",
    "CORRELATED_KINDS",
    "FAULT_KINDS",
    "FLEET_SCHEMA_VERSION",
    "FaultClause",
    "FaultEvent",
    "FleetAccumulator",
    "FleetOutcome",
    "FleetSpec",
    "NodeReduction",
    "ResilienceReport",
    "build_resilience_report",
    "capacity_multipliers",
    "lower_faults",
    "split_with_timeline",
    "timeline_multipliers",
    "LeastLoadedBalancer",
    "LoadBalancer",
    "PowerAwareBalancer",
    "RoundRobinBalancer",
    "build_balancer",
    "run_fleet",
]
