"""Fleet-level aggregation: what the cluster operator's dashboard shows.

A fleet run is N independent node runs; this module folds them into the
quantities that only exist at cluster scope -- total power draw, the
tail-of-tails QoS (a user's request is slow if *its* node was slow, and
the fleet's p-worst interval is governed by the worst node), and the
utilization skew the balancer policy induced across nodes.

The fold is **streaming**: as each node outcome arrives (in whatever
order the batch runner completes them), :class:`FleetAccumulator`
reduces its observation table to a :class:`NodeReduction` -- a handful
of scalars plus two per-interval series -- and folds it, *in node
order*, into fixed-size fleet accumulators.  The node's full
observation table is dropped immediately, so a 1024-node sweep holds
``O(n_nodes + n_intervals)`` aggregation state instead of every node's
observations; out-of-order completions buffer only their reductions.
Folding in node order keeps every aggregate bit-identical to the
stacked ``np.sum``/``np.max`` reductions it replaced (axis-0 reduction
is a sequential left fold), no matter the completion order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fleet.spec import FleetSpec
from repro.scenarios.spec import ScenarioOutcome
from repro.sim.latency import qos_tardiness


@dataclass(frozen=True, eq=False)
class NodeReduction:
    """One node's contribution to the fleet fold.

    Everything the fleet metrics and the per-node report table need,
    reduced from the node's observation columns exactly once: five
    scalars plus the two per-interval series that feed the fleet-level
    running max (tails) and running sum (power).
    """

    index: int
    n_intervals: int
    target_latency_ms: float
    mean_power_w: float
    qos_guarantee: float
    mean_utilization: float
    mean_load: float
    total_energy_j: float
    tails_ms: np.ndarray
    powers_w: np.ndarray
    #: max(tails) / target -- the node's worst interval relative to its
    #: own QoS target; the resilience report's survivor-overload probe.
    peak_tail_ratio: float = 0.0

    @classmethod
    def from_outcome(cls, index: int, outcome: ScenarioOutcome) -> "NodeReduction":
        """Reduce one node outcome's columns (each computed once)."""
        result = outcome.result
        return cls(
            index=index,
            n_intervals=len(result),
            target_latency_ms=result.target_latency_ms,
            mean_power_w=result.mean_power_w(),
            qos_guarantee=result.qos_guarantee(),
            mean_utilization=result.mean_utilization(),
            mean_load=float(np.mean(result.loads)),
            total_energy_j=result.total_energy_j(),
            tails_ms=result.tails_ms,
            powers_w=result.powers_w,
            peak_tail_ratio=float(np.max(result.tails_ms) / result.target_latency_ms),
        )


class FleetAccumulator:
    """Folds node outcomes into a :class:`FleetOutcome`, node by node.

    ``add()`` accepts nodes in any completion order; reductions are
    buffered until their node index is next in sequence and then folded,
    so the running tails-max and power-sum accumulate in node order
    (bit-identical to the pre-streaming stacked reductions) while full
    node observations are never retained.
    """

    def __init__(self, spec: FleetSpec):
        if spec.n_nodes < 1:
            raise ValueError("a fleet outcome needs at least one node")
        self._spec = spec
        n = spec.n_nodes
        self._node_powers = np.empty(n)
        self._node_qos = np.empty(n)
        self._node_utils = np.empty(n)
        self._node_loads = np.empty(n)
        self._node_targets = np.empty(n)
        self._node_peaks = np.empty(n)
        self._total_energy = 0.0
        self._fleet_tails: np.ndarray | None = None
        self._fleet_powers: np.ndarray | None = None
        self._fleet_ratio: np.ndarray | None = None
        self._target: float | None = None
        self._n_intervals: int | None = None
        self._next = 0
        self._pending: dict[int, NodeReduction] = {}

    def add(self, index: int, outcome: ScenarioOutcome) -> None:
        """Consume one node's outcome (any order; folded in node order)."""
        if not 0 <= index < self._spec.n_nodes:
            raise IndexError(
                f"node index {index} outside fleet of {self._spec.n_nodes}"
            )
        if index < self._next or index in self._pending:
            raise ValueError(f"node {index} added twice")
        self._pending[index] = NodeReduction.from_outcome(index, outcome)
        while self._next in self._pending:
            self._fold(self._pending.pop(self._next))
            self._next += 1

    def _fold(self, node: NodeReduction) -> None:
        if self._n_intervals is None:
            self._n_intervals = node.n_intervals
            self._target = node.target_latency_ms
            self._fleet_tails = node.tails_ms.copy()
            self._fleet_powers = node.powers_w.copy()
            self._fleet_ratio = node.tails_ms / node.target_latency_ms
        else:
            if node.n_intervals != self._n_intervals:
                raise ValueError(
                    "nodes ran unequal interval counts: "
                    f"{sorted({self._n_intervals, node.n_intervals})}"
                )
            np.maximum(self._fleet_tails, node.tails_ms, out=self._fleet_tails)
            self._fleet_powers += node.powers_w
            # Normalized tail-of-tails: the per-interval worst node
            # *relative to its own target* -- on a heterogeneous fleet
            # (mixed workloads, different targets) the absolute max is
            # not what violates QoS.
            np.maximum(
                self._fleet_ratio,
                node.tails_ms / node.target_latency_ms,
                out=self._fleet_ratio,
            )
        i = node.index
        self._node_powers[i] = node.mean_power_w
        self._node_qos[i] = node.qos_guarantee
        self._node_utils[i] = node.mean_utilization
        self._node_loads[i] = node.mean_load
        self._node_targets[i] = node.target_latency_ms
        self._node_peaks[i] = node.peak_tail_ratio
        self._total_energy += node.total_energy_j

    def finish(self) -> "FleetOutcome":
        """The aggregated fleet outcome; every node must have arrived."""
        if self._next != self._spec.n_nodes:
            missing = self._spec.n_nodes - self._next
            raise ValueError(
                f"fleet aggregation incomplete: {missing} node(s) missing "
                f"(next expected index {self._next})"
            )
        return FleetOutcome(
            spec=self._spec,
            node_powers_w=self._node_powers,
            node_qos=self._node_qos,
            node_utils=self._node_utils,
            node_loads=self._node_loads,
            fleet_tails=self._fleet_tails,
            fleet_powers=self._fleet_powers,
            total_energy=self._total_energy,
            target_latency_ms=self._target,
            node_targets=self._node_targets,
            fleet_ratio=self._fleet_ratio,
            node_peak_ratios=self._node_peaks,
        )


@dataclass(frozen=True, eq=False)
class FleetOutcome:
    """What a fleet run produced, in aggregated (streamed) form.

    Holds only fixed-size reductions -- per-node scalar arrays plus the
    two per-interval fleet series -- never the per-node observation
    tables; build one with :class:`FleetAccumulator` (or
    :meth:`from_node_outcomes` when the outcomes are already in hand).
    """

    spec: FleetSpec
    node_powers_w: np.ndarray
    node_qos: np.ndarray
    node_utils: np.ndarray
    node_loads: np.ndarray
    fleet_tails: np.ndarray
    fleet_powers: np.ndarray
    total_energy: float
    target_latency_ms: float
    #: Per-node QoS targets (ms); ``None`` means every node shares
    #: ``target_latency_ms`` (pre-heterogeneity outcomes).
    node_targets: np.ndarray | None = None
    #: Per-interval max of (node tail / node target): the normalized
    #: tail-of-tails a mixed-workload fleet is judged by.
    fleet_ratio: np.ndarray | None = None
    #: Per-node max(tail)/target peaks; ``None`` on outcomes built
    #: before the resilience layer.
    node_peak_ratios: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.node_powers_w) < 1:
            raise ValueError("a fleet outcome needs at least one node")
        for arr in (
            self.node_powers_w,
            self.node_qos,
            self.node_utils,
            self.node_loads,
            self.fleet_tails,
            self.fleet_powers,
            self.node_targets,
            self.fleet_ratio,
            self.node_peak_ratios,
        ):
            if arr is not None:
                arr.flags.writeable = False

    @classmethod
    def from_node_outcomes(
        cls, spec: FleetSpec, outcomes: "tuple[ScenarioOutcome, ...] | list"
    ) -> "FleetOutcome":
        """Aggregate already-materialized node outcomes, in node order."""
        accumulator = FleetAccumulator(spec)
        for index, outcome in enumerate(outcomes):
            accumulator.add(index, outcome)
        return accumulator.finish()

    # ------------------------------------------------------------------
    # per-node views
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Fleet size."""
        return len(self.node_powers_w)

    def node_mean_powers_w(self) -> np.ndarray:
        """Mean power per node, watts."""
        return self.node_powers_w

    def node_qos_guarantees(self) -> np.ndarray:
        """Per-node QoS guarantee fractions."""
        return self.node_qos

    def node_mean_utilizations(self) -> np.ndarray:
        """Per-node mean queue utilization over the run."""
        return self.node_utils

    def node_mean_loads(self) -> np.ndarray:
        """Per-node mean offered load (what the balancer assigned)."""
        return self.node_loads

    # ------------------------------------------------------------------
    # fleet-level metrics
    # ------------------------------------------------------------------

    def total_mean_power_w(self) -> float:
        """Aggregate fleet power draw, watts."""
        return float(self.node_powers_w.sum())

    def total_energy_j(self) -> float:
        """Total fleet energy over the run, joules."""
        return self.total_energy

    def fleet_tails_ms(self) -> np.ndarray:
        """Tail-of-tails per interval: the worst node's tail latency."""
        return self.fleet_tails

    @property
    def is_heterogeneous(self) -> bool:
        """Whether nodes ran against different QoS targets (mixed
        workloads behind one balancer)."""
        return self.node_targets is not None and bool(
            np.ptp(self.node_targets) > 0.0
        )

    def fleet_qos_guarantee(self) -> float:
        """Fraction of intervals in which *every* node met its target.

        Homogeneous fleets keep the original absolute formulation
        (bit-identical to pre-heterogeneity outputs); a mixed-workload
        fleet judges each node against its own workload's target via
        the normalized tail-of-tails.
        """
        if self.is_heterogeneous:
            return float(np.mean(self.fleet_ratio <= 1.0))
        return float(np.mean(self.fleet_tails <= self.target_latency_ms))

    def fleet_qos_tardiness(self) -> float:
        """Mean tail-of-tails overshoot over violating intervals only
        (0.0 when nothing violates, matching the single-node
        :func:`repro.sim.latency.qos_tardiness` convention).  On a
        heterogeneous fleet the overshoot is measured on the normalized
        (per-node-target) tail-of-tails."""
        if self.is_heterogeneous:
            return qos_tardiness(self.fleet_ratio, 1.0)
        return qos_tardiness(self.fleet_tails, self.target_latency_ms)

    def utilization_skew(self) -> float:
        """Coefficient of variation of per-node utilization.

        0 means the balancer spread work perfectly evenly; a
        consolidating policy (power-aware) runs high skew on purpose.
        """
        utils = self.node_utils
        mean = float(np.mean(utils))
        if mean <= 0:
            return 0.0
        return float(np.std(utils) / mean)

    def fleet_powers_w(self) -> np.ndarray:
        """Aggregate fleet power per interval, watts."""
        return self.fleet_powers

    def resilience_report(self):
        """The blast-radius digest, or ``None`` for a fleet that never
        engaged the resilience layer (plain and legacy-fault specs)."""
        if not self.spec.uses_resilience():
            return None
        from repro.fleet.resilience import build_resilience_report

        return build_resilience_report(
            events=self.spec.fault_schedule(),
            planned_levels=self.spec.planned_levels(),
            baseline_levels=self.spec.faultless_levels(),
            fleet_ratio=self.fleet_ratio,
            interval_s=self.spec.interval_s,
            node_peak_ratios=self.node_peak_ratios,
        )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """The fleet report: headline metrics plus a per-node table.

        Every cell reads a reduction that was computed exactly once at
        aggregation time (the pre-streaming implementation recomputed
        the per-node means twice: once for the table, once for the
        skew)."""
        # Imported lazily: repro.experiments itself imports the fleet
        # package (fleet_scale), so a module-level import would cycle.
        from repro.experiments.reporting import ascii_table, series_block

        capacities = self.spec.node_capacities()
        # Heterogeneity / fault hooks: extra columns and a fault-event
        # line appear only when the spec uses them, so plain fleet
        # reports stay byte-identical to the pre-pack layout.
        hetero = self.spec.is_heterogeneous()
        workloads = self.spec.node_workloads() if hetero else None
        node_columns = ["node", "capacity", "mean load", "QoS", "power", "util"]
        if hetero:
            node_columns.insert(1, "workload")
        rows = []
        for index in range(self.n_nodes):
            row = [
                f"node{index:02d}",
                f"{capacities[index]:.3f}",
                f"{self.node_loads[index] * 100:.1f}%",
                f"{self.node_qos[index] * 100:.1f}%",
                f"{self.node_powers_w[index]:.2f}W",
                f"{self.node_utils[index]:.2f}",
            ]
            if hetero:
                row.insert(1, workloads[index])
            rows.append(row)
        fault_lines = []
        events = self.spec.fault_schedule()
        if events:
            rendered = ", ".join(
                f"node{e.node:02d}:{e.kind}@[{e.start_interval},"
                f"{e.end_interval})"
                for e in events
            )
            fault_lines.append(f"faults: {len(events)} event(s) -- {rendered}")
        report = self.resilience_report()
        if report is not None:
            fault_lines.extend(report.render_lines())
        return "\n".join(
            [
                f"Fleet -- {self.spec.describe()} "
                f"({self.n_nodes} nodes, balancer={self.spec.balancer})",
                *fault_lines,
                series_block("fleet power (W)", self.fleet_powers_w(), unit="W"),
                series_block(
                    "tail-of-tails (ms)", self.fleet_tails_ms(), unit="ms"
                ),
                ascii_table(
                    ["metric", "value"],
                    [
                        ["total mean power", f"{self.total_mean_power_w():.2f} W"],
                        ["total energy", f"{self.total_energy_j():.0f} J"],
                        [
                            "fleet QoS guarantee",
                            f"{self.fleet_qos_guarantee() * 100:.1f}%",
                        ],
                        [
                            "tail-of-tails tardiness",
                            f"{self.fleet_qos_tardiness():.2f}",
                        ],
                        ["utilization skew (CV)", f"{self.utilization_skew():.3f}"],
                    ],
                ),
                ascii_table(
                    node_columns,
                    rows,
                    title="Per-node breakdown:",
                ),
            ]
        )
