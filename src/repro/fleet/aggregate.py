"""Fleet-level aggregation: what the cluster operator's dashboard shows.

A fleet run is N independent node runs; this module folds them into the
quantities that only exist at cluster scope -- total power draw, the
tail-of-tails QoS (a user's request is slow if *its* node was slow, and
the fleet's p-worst interval is governed by the worst node), and the
utilization skew the balancer policy induced across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fleet.spec import FleetSpec
from repro.scenarios.spec import ScenarioOutcome
from repro.sim.latency import qos_tardiness
from repro.sim.records import ExperimentResult


@dataclass(frozen=True)
class FleetOutcome:
    """What a fleet run produced: one node outcome per fleet member."""

    spec: FleetSpec
    nodes: tuple[ScenarioOutcome, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a fleet outcome needs at least one node")
        lengths = {len(outcome.result) for outcome in self.nodes}
        if len(lengths) != 1:
            raise ValueError(f"nodes ran unequal interval counts: {sorted(lengths)}")

    # ------------------------------------------------------------------
    # per-node views
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Fleet size."""
        return len(self.nodes)

    @property
    def node_results(self) -> tuple[ExperimentResult, ...]:
        """Each node's raw experiment result, in node order."""
        return tuple(outcome.result for outcome in self.nodes)

    @property
    def target_latency_ms(self) -> float:
        """The workload QoS target (identical on every node)."""
        return self.node_results[0].target_latency_ms

    def node_mean_powers_w(self) -> np.ndarray:
        """Mean power per node, watts."""
        return np.array([result.mean_power_w() for result in self.node_results])

    def node_qos_guarantees(self) -> np.ndarray:
        """Per-node QoS guarantee fractions."""
        return np.array([result.qos_guarantee() for result in self.node_results])

    def node_mean_utilizations(self) -> np.ndarray:
        """Per-node mean queue utilization over the run."""
        return np.array(
            [
                float(np.mean([o.mean_utilization for o in result]))
                for result in self.node_results
            ]
        )

    def node_mean_loads(self) -> np.ndarray:
        """Per-node mean offered load (what the balancer assigned)."""
        return np.array(
            [float(np.mean(result.loads)) for result in self.node_results]
        )

    # ------------------------------------------------------------------
    # fleet-level metrics
    # ------------------------------------------------------------------

    def total_mean_power_w(self) -> float:
        """Aggregate fleet power draw, watts."""
        return float(self.node_mean_powers_w().sum())

    def total_energy_j(self) -> float:
        """Total fleet energy over the run, joules."""
        return float(sum(result.total_energy_j() for result in self.node_results))

    def fleet_tails_ms(self) -> np.ndarray:
        """Tail-of-tails per interval: the worst node's tail latency."""
        return np.max([result.tails_ms for result in self.node_results], axis=0)

    def fleet_qos_guarantee(self) -> float:
        """Fraction of intervals in which *every* node met the target."""
        return float(np.mean(self.fleet_tails_ms() <= self.target_latency_ms))

    def fleet_qos_tardiness(self) -> float:
        """Mean tail-of-tails overshoot over violating intervals only
        (0.0 when nothing violates, matching the single-node
        :func:`repro.sim.latency.qos_tardiness` convention)."""
        return qos_tardiness(self.fleet_tails_ms(), self.target_latency_ms)

    def utilization_skew(self) -> float:
        """Coefficient of variation of per-node utilization.

        0 means the balancer spread work perfectly evenly; a
        consolidating policy (power-aware) runs high skew on purpose.
        """
        utils = self.node_mean_utilizations()
        mean = float(np.mean(utils))
        if mean <= 0:
            return 0.0
        return float(np.std(utils) / mean)

    def fleet_powers_w(self) -> np.ndarray:
        """Aggregate fleet power per interval, watts."""
        return np.sum([result.powers_w for result in self.node_results], axis=0)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """The fleet report: headline metrics plus a per-node table."""
        # Imported lazily: repro.experiments itself imports the fleet
        # package (fleet_scale), so a module-level import would cycle.
        from repro.experiments.reporting import ascii_table, series_block

        capacities = self.spec.node_capacities()
        rows = []
        for index, result in enumerate(self.node_results):
            rows.append(
                [
                    f"node{index:02d}",
                    f"{capacities[index]:.3f}",
                    f"{float(np.mean(result.loads)) * 100:.1f}%",
                    f"{result.qos_guarantee() * 100:.1f}%",
                    f"{result.mean_power_w():.2f}W",
                    f"{float(np.mean([o.mean_utilization for o in result])):.2f}",
                ]
            )
        return "\n".join(
            [
                f"Fleet -- {self.spec.describe()} "
                f"({self.n_nodes} nodes, balancer={self.spec.balancer})",
                series_block("fleet power (W)", self.fleet_powers_w(), unit="W"),
                series_block(
                    "tail-of-tails (ms)", self.fleet_tails_ms(), unit="ms"
                ),
                ascii_table(
                    ["metric", "value"],
                    [
                        ["total mean power", f"{self.total_mean_power_w():.2f} W"],
                        ["total energy", f"{self.total_energy_j():.0f} J"],
                        [
                            "fleet QoS guarantee",
                            f"{self.fleet_qos_guarantee() * 100:.1f}%",
                        ],
                        [
                            "tail-of-tails tardiness",
                            f"{self.fleet_qos_tardiness():.2f}",
                        ],
                        ["utilization skew (CV)", f"{self.utilization_skew():.3f}"],
                    ],
                ),
                ascii_table(
                    ["node", "capacity", "mean load", "QoS", "power", "util"],
                    rows,
                    title="Per-node breakdown:",
                ),
            ]
        )
