"""Frozen fleet descriptions and their expansion into node runs.

A :class:`FleetSpec` is to a cluster what a
:class:`~repro.scenarios.spec.ScenarioSpec` is to one board: plain
frozen data -- workload, fleet trace, per-node manager, node count,
balancer policy, seed -- that is hashable, picklable and fingerprinted.
Expansion (:meth:`FleetSpec.node_specs`) is a pure function of the spec:
the balancer splits the fleet trace into per-node sampled traces, each
node gets a deterministic capacity factor (modelling board-to-board
manufacturing spread) and a derived seed, and the result is a tuple of
ordinary scenario specs.  Those run through the existing
:class:`~repro.sim.batch.BatchRunner` unchanged, so fleets inherit the
process fan-out, serial-vs-parallel determinism and fingerprint caching
of single-node batches for free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import UnknownNameError
from repro.fleet.balancer import (
    BALANCER_FACTORIES,
    MAX_NODE_LEVEL,
    build_balancer,
)
from repro.fleet.faults import (
    FaultClause,
    FaultEvent,
    capacity_multipliers,
    freeze_clauses,
    lower_faults,
)
from repro.fleet.resilience import split_with_timeline
from repro.scenarios.spec import (
    DEFAULT_SEED,
    SCHEMA_VERSION,
    Params,
    ScenarioSpec,
    TraceSpec,
    freeze_params,
    thaw_params,
)
from repro.sim.queueing import KERNEL_VERSION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.aggregate import FleetOutcome
    from repro.sim.batch import BatchRunner

#: Bump to invalidate fleet-derived node fingerprints when the expansion
#: semantics change (capacity model, seed derivation, balancer contract).
#: 2 = fault clauses + heterogeneous workload mixes fold into the
#: fingerprint payload (faultless homogeneous fleets still expand to
#: byte-identical node specs, so their cached node outcomes survive).
#: 3 = the resilience layer: topology racks, correlated fault clauses
#: and detection/repair timelines.  Only specs that *use* those (see
#: :meth:`FleetSpec.uses_resilience`) fingerprint at 3 -- everything
#: else keeps the version-2 payload, so existing fingerprints and
#: cached outcomes survive untouched.
FLEET_SCHEMA_VERSION = 3

#: The fingerprint payload version for specs untouched by the
#: resilience layer (kept so their identities never move).
_LEGACY_FLEET_SCHEMA_VERSION = 2

#: Offset mixed into per-node seeds so node RNG streams never collide
#: with the fleet seed itself or with neighbouring single-node runs.
_NODE_SEED_STRIDE = 7919


@dataclass(frozen=True)
class FleetSpec:
    """N simulated Hipster-managed nodes behind one load balancer.

    Parameters
    ----------
    workload:
        Workload registry key, served identically by every node.
    trace:
        Fleet-level offered load as a fraction of the *nominal* fleet
        capacity (``n_nodes`` ideal boards).
    manager:
        Per-node manager factory key (each node runs its own instance).
    n_nodes:
        Fleet size.
    balancer / balancer_params:
        Load-balancer key in
        :data:`repro.fleet.balancer.BALANCER_FACTORIES` plus keyword
        overrides (e.g. ``target_level`` for ``"power-aware"``).
    capacity_spread:
        Half-width of the uniform per-node capacity jitter around 1.0;
        0 makes the fleet perfectly homogeneous.
    manager_params / workload_params / platform / batch_jobs:
        Forwarded to every node's :class:`ScenarioSpec`.
    workload_mix:
        Optional heterogeneous node mix: ``{workload: node_count}``
        pairs summing to ``n_nodes`` (e.g. memcached and websearch
        nodes behind one balancer).  Empty means every node serves
        ``workload``.  Nodes are assigned in sorted-workload-name
        blocks, deterministically.
    faults:
        Probabilistic fault clauses (see :mod:`repro.fleet.faults`),
        lowered into a deterministic seed-derived event schedule at
        expansion time.
    topology:
        Optional rack/zone layout: ``{rack_name: node_count}`` pairs
        summing to ``n_nodes``.  Nodes are assigned in
        sorted-rack-name blocks (the frozen-params order), exactly
        like ``workload_mix``.  The correlated fault kinds
        (``rack-death``, ``cascading-straggler``, ``brownout-wave``)
        draw per rack; empty means one rack holding the whole fleet.
    seed:
        Fleet seed; node seeds, capacity factors and fault schedules
        derive from it.
    interval_s:
        Dispatch granularity of the balancer (matches the engine's
        monitoring interval).
    label:
        Free-form display name; excluded from the fingerprint.
    """

    workload: str
    trace: TraceSpec
    manager: str
    n_nodes: int = 8
    balancer: str = "round-robin"
    balancer_params: Params = ()
    capacity_spread: float = 0.08
    manager_params: Params = ()
    workload_params: Params = ()
    workload_mix: Params = ()
    faults: tuple[Params, ...] = ()
    topology: Params = ()
    platform: str = "juno_r1"
    batch_jobs: str | None = None
    seed: int = DEFAULT_SEED
    interval_s: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        for attr in ("balancer_params", "manager_params", "workload_params"):
            object.__setattr__(self, attr, freeze_params(getattr(self, attr)))
        object.__setattr__(self, "workload_mix", freeze_params(self.workload_mix))
        object.__setattr__(self, "topology", freeze_params(self.topology))
        object.__setattr__(self, "faults", freeze_clauses(self.faults))
        if self.n_nodes < 1:
            raise ValueError("a fleet needs at least one node")
        if not 0.0 <= self.capacity_spread < 1.0:
            raise ValueError("capacity_spread must be in [0, 1)")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.balancer not in BALANCER_FACTORIES:
            raise UnknownNameError(
                "balancer", self.balancer, sorted(BALANCER_FACTORIES)
            )
        if self.workload_mix:
            counts = [count for _, count in self.workload_mix]
            if any(not isinstance(c, int) or c < 1 for c in counts):
                raise ValueError("workload_mix counts must be positive ints")
            if sum(counts) != self.n_nodes:
                raise ValueError(
                    f"workload_mix counts sum to {sum(counts)}, "
                    f"but the fleet has {self.n_nodes} nodes"
                )
        if self.topology:
            counts = [count for _, count in self.topology]
            if any(not isinstance(c, int) or c < 1 for c in counts):
                raise ValueError("topology rack counts must be positive ints")
            if sum(counts) != self.n_nodes:
                raise ValueError(
                    f"topology rack counts sum to {sum(counts)}, "
                    f"but the fleet has {self.n_nodes} nodes"
                )
        # Node-field validation (workload/manager/platform/batch keys)
        # happens through ScenarioSpec's own __post_init__; build a probe
        # per distinct workload so a bad fleet spec fails at
        # construction, not at expansion.
        for workload in dict.fromkeys(
            (self.workload, *(name for name, _ in self.workload_mix))
        ):
            ScenarioSpec(
                workload=workload,
                trace=self.trace,
                manager=self.manager,
                manager_params=self.manager_params,
                workload_params=self.workload_params,
                platform=self.platform,
                batch_jobs=self.batch_jobs,
            )

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------

    def with_(self, **changes: Any) -> "FleetSpec":
        """A copy with the given fields replaced (params re-frozen)."""
        return replace(self, **changes)

    def fingerprint(self) -> str:
        """Stable identity over every expansion-affecting field.

        Specs untouched by the resilience layer hash the exact
        version-2 payload so their fingerprints (and every cached node
        outcome behind them) never move; resilience specs append the
        topology and hash at :data:`FLEET_SCHEMA_VERSION`.
        """
        payload = (
            FLEET_SCHEMA_VERSION
            if self.uses_resilience()
            else _LEGACY_FLEET_SCHEMA_VERSION,
            SCHEMA_VERSION,
            KERNEL_VERSION,
            self.workload,
            self.workload_params,
            self.trace,
            self.manager,
            self.manager_params,
            self.n_nodes,
            self.balancer,
            self.balancer_params,
            self.capacity_spread,
            self.workload_mix,
            self.faults,
            self.platform,
            self.batch_jobs,
            self.seed,
            self.interval_s,
        )
        if self.uses_resilience():
            payload = payload + (self.topology,)
        return hashlib.sha256(repr(payload).encode()).hexdigest()[:24]

    def describe(self) -> str:
        """Short human-readable identity for logs and reports."""
        return self.label or (
            f"{self.workload}/{self.manager}x{self.n_nodes}/{self.balancer}"
        )

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------

    def node_capacities(self) -> np.ndarray:
        """Per-node capacity factors around 1.0, derived from the seed.

        Capacity scales a node's achievable throughput: the expansion
        divides the workload's service demand by it, so a 0.92-capacity
        board is 8% slower than nominal.  The draw uses its own stream
        (seed XOR a constant) so it never aliases the run seeds.
        """
        rng = np.random.default_rng(self.seed ^ 0x5EED5)
        jitter = rng.uniform(-1.0, 1.0, self.n_nodes)
        return np.round(1.0 + self.capacity_spread * jitter, 6)

    def fleet_loads(self) -> np.ndarray:
        """Fleet offered load per interval (sampled at interval midpoints,
        matching the engine's own trace sampling)."""
        trace = self.trace.build()
        n = trace.n_intervals(self.interval_s)
        if n <= 0:
            raise ValueError("the fleet trace is shorter than one interval")
        mids = (np.arange(n) + 0.5) * self.interval_s
        return np.array([trace.load_at(t) for t in mids])

    def node_seed(self, index: int) -> int:
        """The run seed of node ``index``."""
        return self.seed + _NODE_SEED_STRIDE * (index + 1)

    def node_workloads(self) -> tuple[str, ...]:
        """Each node's workload key (heterogeneity hook).

        Homogeneous fleets serve ``workload`` everywhere; a
        ``workload_mix`` assigns nodes in blocks, sorted by workload
        name (the frozen-params order), so the assignment is a pure
        function of the spec.
        """
        if not self.workload_mix:
            return (self.workload,) * self.n_nodes
        assignment: list[str] = []
        for name, count in self.workload_mix:
            assignment.extend([name] * count)
        return tuple(assignment)

    def is_heterogeneous(self) -> bool:
        """Whether nodes serve more than one workload."""
        return len(set(self.node_workloads())) > 1

    def rack_blocks(self) -> tuple[tuple[str, tuple[int, ...]], ...]:
        """The topology as ``(rack_name, node_indices)`` blocks.

        Racks are assigned in sorted-name blocks over the node index
        space (the frozen-params order), so the layout is a pure
        function of the spec.  Without a ``topology`` the whole fleet
        is one rack.
        """
        if not self.topology:
            return (("rack0", tuple(range(self.n_nodes))),)
        blocks: list[tuple[str, tuple[int, ...]]] = []
        cursor = 0
        for name, count in self.topology:
            blocks.append((name, tuple(range(cursor, cursor + count))))
            cursor += count
        return tuple(blocks)

    def uses_resilience(self) -> bool:
        """Whether this spec engages the resilience layer.

        True when a topology is declared, a correlated fault kind is
        used, or any clause carries ``detection_s`` / ``repair_s``.
        Everything else expands through the legacy paths byte-for-byte.
        """
        if self.topology:
            return True
        return any(
            FaultClause.from_params(clause).uses_timeline() for clause in self.faults
        )

    # ------------------------------------------------------------------
    # fault lowering
    # ------------------------------------------------------------------

    def fault_schedule(self) -> tuple[FaultEvent, ...]:
        """The concrete fault events the clauses lower to.

        A pure function of ``(faults, seed, n_nodes, trace length)`` --
        computed in the parent process before any node run dispatches,
        so serial and parallel executions see the same schedule.
        """
        if not self.faults:
            return ()
        n_intervals = len(self.fleet_loads())
        return lower_faults(
            self.faults,
            seed=self.seed,
            n_nodes=self.n_nodes,
            n_intervals=n_intervals,
            interval_s=self.interval_s,
            racks=self.rack_blocks(),
        )

    def fault_multipliers(self) -> np.ndarray:
        """Per-interval, per-node effective-capacity multipliers."""
        return capacity_multipliers(
            self.fault_schedule(),
            n_nodes=self.n_nodes,
            n_intervals=len(self.fleet_loads()),
        )

    def node_specs(self) -> tuple[ScenarioSpec, ...]:
        """Expand into one :class:`ScenarioSpec` per node.

        Pure data in, pure data out: the same fleet spec always expands
        to the same node specs (hence the same fingerprints), no matter
        which process performs the expansion.  The expansion is memoized
        on the instance -- re-dispatching a warm fleet through the batch
        runner's in-memory tier costs cache lookups, not a balancer run.
        """
        cached = self.__dict__.get("_node_specs_memo")
        if cached is not None:
            return cached
        specs = self._expand_node_specs()
        object.__setattr__(self, "_node_specs_memo", specs)
        return specs

    def planned_levels(self) -> np.ndarray:
        """The ``(n_intervals, n_nodes)`` offered-load plan the
        expansion encodes into each node's sampled trace (before
        rounding)."""
        capacities = self.node_capacities()
        balancer = build_balancer(self.balancer, self.balancer_params)
        events = self.fault_schedule()
        if events and self.uses_resilience():
            return split_with_timeline(
                self.fleet_loads(), capacities, balancer, events
            )
        if events:
            return self._split_with_faults(balancer, capacities, events)
        # The pre-fault path, untouched: faultless fleets expand to
        # byte-identical node specs (and cached node outcomes).
        return balancer.split(self.fleet_loads(), capacities)

    def faultless_levels(self) -> np.ndarray:
        """The counterfactual plan with no faults at all -- the
        blast-radius baseline the resilience report diffs against."""
        balancer = build_balancer(self.balancer, self.balancer_params)
        return balancer.split(self.fleet_loads(), self.node_capacities())

    def _expand_node_specs(self) -> tuple[ScenarioSpec, ...]:
        from repro.scenarios import factories

        capacities = self.node_capacities()
        levels = self.planned_levels()
        workloads = self.node_workloads()
        base_demand_ms = {
            workload: factories.build_workload(
                workload, self.workload_params
            ).demand_mean_ms
            for workload in dict.fromkeys(workloads)
        }

        specs = []
        for index in range(self.n_nodes):
            node_params = thaw_params(self.workload_params)
            node_params["demand_mean_ms"] = round(
                base_demand_ms[workloads[index]] / capacities[index], 9
            )
            specs.append(
                ScenarioSpec(
                    workload=workloads[index],
                    trace=TraceSpec.sampled(
                        # tolist() keeps the same doubles but hands the
                        # TraceSpec float-conversion loop Python floats,
                        # which matters at 1024 nodes x 1400 intervals.
                        np.round(levels[:, index], 6).tolist(),
                        interval_s=self.interval_s,
                    ),
                    manager=self.manager,
                    manager_params=self.manager_params,
                    workload_params=node_params,
                    platform=self.platform,
                    batch_jobs=self.batch_jobs,
                    seed=self.node_seed(index),
                    label=f"{self.describe()}/node{index:02d}",
                )
            )
        return tuple(specs)

    def _split_with_faults(
        self, balancer, capacities: np.ndarray, events: tuple[FaultEvent, ...]
    ) -> np.ndarray:
        """Balancer split under a fault schedule.

        Balancers are row-pure (each interval splits independently), so
        the trace is segmented at fault boundaries and each segment is
        split over its *live* nodes with their effective capacities:
        dead nodes are excluded and the survivors absorb the whole
        fleet load; degraded/straggling nodes keep receiving work
        according to their reduced capacity, and what they receive is
        then inflated by the slowdown (utilization rises by
        ``1/factor``), capped at the per-node validity bound.
        """
        fleet_loads = self.fleet_loads()
        n_intervals = len(fleet_loads)
        multipliers = capacity_multipliers(
            events, n_nodes=self.n_nodes, n_intervals=n_intervals
        )
        levels = np.zeros((n_intervals, self.n_nodes))
        # Segment boundaries: intervals where any node's multiplier flips.
        changes = np.flatnonzero(
            (np.diff(multipliers, axis=0) != 0.0).any(axis=1)
        )
        starts = np.concatenate(([0], changes + 1))
        ends = np.concatenate((changes + 1, [n_intervals]))
        for start, end in zip(starts, ends):
            row = multipliers[start]
            alive = np.flatnonzero(row > 0.0)
            if not len(alive):
                raise ValueError(
                    "fault schedule kills every node "
                    f"(intervals {start}-{end}); nothing can serve the load"
                )
            # The same total offered load (fleet fraction x n_nodes
            # nominal boards) is re-expressed as a fraction of the
            # surviving sub-fleet's nominal capacity.
            sub_loads = fleet_loads[start:end] * (self.n_nodes / len(alive))
            effective = capacities[alive] * row[alive]
            split = balancer.split(sub_loads, effective)
            # Slowdown inflation: a node at capacity factor m serves its
            # assignment at 1/m the speed, so its offered level (fraction
            # of its *nominal* maximum) rises accordingly.
            split = np.minimum(split / row[alive][None, :], MAX_NODE_LEVEL)
            levels[start:end, alive] = split
        return levels

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, runner: "BatchRunner | None" = None) -> "FleetOutcome":
        """Run every node through the batch layer and aggregate.

        Node runs fan out across the runner's worker pool and land in
        its fingerprint cache individually, so re-running a fleet after
        a code or spec change only recomputes the nodes it affected.
        Outcomes stream through a :class:`~repro.fleet.aggregate.
        FleetAccumulator` in completion order: each node is reduced to
        its column aggregates and dropped, so fleet size is bounded by
        the accumulator (and the runner's LRU tier), not by
        ``n_nodes x n_intervals`` observation storage.
        """
        from repro.fleet.aggregate import FleetAccumulator
        from repro.sim.batch import get_runner

        accumulator = FleetAccumulator(self)
        for index, outcome in get_runner(runner).iter_run(self.node_specs()):
            accumulator.add(index, outcome)
        return accumulator.finish()
