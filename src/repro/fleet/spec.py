"""Frozen fleet descriptions and their expansion into node runs.

A :class:`FleetSpec` is to a cluster what a
:class:`~repro.scenarios.spec.ScenarioSpec` is to one board: plain
frozen data -- workload, fleet trace, per-node manager, node count,
balancer policy, seed -- that is hashable, picklable and fingerprinted.
Expansion (:meth:`FleetSpec.node_specs`) is a pure function of the spec:
the balancer splits the fleet trace into per-node sampled traces, each
node gets a deterministic capacity factor (modelling board-to-board
manufacturing spread) and a derived seed, and the result is a tuple of
ordinary scenario specs.  Those run through the existing
:class:`~repro.sim.batch.BatchRunner` unchanged, so fleets inherit the
process fan-out, serial-vs-parallel determinism and fingerprint caching
of single-node batches for free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.fleet.balancer import BALANCER_FACTORIES, build_balancer
from repro.scenarios.spec import (
    DEFAULT_SEED,
    SCHEMA_VERSION,
    Params,
    ScenarioSpec,
    TraceSpec,
    freeze_params,
    thaw_params,
)
from repro.sim.queueing import KERNEL_VERSION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.aggregate import FleetOutcome
    from repro.sim.batch import BatchRunner

#: Bump to invalidate fleet-derived node fingerprints when the expansion
#: semantics change (capacity model, seed derivation, balancer contract).
FLEET_SCHEMA_VERSION = 1

#: Offset mixed into per-node seeds so node RNG streams never collide
#: with the fleet seed itself or with neighbouring single-node runs.
_NODE_SEED_STRIDE = 7919


@dataclass(frozen=True)
class FleetSpec:
    """N simulated Hipster-managed nodes behind one load balancer.

    Parameters
    ----------
    workload:
        Workload registry key, served identically by every node.
    trace:
        Fleet-level offered load as a fraction of the *nominal* fleet
        capacity (``n_nodes`` ideal boards).
    manager:
        Per-node manager factory key (each node runs its own instance).
    n_nodes:
        Fleet size.
    balancer / balancer_params:
        Load-balancer key in
        :data:`repro.fleet.balancer.BALANCER_FACTORIES` plus keyword
        overrides (e.g. ``target_level`` for ``"power-aware"``).
    capacity_spread:
        Half-width of the uniform per-node capacity jitter around 1.0;
        0 makes the fleet perfectly homogeneous.
    manager_params / workload_params / platform / batch_jobs:
        Forwarded to every node's :class:`ScenarioSpec`.
    seed:
        Fleet seed; node seeds and capacity factors derive from it.
    interval_s:
        Dispatch granularity of the balancer (matches the engine's
        monitoring interval).
    label:
        Free-form display name; excluded from the fingerprint.
    """

    workload: str
    trace: TraceSpec
    manager: str
    n_nodes: int = 8
    balancer: str = "round-robin"
    balancer_params: Params = ()
    capacity_spread: float = 0.08
    manager_params: Params = ()
    workload_params: Params = ()
    platform: str = "juno_r1"
    batch_jobs: str | None = None
    seed: int = DEFAULT_SEED
    interval_s: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        for attr in ("balancer_params", "manager_params", "workload_params"):
            object.__setattr__(self, attr, freeze_params(getattr(self, attr)))
        if self.n_nodes < 1:
            raise ValueError("a fleet needs at least one node")
        if not 0.0 <= self.capacity_spread < 1.0:
            raise ValueError("capacity_spread must be in [0, 1)")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.balancer not in BALANCER_FACTORIES:
            raise KeyError(
                f"unknown balancer {self.balancer!r}; "
                f"available: {sorted(BALANCER_FACTORIES)}"
            )
        # Node-field validation (workload/manager/platform/batch keys)
        # happens through ScenarioSpec's own __post_init__; build a probe
        # so a bad fleet spec fails at construction, not at expansion.
        ScenarioSpec(
            workload=self.workload,
            trace=self.trace,
            manager=self.manager,
            manager_params=self.manager_params,
            workload_params=self.workload_params,
            platform=self.platform,
            batch_jobs=self.batch_jobs,
        )

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------

    def with_(self, **changes: Any) -> "FleetSpec":
        """A copy with the given fields replaced (params re-frozen)."""
        return replace(self, **changes)

    def fingerprint(self) -> str:
        """Stable identity over every expansion-affecting field."""
        payload = (
            FLEET_SCHEMA_VERSION,
            SCHEMA_VERSION,
            KERNEL_VERSION,
            self.workload,
            self.workload_params,
            self.trace,
            self.manager,
            self.manager_params,
            self.n_nodes,
            self.balancer,
            self.balancer_params,
            self.capacity_spread,
            self.platform,
            self.batch_jobs,
            self.seed,
            self.interval_s,
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()[:24]

    def describe(self) -> str:
        """Short human-readable identity for logs and reports."""
        return self.label or (
            f"{self.workload}/{self.manager}x{self.n_nodes}/{self.balancer}"
        )

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------

    def node_capacities(self) -> np.ndarray:
        """Per-node capacity factors around 1.0, derived from the seed.

        Capacity scales a node's achievable throughput: the expansion
        divides the workload's service demand by it, so a 0.92-capacity
        board is 8% slower than nominal.  The draw uses its own stream
        (seed XOR a constant) so it never aliases the run seeds.
        """
        rng = np.random.default_rng(self.seed ^ 0x5EED5)
        jitter = rng.uniform(-1.0, 1.0, self.n_nodes)
        return np.round(1.0 + self.capacity_spread * jitter, 6)

    def fleet_loads(self) -> np.ndarray:
        """Fleet offered load per interval (sampled at interval midpoints,
        matching the engine's own trace sampling)."""
        trace = self.trace.build()
        n = trace.n_intervals(self.interval_s)
        if n <= 0:
            raise ValueError("the fleet trace is shorter than one interval")
        mids = (np.arange(n) + 0.5) * self.interval_s
        return np.array([trace.load_at(t) for t in mids])

    def node_seed(self, index: int) -> int:
        """The run seed of node ``index``."""
        return self.seed + _NODE_SEED_STRIDE * (index + 1)

    def node_specs(self) -> tuple[ScenarioSpec, ...]:
        """Expand into one :class:`ScenarioSpec` per node.

        Pure data in, pure data out: the same fleet spec always expands
        to the same node specs (hence the same fingerprints), no matter
        which process performs the expansion.  The expansion is memoized
        on the instance -- re-dispatching a warm fleet through the batch
        runner's in-memory tier costs cache lookups, not a balancer run.
        """
        cached = self.__dict__.get("_node_specs_memo")
        if cached is not None:
            return cached
        specs = self._expand_node_specs()
        object.__setattr__(self, "_node_specs_memo", specs)
        return specs

    def _expand_node_specs(self) -> tuple[ScenarioSpec, ...]:
        from repro.scenarios import factories

        capacities = self.node_capacities()
        balancer = build_balancer(self.balancer, self.balancer_params)
        levels = balancer.split(self.fleet_loads(), capacities)
        base_demand_ms = factories.build_workload(
            self.workload, self.workload_params
        ).demand_mean_ms

        specs = []
        for index in range(self.n_nodes):
            node_params = thaw_params(self.workload_params)
            node_params["demand_mean_ms"] = round(
                base_demand_ms / capacities[index], 9
            )
            specs.append(
                ScenarioSpec(
                    workload=self.workload,
                    trace=TraceSpec.sampled(
                        # tolist() keeps the same doubles but hands the
                        # TraceSpec float-conversion loop Python floats,
                        # which matters at 1024 nodes x 1400 intervals.
                        np.round(levels[:, index], 6).tolist(),
                        interval_s=self.interval_s,
                    ),
                    manager=self.manager,
                    manager_params=self.manager_params,
                    workload_params=node_params,
                    platform=self.platform,
                    batch_jobs=self.batch_jobs,
                    seed=self.node_seed(index),
                    label=f"{self.describe()}/node{index:02d}",
                )
            )
        return tuple(specs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, runner: "BatchRunner | None" = None) -> "FleetOutcome":
        """Run every node through the batch layer and aggregate.

        Node runs fan out across the runner's worker pool and land in
        its fingerprint cache individually, so re-running a fleet after
        a code or spec change only recomputes the nodes it affected.
        Outcomes stream through a :class:`~repro.fleet.aggregate.
        FleetAccumulator` in completion order: each node is reduced to
        its column aggregates and dropped, so fleet size is bounded by
        the accumulator (and the runner's LRU tier), not by
        ``n_nodes x n_intervals`` observation storage.
        """
        from repro.fleet.aggregate import FleetAccumulator
        from repro.sim.batch import get_runner

        accumulator = FleetAccumulator(self)
        for index, outcome in get_runner(runner).iter_run(self.node_specs()):
            accumulator.add(index, outcome)
        return accumulator.finish()
