"""Fleet load balancers: split an offered-load trace across nodes.

A balancer is the front-end dispatcher of a simulated cluster: given the
fleet-level offered load per monitoring interval (a fraction of the
fleet's *nominal* capacity, ``n_nodes`` identical boards) and the
per-node capacity factors (real clusters are never perfectly
homogeneous -- cf. the Monte Cimone characterization), it decides how
much load each node serves each interval.  The output is a
``(n_intervals, n_nodes)`` matrix of per-node trace levels, each the
node's offered load as a fraction of one nominal board's maximum.

Balancing here is *open loop*: policies see only the offered load and
the (static) capacities, never runtime feedback, so the split is a pure
function of ``(trace, capacities)`` and every node run stays an
independent, cacheable :class:`~repro.scenarios.spec.ScenarioSpec`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

import numpy as np

#: A node's queue replica tolerates short overload; levels are capped at
#: the trace layer's validity bound.
MAX_NODE_LEVEL = 1.5


class LoadBalancer(abc.ABC):
    """Split fleet offered load into per-node trace levels."""

    #: Registry key, set on each concrete policy.
    name: str = ""

    @abc.abstractmethod
    def split(self, fleet_loads: np.ndarray, capacities: np.ndarray) -> np.ndarray:
        """Per-node levels for each interval.

        Parameters
        ----------
        fleet_loads:
            Shape ``(n_intervals,)``; offered load as a fraction of the
            nominal fleet capacity (``n_nodes`` ideal boards).
        capacities:
            Shape ``(n_nodes,)``; per-node capacity factors around 1.0.

        Returns
        -------
        Shape ``(n_intervals, n_nodes)``; per-node load levels in
        ``[0, MAX_NODE_LEVEL]``.
        """

    def _clip(self, levels: np.ndarray) -> np.ndarray:
        """Cap at :data:`MAX_NODE_LEVEL` without losing offered load.

        A policy's raw split can push a node past the cap (e.g. a
        capacity-weighted split of a 1.5 fleet load); the excess is
        reassigned to nodes with headroom, proportional to that
        headroom, so the conservation invariant (node levels sum to the
        fleet's offered load) survives whenever it is feasible at all --
        and it always is, because fleet traces are bounded by the same
        1.5 that bounds each node.

        Each redistribution pass touches only the *rows (intervals) that
        still overflow*: most intervals of a realistic trace never hit
        the cap, and the pre-vectorization implementation re-ran the
        full ``(n_intervals, n_nodes)`` arithmetic up to ``n_nodes``
        times anyway.  Row subsetting is observationally invisible --
        per-row arithmetic is elementwise, so operating on the
        overflowing subset produces bit-identical levels (enforced
        against :meth:`_clip_reference` by the balancer tests).
        """
        levels = np.clip(levels, 0.0, None)
        for _ in range(levels.shape[1]):
            # A pass fires on the reference's global trigger (any row's
            # summed excess beyond the noise floor) and then applies the
            # reference arithmetic to every row with *any* excess; rows
            # with zero excess are provably unmoved by a reference pass
            # (``x - 0.0 + headroom * 0.0 == x`` for the non-negative
            # post-clip levels), so skipping them is exact.
            active = np.flatnonzero((levels > MAX_NODE_LEVEL).any(axis=1))
            if not len(active):
                break
            sub = levels[active]
            excess = sub - MAX_NODE_LEVEL
            np.clip(excess, 0.0, None, out=excess)
            overflow = excess.sum(axis=1)
            if not (overflow > 1e-12).any():
                break
            sub = sub - excess
            headroom = MAX_NODE_LEVEL - sub
            total_headroom = headroom.sum(axis=1)
            share = np.divide(
                overflow,
                total_headroom,
                out=np.zeros_like(overflow),
                where=total_headroom > 0,
            )
            levels[active] = sub + headroom * np.minimum(share, 1.0)[:, None]
        return np.clip(levels, 0.0, MAX_NODE_LEVEL)

    def _clip_reference(self, levels: np.ndarray) -> np.ndarray:
        """The pre-vectorization cap redistribution, preserved verbatim
        as the byte-identity oracle for :meth:`_clip`: every pass ran
        the redistribution arithmetic over the full matrix, overflowing
        or not (the no-op rows moved by exactly ``+0.0`` per pass)."""
        levels = np.clip(levels, 0.0, None)
        for _ in range(levels.shape[1]):
            excess = np.clip(levels - MAX_NODE_LEVEL, 0.0, None)
            overflow = excess.sum(axis=1)
            if not (overflow > 1e-12).any():
                break
            levels = levels - excess
            headroom = MAX_NODE_LEVEL - levels
            total_headroom = headroom.sum(axis=1)
            share = np.divide(
                overflow,
                total_headroom,
                out=np.zeros_like(overflow),
                where=total_headroom > 0,
            )
            levels = levels + headroom * np.minimum(share, 1.0)[:, None]
        return np.clip(levels, 0.0, MAX_NODE_LEVEL)


@dataclass(frozen=True)
class RoundRobinBalancer(LoadBalancer):
    """Deal requests evenly, ignoring node heterogeneity.

    The classic DNS/round-robin front end: every node receives the same
    request rate, so slower-than-nominal nodes run proportionally hotter
    and become the fleet's tail under high load.
    """

    name = "round-robin"

    def split(self, fleet_loads: np.ndarray, capacities: np.ndarray) -> np.ndarray:
        fleet_loads = np.asarray(fleet_loads, dtype=float)
        # An even deal of F * n_nodes nominal units is level F everywhere.
        return self._clip(np.tile(fleet_loads[:, None], (1, len(capacities))))


@dataclass(frozen=True)
class LeastLoadedBalancer(LoadBalancer):
    """Send work where the queues are shortest.

    In steady state, join-the-least-loaded equalizes *utilization*, which
    for open-loop dispatch means weighting nodes by capacity: every node
    runs at the same fraction of its own maximum, so heterogeneity stops
    driving tail skew.
    """

    name = "least-loaded"

    def split(self, fleet_loads: np.ndarray, capacities: np.ndarray) -> np.ndarray:
        fleet_loads = np.asarray(fleet_loads, dtype=float)
        capacities = np.asarray(capacities, dtype=float)
        total = fleet_loads * len(capacities)
        weights = capacities / capacities.sum()
        return self._clip(total[:, None] * weights[None, :])


@dataclass(frozen=True)
class PowerAwareBalancer(LoadBalancer):
    """Consolidate load onto the most capable nodes first.

    Water-filling: nodes are ranked by capacity (on identical boards the
    fastest node retires the most work per joule) and filled up to
    ``target_level`` of their own capacity before the next node receives
    anything.  At low fleet load most nodes idle near zero, letting their
    per-node managers park on small cores -- the cluster-level analogue
    of Hipster's own consolidation story.  Load beyond every node's
    target spills proportionally to capacity.
    """

    target_level: float = 0.85
    name = "power-aware"

    def __post_init__(self) -> None:
        if not 0.0 < self.target_level <= MAX_NODE_LEVEL:
            raise ValueError("target_level must be in (0, MAX_NODE_LEVEL]")

    def split(self, fleet_loads: np.ndarray, capacities: np.ndarray) -> np.ndarray:
        fleet_loads = np.asarray(fleet_loads, dtype=float)
        capacities = np.asarray(capacities, dtype=float)
        total = fleet_loads[:, None] * len(capacities)

        # Fill order: most capable node first; stable for equal capacities.
        order = np.argsort(-capacities, kind="stable")
        caps = self.target_level * capacities[order]
        filled_before = np.concatenate(([0.0], np.cumsum(caps)[:-1]))
        alloc = np.clip(total - filled_before[None, :], 0.0, caps[None, :])

        # Spill beyond the last node's target: spread by capacity.
        overflow = np.clip(total[:, 0] - caps.sum(), 0.0, None)
        weights = capacities[order] / capacities.sum()
        alloc = alloc + overflow[:, None] * weights[None, :]

        levels = np.empty_like(alloc)
        levels[:, order] = alloc
        return self._clip(levels)


BALANCER_FACTORIES: dict[str, Callable[..., LoadBalancer]] = {
    "round-robin": RoundRobinBalancer,
    "least-loaded": LeastLoadedBalancer,
    "power-aware": PowerAwareBalancer,
}


def build_balancer(name: str, params=()) -> LoadBalancer:
    """A fresh balancer by registry key, with keyword overrides."""
    try:
        factory = BALANCER_FACTORIES[name]
    except KeyError:
        from repro.errors import UnknownNameError

        raise UnknownNameError(
            "balancer", name, sorted(BALANCER_FACTORIES)
        ) from None
    return factory(**dict(params))
