"""Fleet scenario families, registered alongside the single-node ones.

Mirrors the single-node families in :mod:`repro.scenarios.registry` one
level up: the same diurnal day / ramp / collocation shapes, but offered
to a whole cluster and split across nodes by a balancer policy.  The
fleet trace is interpreted as a fraction of *nominal fleet* capacity, so
the same family scales from 1 node to hundreds by changing ``n_nodes``.
"""

from __future__ import annotations

from typing import Any

from repro.fleet.spec import FleetSpec
from repro.scenarios.registry import (
    DEFAULT_REGISTRY,
    DIURNAL_TRACE_SEED,
    diurnal_duration_s,
    manager_params_with_learning,
)
from repro.scenarios.spec import DEFAULT_SEED, TraceSpec


@DEFAULT_REGISTRY.register("fleet-diurnal")
def fleet_diurnal(
    *,
    workload: str,
    manager: str = "hipster-in",
    n_nodes: int = 8,
    balancer: str = "round-robin",
    balancer_params: dict[str, Any] | None = None,
    capacity_spread: float = 0.08,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    trace_seed: int = DIURNAL_TRACE_SEED,
    manager_params: dict[str, Any] | None = None,
    learning_s: float | None = None,
) -> FleetSpec:
    """The diurnal day served by an N-node fleet (the Figure 5/6 shape
    at cluster scale)."""
    return FleetSpec(
        workload=workload,
        trace=TraceSpec.diurnal(
            diurnal_duration_s(workload, quick=quick), seed=trace_seed
        ),
        manager=manager,
        n_nodes=n_nodes,
        balancer=balancer,
        balancer_params=balancer_params or {},
        capacity_spread=capacity_spread,
        manager_params=manager_params_with_learning(
            manager, manager_params, quick=quick, learning_s=learning_s
        ),
        seed=seed,
        label=f"{workload}/{manager}x{n_nodes}/{balancer}/diurnal",
    )


@DEFAULT_REGISTRY.register("fleet-ramp")
def fleet_ramp(
    *,
    manager: str = "hipster-in",
    workload: str = "memcached",
    n_nodes: int = 8,
    balancer: str = "round-robin",
    balancer_params: dict[str, Any] | None = None,
    capacity_spread: float = 0.08,
    warmup_s: float = 700.0,
    start_level: float = 0.50,
    end_level: float = 1.00,
    ramp_s: float = 175.0,
    hold_s: float = 25.0,
    trace_seed: int = 7,
    seed: int = DEFAULT_SEED,
    manager_params: dict[str, Any] | None = None,
    learning_s: float | None = None,
) -> FleetSpec:
    """Fleet-wide warm-up then a load ramp: every node's manager must
    adapt while the balancer decides who absorbs the surge."""
    return FleetSpec(
        workload=workload,
        trace=TraceSpec.concat(
            TraceSpec.diurnal(warmup_s, seed=trace_seed),
            TraceSpec.ramp(start_level, end_level, ramp_s, hold_s=hold_s),
        ),
        manager=manager,
        n_nodes=n_nodes,
        balancer=balancer,
        balancer_params=balancer_params or {},
        capacity_spread=capacity_spread,
        manager_params=manager_params_with_learning(
            manager, manager_params, quick=False, learning_s=learning_s
        ),
        seed=seed,
        label=f"{workload}/{manager}x{n_nodes}/{balancer}/ramp",
    )


@DEFAULT_REGISTRY.register("fleet-collocation")
def fleet_collocation(
    *,
    program: str = "calculix",
    manager: str = "hipster-co",
    workload: str = "websearch",
    n_nodes: int = 8,
    balancer: str = "round-robin",
    balancer_params: dict[str, Any] | None = None,
    capacity_spread: float = 0.08,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    manager_params: dict[str, Any] | None = None,
    learning_s: float | None = None,
) -> FleetSpec:
    """Every node collocates the latency-critical service with one SPEC
    CPU2006 program per leftover core (Figure 11 at cluster scale)."""
    spec = fleet_diurnal(
        workload=workload,
        manager=manager,
        n_nodes=n_nodes,
        balancer=balancer,
        balancer_params=balancer_params,
        capacity_spread=capacity_spread,
        quick=quick,
        seed=seed,
        manager_params=manager_params,
        learning_s=learning_s,
    )
    return spec.with_(
        batch_jobs=f"spec:{program}",
        label=f"{workload}+{program}/{manager}x{n_nodes}/{balancer}",
    )
