"""Fleet fault injection: probabilistic clauses, deterministic schedules.

Real clusters lose nodes, inherit degraded boards and grow stragglers
mid-run (the Monte Cimone characterization makes all three routine).
A scenario pack *declares* faults probabilistically -- "each node dies
with probability 0.2 somewhere after t=300 s" -- but the execution
substrate only ever sees plain frozen specs, so the probabilistic
clause must **lower** into a concrete, seed-derived schedule before
expansion.  That split keeps every determinism property the repo is
built on: the same fleet spec (clauses + seed) always lowers to the
same events, the events reshape the per-node trace levels at expansion
time, and the resulting node specs are ordinary cacheable
:class:`~repro.scenarios.spec.ScenarioSpec`s -- serial and ``--jobs N``
runs are byte-identical because the schedule is fixed before any worker
starts.

Fault semantics (documented in the README's pack reference):

* ``node-death`` -- the node drains to zero offered load from its death
  interval onward; the balancer re-splits the *whole* fleet load across
  the survivors (the board keeps drawing idle power).
* ``degradation`` -- the node's effective capacity is multiplied by
  ``factor`` (< 1) from onset to the end of the run; capacity-aware
  balancers send it less work, and whatever it still receives inflates
  its utilization by ``1/factor``.
* ``straggler`` -- a temporary ``degradation``: the slowdown holds for
  ``duration_s`` seconds, then the node recovers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import UnknownNameError, UnknownParamError
from repro.scenarios.spec import Params, ParamsLike, freeze_params

#: XORed into the fleet seed for the fault-schedule rng stream so fault
#: draws never alias node seeds or capacity jitter.
_FAULT_SEED_SALT = 0xFA57ED

#: Clause kinds and the parameters each accepts beyond ``kind``.
FAULT_KINDS: dict[str, tuple[str, ...]] = {
    "node-death": ("probability", "earliest_s", "latest_s"),
    "degradation": ("probability", "factor", "earliest_s", "latest_s"),
    "straggler": (
        "probability",
        "slowdown",
        "duration_s",
        "earliest_s",
        "latest_s",
    ),
}


@dataclass(frozen=True)
class FaultClause:
    """One validated fault clause (the declarative form).

    ``probability`` is per node: every node draws independently.  The
    onset time is uniform in ``[earliest_s, latest_s]`` (``latest_s``
    defaults to the end of the trace).  ``factor`` (degradation) is the
    capacity multiplier; ``slowdown`` (straggler) is the service-time
    multiplier, i.e. a capacity factor of ``1/slowdown``.
    """

    kind: str
    probability: float
    factor: float = 1.0
    slowdown: float = 1.0
    duration_s: float = 0.0
    earliest_s: float = 0.0
    latest_s: float | None = None

    @classmethod
    def from_params(cls, params: ParamsLike) -> "FaultClause":
        """Validate a frozen/mapping clause into a :class:`FaultClause`."""
        fields = dict(freeze_params(params))
        kind = fields.pop("kind", None)
        if kind is None:
            raise ValueError("a fault clause needs a 'kind'")
        if kind not in FAULT_KINDS:
            raise UnknownNameError("fault kind", str(kind), sorted(FAULT_KINDS))
        accepted = FAULT_KINDS[kind]
        unknown = sorted(set(fields) - set(accepted))
        if unknown:
            raise UnknownParamError(
                f"fault clause {kind!r}", unknown, accepted
            )
        if "probability" not in fields:
            raise ValueError(f"fault clause {kind!r} needs a 'probability'")
        probability = float(fields["probability"])
        if not 0.0 <= probability <= 1.0:
            raise ValueError("fault probability must be within [0, 1]")
        earliest = float(fields.get("earliest_s", 0.0))
        if earliest < 0:
            raise ValueError("earliest_s must be non-negative")
        latest = fields.get("latest_s")
        if latest is not None:
            latest = float(latest)
            if latest < earliest:
                raise ValueError("latest_s must be >= earliest_s")
        clause = cls(
            kind=kind,
            probability=probability,
            earliest_s=earliest,
            latest_s=latest,
        )
        if kind == "degradation":
            if "factor" not in fields:
                raise ValueError("a degradation clause needs a 'factor'")
            factor = float(fields["factor"])
            if not 0.0 < factor < 1.0:
                raise ValueError("degradation factor must be in (0, 1)")
            clause = cls(
                kind=kind,
                probability=probability,
                factor=factor,
                earliest_s=earliest,
                latest_s=latest,
            )
        elif kind == "straggler":
            if "slowdown" not in fields:
                raise ValueError("a straggler clause needs a 'slowdown'")
            if "duration_s" not in fields:
                raise ValueError("a straggler clause needs a 'duration_s'")
            slowdown = float(fields["slowdown"])
            duration = float(fields["duration_s"])
            if slowdown <= 1.0:
                raise ValueError("straggler slowdown must be > 1")
            if duration <= 0:
                raise ValueError("straggler duration_s must be positive")
            clause = cls(
                kind=kind,
                probability=probability,
                slowdown=slowdown,
                duration_s=duration,
                earliest_s=earliest,
                latest_s=latest,
            )
        return clause

    def capacity_multiplier(self) -> float:
        """The per-interval capacity factor this clause applies."""
        if self.kind == "node-death":
            return 0.0
        if self.kind == "degradation":
            return self.factor
        return 1.0 / self.slowdown


def freeze_clauses(clauses) -> tuple[Params, ...]:
    """Normalize a clause list (mappings or frozen pairs) into frozen
    params, validating each clause along the way."""
    frozen = tuple(freeze_params(clause) for clause in clauses)
    for clause in frozen:
        FaultClause.from_params(clause)
    return frozen


@dataclass(frozen=True)
class FaultEvent:
    """One lowered fault: a node, an interval window, a capacity factor.

    ``multiplier`` is 0.0 for a death, the capacity factor otherwise;
    the window is half-open ``[start_interval, end_interval)``.
    """

    node: int
    kind: str
    start_interval: int
    end_interval: int
    multiplier: float


def lower_faults(
    clauses: tuple[Params, ...],
    *,
    seed: int,
    n_nodes: int,
    n_intervals: int,
    interval_s: float,
) -> tuple[FaultEvent, ...]:
    """Lower probabilistic clauses into a deterministic event schedule.

    The draw order is fixed -- clauses in declared order, nodes in index
    order, and every (clause, node) pair consumes exactly two variates
    (fire? and onset time) whether or not the fault fires -- so editing
    one clause's probability never reshuffles the events another clause
    produces.  The rng stream is derived from the fleet seed alone.
    """
    if not clauses:
        return ()
    rng = np.random.default_rng(seed ^ _FAULT_SEED_SALT)
    duration_s = n_intervals * interval_s
    events: list[FaultEvent] = []
    for clause_params in clauses:
        clause = FaultClause.from_params(clause_params)
        latest = clause.latest_s if clause.latest_s is not None else duration_s
        latest = min(latest, duration_s)
        earliest = min(clause.earliest_s, latest)
        for node in range(n_nodes):
            fire = float(rng.random())
            onset_s = float(rng.uniform(earliest, latest))
            if fire >= clause.probability:
                continue
            start = min(int(onset_s / interval_s), n_intervals)
            if clause.kind == "straggler":
                end = min(
                    start + math.ceil(clause.duration_s / interval_s),
                    n_intervals,
                )
            else:
                end = n_intervals
            if start >= end:
                continue
            events.append(
                FaultEvent(
                    node=node,
                    kind=clause.kind,
                    start_interval=start,
                    end_interval=end,
                    multiplier=clause.capacity_multiplier(),
                )
            )
    return tuple(events)


def capacity_multipliers(
    events: tuple[FaultEvent, ...], *, n_nodes: int, n_intervals: int
) -> np.ndarray:
    """The ``(n_intervals, n_nodes)`` effective-capacity multiplier
    matrix the events compose to (overlapping events multiply; any
    death wins)."""
    matrix = np.ones((n_intervals, n_nodes))
    for event in events:
        matrix[event.start_interval : event.end_interval, event.node] *= (
            event.multiplier
        )
    return matrix


__all__ = [
    "FAULT_KINDS",
    "FaultClause",
    "FaultEvent",
    "capacity_multipliers",
    "freeze_clauses",
    "lower_faults",
]
