"""Fleet fault injection: probabilistic clauses, deterministic schedules.

Real clusters lose nodes, inherit degraded boards and grow stragglers
mid-run (the Monte Cimone characterization makes all three routine).
A scenario pack *declares* faults probabilistically -- "each node dies
with probability 0.2 somewhere after t=300 s" -- but the execution
substrate only ever sees plain frozen specs, so the probabilistic
clause must **lower** into a concrete, seed-derived schedule before
expansion.  That split keeps every determinism property the repo is
built on: the same fleet spec (clauses + seed) always lowers to the
same events, the events reshape the per-node trace levels at expansion
time, and the resulting node specs are ordinary cacheable
:class:`~repro.scenarios.spec.ScenarioSpec`s -- serial and ``--jobs N``
runs are byte-identical because the schedule is fixed before any worker
starts.

Fault semantics (documented in the README's pack reference):

* ``node-death`` -- the node drains to zero offered load from its death
  interval onward; the balancer re-splits the *whole* fleet load across
  the survivors (the board keeps drawing idle power).
* ``degradation`` -- the node's effective capacity is multiplied by
  ``factor`` (< 1) from onset to the end of the run; capacity-aware
  balancers send it less work, and whatever it still receives inflates
  its utilization by ``1/factor``.
* ``straggler`` -- a temporary ``degradation``: the slowdown holds for
  ``duration_s`` seconds, then the node recovers.

Correlated clauses (the resilience layer, :mod:`repro.fleet.resilience`)
fail whole *racks* (the fleet topology's sorted node groups) instead of
independent nodes:

* ``rack-death`` -- one fire/onset draw per rack; every member of a
  struck rack dies together.
* ``cascading-straggler`` -- a seed straggler raises its rack
  neighbours' fault hazard: each neighbour draws against ``spread`` and,
  if struck, begins straggling ``lag_s`` (jittered) seconds after the
  seed's onset.
* ``brownout-wave`` -- one fleet-level draw; racks degrade by
  ``factor`` in block order, staggered ``stagger_s`` apart, for
  ``duration_s`` each.

Every clause additionally takes ``detection_s`` (the failure-detector
lag: the balancer keeps routing to the node until detection) and the
terminal kinds take ``repair_s`` (the node rejoins the pool afterwards).
Clauses that use neither lower exactly as they always did.

The draw discipline that makes all of this parallel-safe: clauses in
declared order, draw units (nodes, racks, or the fleet) in index order,
and a **fixed variate count per unit whether or not the fault fires**
-- cascading-straggler consumes its neighbour draws even for seeds that
never fired -- so editing one clause never reshuffles another clause's
events, and serial ≡ ``--jobs N`` by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import UnknownNameError, UnknownParamError
from repro.scenarios.spec import Params, ParamsLike, freeze_params

#: XORed into the fleet seed for the fault-schedule rng stream so fault
#: draws never alias node seeds or capacity jitter.
_FAULT_SEED_SALT = 0xFA57ED

#: Clause kinds and the parameters each accepts beyond ``kind``.
FAULT_KINDS: dict[str, tuple[str, ...]] = {
    "node-death": (
        "probability",
        "earliest_s",
        "latest_s",
        "detection_s",
        "repair_s",
    ),
    "degradation": (
        "probability",
        "factor",
        "earliest_s",
        "latest_s",
        "detection_s",
        "repair_s",
    ),
    "straggler": (
        "probability",
        "slowdown",
        "duration_s",
        "earliest_s",
        "latest_s",
        "detection_s",
    ),
    "rack-death": (
        "probability",
        "earliest_s",
        "latest_s",
        "detection_s",
        "repair_s",
    ),
    "cascading-straggler": (
        "probability",
        "slowdown",
        "duration_s",
        "spread",
        "lag_s",
        "earliest_s",
        "latest_s",
        "detection_s",
    ),
    "brownout-wave": (
        "probability",
        "factor",
        "duration_s",
        "stagger_s",
        "earliest_s",
        "latest_s",
        "detection_s",
    ),
}

#: The clause kinds the resilience layer introduced; a spec using any of
#: them (or ``detection_s`` / ``repair_s`` on a legacy kind) expands
#: through the detection/recovery timeline instead of the legacy split.
CORRELATED_KINDS = frozenset({"rack-death", "cascading-straggler", "brownout-wave"})


@dataclass(frozen=True)
class FaultClause:
    """One validated fault clause (the declarative form).

    ``probability`` is per draw unit -- node for the independent kinds,
    rack for ``rack-death``, the whole fleet for ``brownout-wave``.  The
    onset time is uniform in ``[earliest_s, latest_s]`` (``latest_s``
    defaults to the end of the trace).  ``factor`` (degradation /
    brownout) is the capacity multiplier; ``slowdown`` (stragglers) is
    the service-time multiplier, i.e. a capacity factor of
    ``1/slowdown``.  ``detection_s`` is how long the failure detector
    takes to notice (the balancer keeps routing until then);
    ``repair_s`` returns a dead/degraded node to the pool.
    """

    kind: str
    probability: float
    factor: float = 1.0
    slowdown: float = 1.0
    duration_s: float = 0.0
    earliest_s: float = 0.0
    latest_s: float | None = None
    detection_s: float = 0.0
    repair_s: float | None = None
    spread: float = 0.5
    lag_s: float = 15.0
    stagger_s: float = 30.0

    @classmethod
    def from_params(cls, params: ParamsLike) -> "FaultClause":
        """Validate a frozen/mapping clause into a :class:`FaultClause`."""
        fields = dict(freeze_params(params))
        kind = fields.pop("kind", None)
        if kind is None:
            raise ValueError("a fault clause needs a 'kind'")
        if kind not in FAULT_KINDS:
            raise UnknownNameError("fault kind", str(kind), sorted(FAULT_KINDS))
        accepted = FAULT_KINDS[kind]
        unknown = sorted(set(fields) - set(accepted))
        if unknown:
            raise UnknownParamError(f"fault clause {kind!r}", unknown, accepted)
        if "probability" not in fields:
            raise ValueError(f"fault clause {kind!r} needs a 'probability'")
        probability = float(fields["probability"])
        if not 0.0 <= probability <= 1.0:
            raise ValueError("fault probability must be within [0, 1]")
        earliest = float(fields.get("earliest_s", 0.0))
        if earliest < 0:
            raise ValueError("earliest_s must be non-negative")
        latest = fields.get("latest_s")
        if latest is not None:
            latest = float(latest)
            if latest < earliest:
                raise ValueError("latest_s must be >= earliest_s")
        values: dict = dict(
            kind=kind,
            probability=probability,
            earliest_s=earliest,
            latest_s=latest,
        )
        detection = float(fields.get("detection_s", 0.0))
        if detection < 0:
            raise ValueError("detection_s must be non-negative")
        values["detection_s"] = detection
        if "repair_s" in fields and fields["repair_s"] is not None:
            repair = float(fields["repair_s"])
            if repair <= 0:
                raise ValueError("repair_s must be positive")
            values["repair_s"] = repair
        if kind in ("degradation", "brownout-wave"):
            if "factor" not in fields:
                raise ValueError(f"a {kind} clause needs a 'factor'")
            factor = float(fields["factor"])
            if not 0.0 < factor < 1.0:
                raise ValueError(f"{kind} factor must be in (0, 1)")
            values["factor"] = factor
        if kind in ("straggler", "cascading-straggler"):
            if "slowdown" not in fields:
                raise ValueError(f"a {kind} clause needs a 'slowdown'")
            slowdown = float(fields["slowdown"])
            if slowdown <= 1.0:
                raise ValueError(f"{kind} slowdown must be > 1")
            values["slowdown"] = slowdown
        if kind in ("straggler", "cascading-straggler", "brownout-wave"):
            if "duration_s" not in fields:
                raise ValueError(f"a {kind} clause needs a 'duration_s'")
            duration = float(fields["duration_s"])
            if duration <= 0:
                raise ValueError(f"{kind} duration_s must be positive")
            values["duration_s"] = duration
        if kind == "cascading-straggler":
            spread = float(fields.get("spread", 0.5))
            if not 0.0 <= spread <= 1.0:
                raise ValueError("cascading-straggler spread must be in [0, 1]")
            lag = float(fields.get("lag_s", 15.0))
            if lag < 0:
                raise ValueError("cascading-straggler lag_s must be >= 0")
            values["spread"] = spread
            values["lag_s"] = lag
        if kind == "brownout-wave":
            stagger = float(fields.get("stagger_s", 30.0))
            if stagger < 0:
                raise ValueError("brownout-wave stagger_s must be >= 0")
            values["stagger_s"] = stagger
        return cls(**values)

    def capacity_multiplier(self) -> float:
        """The per-interval capacity factor this clause applies."""
        if self.kind in ("node-death", "rack-death"):
            return 0.0
        if self.kind in ("degradation", "brownout-wave"):
            return self.factor
        return 1.0 / self.slowdown

    def uses_timeline(self) -> bool:
        """Whether this clause needs the detection/recovery timeline."""
        return (
            self.kind in CORRELATED_KINDS
            or self.detection_s > 0.0
            or self.repair_s is not None
        )


def freeze_clauses(clauses) -> tuple[Params, ...]:
    """Normalize a clause list (mappings or frozen pairs) into frozen
    params, validating each clause along the way."""
    frozen = tuple(freeze_params(clause) for clause in clauses)
    for clause in frozen:
        FaultClause.from_params(clause)
    return frozen


@dataclass(frozen=True)
class FaultEvent:
    """One lowered fault: a node, an interval window, a capacity factor.

    ``multiplier`` is 0.0 for a death, the capacity factor otherwise;
    the window is half-open ``[start_interval, end_interval)``.
    ``detect_interval`` is when the failure detector notices (``None``
    means instantly, the legacy behaviour) -- physically the fault
    holds from ``start_interval``, but the balancer only reacts from
    ``detect_interval`` on.  Repair (``end_interval`` before the run
    ends) is assumed observed immediately.
    """

    node: int
    kind: str
    start_interval: int
    end_interval: int
    multiplier: float
    detect_interval: int | None = None

    @property
    def detected_at(self) -> int:
        """The interval the balancer learns of this fault."""
        if self.detect_interval is None:
            return self.start_interval
        return min(self.detect_interval, self.end_interval)


#: The default topology: every node in one rack (index order).
def _default_racks(n_nodes: int) -> tuple[tuple[str, tuple[int, ...]], ...]:
    return (("rack0", tuple(range(n_nodes))),)


def _detect(
    clause: FaultClause, start: int, end: int, interval_s: float
) -> int | None:
    """The detect interval for a window, or ``None`` (instant)."""
    if clause.detection_s <= 0.0:
        return None
    return min(start + math.ceil(clause.detection_s / interval_s), end)


def _window(
    clause: FaultClause,
    onset_s: float,
    *,
    n_intervals: int,
    interval_s: float,
) -> tuple[int, int]:
    """``[start, end)`` intervals for one fired clause at ``onset_s``."""
    start = min(int(onset_s / interval_s), n_intervals)
    if clause.kind in ("straggler", "cascading-straggler", "brownout-wave"):
        end = start + math.ceil(clause.duration_s / interval_s)
    elif clause.repair_s is not None:
        end = start + math.ceil(clause.repair_s / interval_s)
    else:
        end = n_intervals
    return start, min(end, n_intervals)


def lower_faults(
    clauses: tuple[Params, ...],
    *,
    seed: int,
    n_nodes: int,
    n_intervals: int,
    interval_s: float,
    racks: tuple[tuple[str, tuple[int, ...]], ...] | None = None,
) -> tuple[FaultEvent, ...]:
    """Lower probabilistic clauses into a deterministic event schedule.

    The draw order is fixed -- clauses in declared order, draw units
    (nodes, racks, or the fleet) in index order, and every unit consumes
    a fixed variate count whether or not the fault fires -- so editing
    one clause's probability never reshuffles the events another clause
    produces.  The rng stream is derived from the fleet seed alone.
    ``racks`` supplies the topology for the correlated kinds (defaults
    to one rack holding every node); independent kinds ignore it, so a
    topology-free spec lowers exactly as before.
    """
    if not clauses:
        return ()
    rng = np.random.default_rng(seed ^ _FAULT_SEED_SALT)
    if racks is None or not racks:
        racks = _default_racks(n_nodes)
    duration_s = n_intervals * interval_s
    events: list[FaultEvent] = []
    for clause_params in clauses:
        clause = FaultClause.from_params(clause_params)
        latest = clause.latest_s if clause.latest_s is not None else duration_s
        latest = min(latest, duration_s)
        earliest = min(clause.earliest_s, latest)
        if clause.kind == "rack-death":
            _lower_rack_death(
                clause,
                racks,
                rng,
                events,
                earliest=earliest,
                latest=latest,
                n_intervals=n_intervals,
                interval_s=interval_s,
            )
        elif clause.kind == "cascading-straggler":
            _lower_cascading(
                clause,
                racks,
                rng,
                events,
                earliest=earliest,
                latest=latest,
                n_nodes=n_nodes,
                n_intervals=n_intervals,
                interval_s=interval_s,
            )
        elif clause.kind == "brownout-wave":
            _lower_brownout(
                clause,
                racks,
                rng,
                events,
                earliest=earliest,
                latest=latest,
                n_intervals=n_intervals,
                interval_s=interval_s,
            )
        else:
            # The independent kinds: exactly two variates per node, in
            # node order -- byte-identical draws to the pre-resilience
            # lowering for clauses without detection/repair.
            for node in range(n_nodes):
                fire = float(rng.random())
                onset_s = float(rng.uniform(earliest, latest))
                if fire >= clause.probability:
                    continue
                start, end = _window(
                    clause,
                    onset_s,
                    n_intervals=n_intervals,
                    interval_s=interval_s,
                )
                if start >= end:
                    continue
                events.append(
                    FaultEvent(
                        node=node,
                        kind=clause.kind,
                        start_interval=start,
                        end_interval=end,
                        multiplier=clause.capacity_multiplier(),
                        detect_interval=_detect(clause, start, end, interval_s),
                    )
                )
    return tuple(events)


def _lower_rack_death(
    clause, racks, rng, events, *, earliest, latest, n_intervals, interval_s
) -> None:
    """One fire/onset draw per rack; a struck rack dies as one."""
    for _name, members in racks:
        fire = float(rng.random())
        onset_s = float(rng.uniform(earliest, latest))
        if fire >= clause.probability:
            continue
        start, end = _window(
            clause, onset_s, n_intervals=n_intervals, interval_s=interval_s
        )
        if start >= end:
            continue
        detect = _detect(clause, start, end, interval_s)
        for node in members:
            events.append(
                FaultEvent(
                    node=node,
                    kind=clause.kind,
                    start_interval=start,
                    end_interval=end,
                    multiplier=0.0,
                    detect_interval=detect,
                )
            )


def _lower_cascading(
    clause, racks, rng, events, *, earliest, latest, n_nodes, n_intervals, interval_s
) -> None:
    """Seed stragglers plus rack-neighbour cascades.

    Two draw phases, both fixed-count: (1) per node, fire/onset for the
    seed straggler; (2) per node, per rack neighbour in index order,
    cascade-fire/lag-jitter -- consumed even when the seed never fired,
    so one node's outcome cannot shift another's draws.
    """
    seeds: list[tuple[bool, float]] = []
    for _node in range(n_nodes):
        fire = float(rng.random())
        onset_s = float(rng.uniform(earliest, latest))
        seeds.append((fire < clause.probability, onset_s))
    rack_of: dict[int, tuple[int, ...]] = {}
    for _name, members in racks:
        for node in members:
            rack_of[node] = members
    multiplier = clause.capacity_multiplier()
    for node in range(n_nodes):
        fired, onset_s = seeds[node]
        if fired:
            start, end = _window(
                clause,
                onset_s,
                n_intervals=n_intervals,
                interval_s=interval_s,
            )
            if start < end:
                events.append(
                    FaultEvent(
                        node=node,
                        kind=clause.kind,
                        start_interval=start,
                        end_interval=end,
                        multiplier=multiplier,
                        detect_interval=_detect(clause, start, end, interval_s),
                    )
                )
        for neighbor in rack_of.get(node, ()):
            if neighbor == node:
                continue
            cascade = float(rng.random())
            jitter = float(rng.uniform(0.5, 1.5))
            if not fired or cascade >= clause.spread:
                continue
            lag_onset = onset_s + clause.lag_s * jitter
            start, end = _window(
                clause,
                lag_onset,
                n_intervals=n_intervals,
                interval_s=interval_s,
            )
            if start >= end:
                continue
            events.append(
                FaultEvent(
                    node=neighbor,
                    kind=clause.kind,
                    start_interval=start,
                    end_interval=end,
                    multiplier=multiplier,
                    detect_interval=_detect(clause, start, end, interval_s),
                )
            )


def _lower_brownout(
    clause, racks, rng, events, *, earliest, latest, n_intervals, interval_s
) -> None:
    """One fleet-level draw; racks brown out in block order, staggered."""
    fire = float(rng.random())
    onset_s = float(rng.uniform(earliest, latest))
    if fire >= clause.probability:
        return
    for rank, (_name, members) in enumerate(racks):
        start, end = _window(
            clause,
            onset_s + rank * clause.stagger_s,
            n_intervals=n_intervals,
            interval_s=interval_s,
        )
        if start >= end:
            continue
        detect = _detect(clause, start, end, interval_s)
        for node in members:
            events.append(
                FaultEvent(
                    node=node,
                    kind=clause.kind,
                    start_interval=start,
                    end_interval=end,
                    multiplier=clause.factor,
                    detect_interval=detect,
                )
            )


def capacity_multipliers(
    events: tuple[FaultEvent, ...], *, n_nodes: int, n_intervals: int
) -> np.ndarray:
    """The ``(n_intervals, n_nodes)`` effective-capacity multiplier
    matrix the events compose to (overlapping events multiply; any
    death wins)."""
    matrix = np.ones((n_intervals, n_nodes))
    for event in events:
        matrix[event.start_interval : event.end_interval, event.node] *= (
            event.multiplier
        )
    return matrix


__all__ = [
    "CORRELATED_KINDS",
    "FAULT_KINDS",
    "FaultClause",
    "FaultEvent",
    "capacity_multipliers",
    "freeze_clauses",
    "lower_faults",
]
