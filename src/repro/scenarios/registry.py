"""Named scenario families and the paper's standard run lengths.

The registry maps a family name to a spec factory, so the experiment
modules (and the CLI) build their runs by *declaring* a family plus a
few parameters instead of hand-wiring ``run_experiment`` calls::

    spec = DEFAULT_REGISTRY.build(
        "diurnal-policy", workload="memcached", manager="hipster-in",
        quick=True,
    )

Families registered here cover every shape the paper's evaluation uses:
a policy over the diurnal day (Figures 5-10, Table 3), a pinned
configuration at steady load (Figures 2/3), the 100%-load calibration
point (Table 1), the warm-up-then-ramp trace (Figure 8), and Web-Search
collocated with a SPEC program (Figure 11).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.errors import UnknownNameError, UnknownParamError
from repro.scenarios.spec import DEFAULT_SEED, ScenarioSpec, TraceSpec

#: Paper run lengths: Figures 5/6 span ~1400 s for Memcached and ~1000 s
#: for Web-Search; quick runs compress the day so CI stays fast.
FULL_DURATION_S = {"memcached": 1400.0, "websearch": 1000.0}
QUICK_DURATION_S = {"memcached": 420.0, "websearch": 360.0}

#: Learning-phase length (Section 4.1): 500 s, 200 s in Figure 9.
FULL_LEARNING_S = 500.0
QUICK_LEARNING_S = 150.0

#: Default noise seed of the diurnal day (kept distinct from run seeds).
DIURNAL_TRACE_SEED = 11

#: Managers that take a learning-phase duration.
_LEARNING_MANAGERS = frozenset({"hipster-in", "hipster-co"})


def learning_seconds(*, quick: bool = False) -> float:
    """Learning-phase duration matching the run length."""
    return QUICK_LEARNING_S if quick else FULL_LEARNING_S


def diurnal_duration_s(workload: str, *, quick: bool = False) -> float:
    """The workload's diurnal-day length at full or compressed setting."""
    table = QUICK_DURATION_S if quick else FULL_DURATION_S
    return table[workload]


class ScenarioRegistry:
    """Name -> spec-factory mapping with decorator registration.

    Factories usually build a single-node
    :class:`~repro.scenarios.spec.ScenarioSpec`; the fleet families in
    :mod:`repro.fleet.families` register factories that build a
    :class:`~repro.fleet.spec.FleetSpec` under the same namespace, so a
    registry entry is any callable returning a frozen run description.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., Any]] = {}

    def register(self, name: str, factory: Callable[..., Any] | None = None):
        """Register a factory under ``name`` (usable as a decorator)."""

        def _add(fn: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._factories:
                raise ValueError(f"scenario family {name!r} already registered")
            self._factories[name] = fn
            return fn

        return _add(factory) if factory is not None else _add

    def build(self, name: str, **kwargs: Any) -> Any:
        """Build one spec from the named family.

        Unknown family names raise :class:`~repro.errors.UnknownNameError`
        and unknown keyword arguments
        :class:`~repro.errors.UnknownParamError` -- both list the valid
        choices and append a "did you mean" suggestion, and both remain
        catchable as the bare ``KeyError``/``TypeError`` the pre-facade
        registry raised.
        """
        try:
            factory = self._factories[name]
        except KeyError:
            raise UnknownNameError(
                "scenario family", name, self.names()
            ) from None
        accepted = self.family_params(name)
        if accepted is not None:
            unknown = sorted(set(kwargs) - set(accepted))
            if unknown:
                raise UnknownParamError(
                    f"scenario family {name!r}", unknown, accepted
                )
        return factory(**kwargs)

    def family_params(self, name: str) -> tuple[str, ...] | None:
        """The keyword parameters the named family accepts, or ``None``
        when its factory takes ``**kwargs`` (nothing to validate against).
        """
        try:
            factory = self._factories[name]
        except KeyError:
            raise UnknownNameError(
                "scenario family", name, self.names()
            ) from None
        params = inspect.signature(factory).parameters
        if any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        ):
            return None
        return tuple(
            n
            for n, p in params.items()
            if p.kind
            in (
                inspect.Parameter.KEYWORD_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        )

    def names(self) -> tuple[str, ...]:
        """Registered family names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


DEFAULT_REGISTRY = ScenarioRegistry()


def manager_params_with_learning(
    manager: str,
    manager_params: dict[str, Any] | None,
    *,
    quick: bool,
    learning_s: float | None,
) -> dict[str, Any]:
    """Fill in the quick-appropriate learning phase for Hipster variants."""
    params = dict(manager_params or {})
    if manager in _LEARNING_MANAGERS and "learning_duration_s" not in params:
        params["learning_duration_s"] = (
            learning_s if learning_s is not None else learning_seconds(quick=quick)
        )
    return params


@DEFAULT_REGISTRY.register("diurnal-policy")
def diurnal_policy(
    *,
    workload: str,
    manager: str,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    trace_seed: int = DIURNAL_TRACE_SEED,
    manager_params: dict[str, Any] | None = None,
    learning_s: float | None = None,
    batch_jobs: str | None = None,
) -> ScenarioSpec:
    """One policy over the workload's diurnal day (Figs 5-10, Table 3)."""
    return ScenarioSpec(
        workload=workload,
        trace=TraceSpec.diurnal(
            diurnal_duration_s(workload, quick=quick), seed=trace_seed
        ),
        manager=manager,
        manager_params=manager_params_with_learning(
            manager, manager_params, quick=quick, learning_s=learning_s
        ),
        batch_jobs=batch_jobs,
        seed=seed,
        label=f"{workload}/{manager}/diurnal",
    )


@DEFAULT_REGISTRY.register("steady-config")
def steady_config(
    *,
    workload: str,
    config_label: str,
    load: float,
    duration_s: float,
    seed: int = DEFAULT_SEED,
    cpuidle: bool = True,
) -> ScenarioSpec:
    """A pinned configuration at steady load, characterization kernel
    setting (CPUidle on, unused cores power-gate) -- Figures 2 and 3."""
    return ScenarioSpec(
        workload=workload,
        trace=TraceSpec.constant(load, duration_s),
        manager="static-config",
        manager_params={"label": config_label},
        cpuidle=cpuidle,
        seed=seed,
        label=f"{workload}@{load:.2f}/{config_label}",
    )


@DEFAULT_REGISTRY.register("edge-load")
def edge_load(
    *,
    workload: str,
    duration_s: float = 240.0,
    seed: int = DEFAULT_SEED,
    level: float = 1.0,
    demand_mean_ms: float | None = None,
) -> ScenarioSpec:
    """Static-big at (by default) 100% load: the Table 1 calibration
    operating point.  ``demand_mean_ms`` overrides the workload's frozen
    service demand during calibration bisection."""
    return ScenarioSpec(
        workload=workload,
        trace=TraceSpec.constant(level, duration_s),
        manager="static-big",
        workload_params=(
            {} if demand_mean_ms is None else {"demand_mean_ms": demand_mean_ms}
        ),
        seed=seed,
        label=f"{workload}@edge",
    )


@DEFAULT_REGISTRY.register("load-ramp")
def load_ramp(
    *,
    manager: str,
    workload: str = "memcached",
    warmup_s: float = 700.0,
    start_level: float = 0.50,
    end_level: float = 1.00,
    ramp_s: float = 175.0,
    hold_s: float = 25.0,
    trace_seed: int = 7,
    seed: int = DEFAULT_SEED,
    manager_params: dict[str, Any] | None = None,
    learning_s: float | None = None,
) -> ScenarioSpec:
    """Diurnal warm-up followed by the Figure 8 load ramp."""
    return ScenarioSpec(
        workload=workload,
        trace=TraceSpec.concat(
            TraceSpec.diurnal(warmup_s, seed=trace_seed),
            TraceSpec.ramp(start_level, end_level, ramp_s, hold_s=hold_s),
        ),
        manager=manager,
        manager_params=manager_params_with_learning(
            manager, manager_params, quick=False, learning_s=learning_s
        ),
        seed=seed,
        label=f"{workload}/{manager}/ramp",
    )


@DEFAULT_REGISTRY.register("collocation")
def collocation(
    *,
    manager: str,
    program: str,
    workload: str = "websearch",
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    manager_params: dict[str, Any] | None = None,
) -> ScenarioSpec:
    """Web-Search sharing the machine with one SPEC CPU2006 program per
    leftover core (Figure 11)."""
    spec = diurnal_policy(
        workload=workload,
        manager=manager,
        quick=quick,
        seed=seed,
        manager_params=manager_params,
        batch_jobs=f"spec:{program}",
    )
    return spec.with_(label=f"{workload}+{program}/{manager}")


#: The Table 3 policy line-up, in the paper's display order.
STANDARD_POLICIES = (
    "static-big",
    "static-small",
    "hipster-heuristic",
    "octopus-man",
    "hipster-in",
)


def standard_policy_specs(
    workload: str, *, quick: bool = False, seed: int = DEFAULT_SEED
) -> dict[str, ScenarioSpec]:
    """Diurnal-day specs for the Table 3 line-up, keyed by policy name."""
    return {
        manager: DEFAULT_REGISTRY.build(
            "diurnal-policy",
            workload=workload,
            manager=manager,
            quick=quick,
            seed=seed,
        )
        for manager in STANDARD_POLICIES
    }
