"""String-keyed factories that turn spec fields into live objects.

Scenario specs must cross process boundaries, so they reference
workloads, platforms, traces, managers and batch job sets by *name*;
these registries are the single place those names resolve.  Every
factory builds a fresh instance -- managers in particular are stateful
and must never be shared between runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.heuristic import HipsterHeuristicPolicy
from repro.core.hipster import HipsterParams, hipster_co, hipster_in
from repro.hardware.juno import juno_r1
from repro.hardware.soc import KernelConfig, Platform
from repro.hardware.topology import config_by_label, enumerate_configurations
from repro.loadgen.diurnal import DiurnalTrace
from repro.loadgen.mmpp import MMPPTrace
from repro.loadgen.traces import (
    ConcatTrace,
    ConstantTrace,
    LoadTrace,
    RampTrace,
    ReplayTrace,
    SampledTrace,
    SpikeTrace,
    StepTrace,
)
from repro.policies.base import TaskManager
from repro.policies.octopusman import OctopusMan
from repro.policies.static import StaticPolicy, static_all_big, static_all_small
from repro.sim.engine import EngineConfig
from repro.workloads.base import LatencyCriticalWorkload
from repro.workloads.batch import BatchJobSet
from repro.workloads.memcached import memcached
from repro.workloads.spec import spec_job_set, spec_mix
from repro.workloads.websearch import websearch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.spec import Params, ScenarioSpec, TraceSpec

WORKLOAD_FACTORIES: dict[str, Callable[[], LatencyCriticalWorkload]] = {
    "memcached": memcached,
    "websearch": websearch,
}

PLATFORM_FACTORIES: dict[str, Callable[[], Platform]] = {
    "juno_r1": juno_r1,
}

TRACE_BUILDERS: dict[str, Callable[..., LoadTrace]] = {
    "diurnal": DiurnalTrace,
    "constant": ConstantTrace,
    "ramp": RampTrace,
    "sampled": SampledTrace,
    "step": StepTrace,
    "spike": SpikeTrace,
    "mmpp": MMPPTrace,
    "replay": ReplayTrace,
}


def _static_config(
    platform: Platform, *, label: str, collocate_batch: bool = False
) -> StaticPolicy:
    """Pin one configuration by its paper-style label (Figure 2/3 sweeps)."""
    space = enumerate_configurations(platform)
    return StaticPolicy(config_by_label(space, label), collocate_batch=collocate_batch)


def _hipster(variant: Callable[[HipsterParams | None], TaskManager], **params):
    return variant(HipsterParams(**params) if params else None)


MANAGER_FACTORIES: dict[str, Callable[..., TaskManager]] = {
    "static-big": lambda platform, **kw: static_all_big(platform, **kw),
    "static-small": lambda platform, **kw: static_all_small(platform, **kw),
    "static-config": _static_config,
    "octopus-man": lambda platform, **kw: OctopusMan(**kw),
    "hipster-heuristic": lambda platform, **kw: HipsterHeuristicPolicy(**kw),
    "hipster-in": lambda platform, **kw: _hipster(hipster_in, **kw),
    "hipster-co": lambda platform, **kw: _hipster(hipster_co, **kw),
}

BATCH_JOB_FACTORIES: dict[str, Callable[[str], BatchJobSet]] = {
    # "spec:<program>" -> one instance of that SPEC CPU2006 program per
    # free core; "spec-mix" -> the mixed job set.
    "spec": lambda arg: spec_job_set(arg),
    "spec-mix": lambda arg: spec_mix(),
}


def validate_keys(spec: "ScenarioSpec") -> None:
    """Fail fast on unknown registry keys (at spec construction time)."""
    _lookup(WORKLOAD_FACTORIES, spec.workload, "workload")
    _lookup(PLATFORM_FACTORIES, spec.platform, "platform")
    _lookup(MANAGER_FACTORIES, spec.manager, "manager")
    if spec.batch_jobs is not None:
        kind, _ = _split_batch_key(spec.batch_jobs)
        _lookup(BATCH_JOB_FACTORIES, kind, "batch job set")


def _lookup(registry: dict[str, Any], key: str, what: str) -> Any:
    try:
        return registry[key]
    except KeyError:
        from repro.errors import UnknownNameError

        raise UnknownNameError(what, key, sorted(registry)) from None


def _split_batch_key(key: str) -> tuple[str, str]:
    kind, _, arg = key.partition(":")
    return kind, arg


def build_workload(name: str, params: "Params" = ()) -> LatencyCriticalWorkload:
    """A fresh workload, with optional field overrides applied."""
    workload = _lookup(WORKLOAD_FACTORIES, name, "workload")()
    if params:
        workload = workload.with_overrides(**dict(params))
    return workload


def build_platform(name: str) -> Platform:
    """A fresh platform instance."""
    return _lookup(PLATFORM_FACTORIES, name, "platform")()


def build_manager(
    name: str, platform: Platform, params: "Params" = ()
) -> TaskManager:
    """A fresh (stateful) manager instance for one run."""
    return _lookup(MANAGER_FACTORIES, name, "manager")(platform, **dict(params))


def build_trace(trace: "TraceSpec") -> LoadTrace:
    """The concrete load trace a trace spec describes."""
    if trace.kind == "concat":
        return ConcatTrace([build_trace(part) for part in trace.parts])
    builder = _lookup(TRACE_BUILDERS, trace.kind, "trace kind")
    return builder(**dict(trace.params))


def build_batch_jobs(key: str | None) -> BatchJobSet | None:
    """The batch job set a collocation scenario names, if any."""
    if key is None:
        return None
    kind, arg = _split_batch_key(key)
    return _lookup(BATCH_JOB_FACTORIES, kind, "batch job set")(arg)


def build_kernel(cpuidle: bool | None) -> KernelConfig | None:
    """Kernel config for the spec (``None`` keeps the engine default)."""
    if cpuidle is None:
        return None
    return KernelConfig(cpuidle_enabled=cpuidle)


def build_engine_config(params: "Params") -> EngineConfig | None:
    """Engine overrides as a config (``None`` keeps engine defaults)."""
    if not params:
        return None
    return EngineConfig(**dict(params))
