"""Frozen scenario descriptions and their expansion into runs.

Everything here is plain data: a :class:`ScenarioSpec` names its
workload, manager and platform by registry key (see
:mod:`repro.scenarios.factories`) and carries parameters as sorted
``(key, value)`` tuples, so specs are hashable, picklable, directly
comparable, and stable enough to fingerprint for the on-disk result
cache.  Workers rebuild the heavyweight objects -- managers, traces,
platforms -- from the factories, which preserves per-spec-seed
determinism: two runs of the same spec are the same pure function of
``(platform, workload, trace, manager, seed)`` no matter which process
executes them.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, fields, replace
from typing import Any, Iterable, Mapping

from repro.sim.queueing import KERNEL_VERSION
from repro.sim.records import ExperimentResult

DEFAULT_SEED = 2017

#: Bump to invalidate every cached result when scenario semantics or the
#: result storage format change in a way the queue-kernel version does
#: not capture.  2 = columnar ObservationTable payloads (see
#: ``repro.sim.records.STORAGE_VERSION``); 1 = tuple-of-dataclasses.
SCHEMA_VERSION = 2

#: Immutable parameter bag: sorted ``(key, value)`` pairs.
Params = tuple[tuple[str, Any], ...]

ParamsLike = Mapping[str, Any] | Iterable[tuple[str, Any]] | None


def freeze_params(params: ParamsLike) -> Params:
    """Normalize a mapping (or pair iterable) into sorted frozen pairs."""
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    frozen = tuple(sorted((str(k), _freeze_value(v)) for k, v in items))
    names = [k for k, _ in frozen]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate parameter names in {names}")
    return frozen


def _freeze_value(value: Any) -> Any:
    if isinstance(value, Mapping):
        return freeze_params(value)
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    raise TypeError(
        f"scenario parameters must be plain data, got {type(value).__name__}: "
        f"{value!r}"
    )


def thaw_params(params: Params) -> dict[str, Any]:
    """The mutable-dict view of frozen parameters (one level deep)."""
    return dict(params)


def cache_key_prefix() -> str:
    """The version-legible prefix of every scenario cache key.

    Keys are otherwise opaque hashes; the prefix lets the on-disk cache
    recognize records stranded by a ``SCHEMA_VERSION``/``KERNEL_VERSION``
    bump (they are never looked up again, but they *are* still the
    latest record for their old key) and compact them away.
    """
    return f"s{SCHEMA_VERSION}-{KERNEL_VERSION}-"


@dataclass(frozen=True)
class TraceSpec:
    """A load trace described declaratively.

    ``kind`` selects a builder from
    :data:`repro.scenarios.factories.TRACE_BUILDERS` (``"diurnal"``,
    ``"constant"``, ``"ramp"``, ``"sampled"``, ``"step"``, ``"spike"``,
    ``"mmpp"``, ``"replay"``) and ``params``
    are its keyword arguments; ``kind="concat"`` plays ``parts`` back to
    back instead.
    """

    kind: str
    params: Params = ()
    parts: tuple["TraceSpec", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", freeze_params(self.params))
        object.__setattr__(self, "parts", tuple(self.parts))
        if self.kind == "concat":
            if not self.parts:
                raise ValueError("a concat trace needs at least one part")
        elif self.parts:
            raise ValueError("only concat traces take parts")

    # -- convenience constructors for the shapes the paper uses ---------

    @classmethod
    def diurnal(cls, duration_s: float, *, seed: int = 11, **extra) -> "TraceSpec":
        """The compressed diurnal day (Figure 1's load pattern)."""
        return cls("diurnal", {"duration_s": duration_s, "seed": seed, **extra})

    @classmethod
    def constant(cls, level: float, duration_s: float) -> "TraceSpec":
        """A steady load level (calibration and the Figure 2/3 sweeps)."""
        return cls("constant", {"level": level, "duration_s": duration_s})

    @classmethod
    def ramp(
        cls,
        start_level: float,
        end_level: float,
        ramp_s: float,
        *,
        lead_s: float = 0.0,
        hold_s: float = 0.0,
    ) -> "TraceSpec":
        """A linear load ramp (Figure 8)."""
        return cls(
            "ramp",
            {
                "start_level": start_level,
                "end_level": end_level,
                "ramp_s": ramp_s,
                "lead_s": lead_s,
                "hold_s": hold_s,
            },
        )

    @classmethod
    def sampled(
        cls, levels: Iterable[float], *, interval_s: float = 1.0
    ) -> "TraceSpec":
        """Per-interval load levels, as a load balancer emits them."""
        return cls(
            "sampled",
            {"levels": tuple(float(v) for v in levels), "interval_s": interval_s},
        )

    @classmethod
    def concat(cls, *parts: "TraceSpec") -> "TraceSpec":
        """Several traces played back to back (warm-up then ramp)."""
        return cls("concat", (), tuple(parts))

    @classmethod
    def mmpp(
        cls,
        levels: Iterable[float],
        mean_dwell_s: Iterable[float],
        duration_s: float,
        *,
        seed: int = 0,
        start_state: int = 0,
    ) -> "TraceSpec":
        """Bursty Markov-modulated load (flash crowds, retry storms)."""
        return cls(
            "mmpp",
            {
                "levels": tuple(float(v) for v in levels),
                "mean_dwell_s": tuple(float(d) for d in mean_dwell_s),
                "duration_s": duration_s,
                "seed": seed,
                "start_state": start_state,
            },
        )

    @classmethod
    def replay(
        cls,
        times_s: Iterable[float],
        levels: Iterable[float],
        *,
        interp: str = "previous",
        duration_s: float | None = None,
    ) -> "TraceSpec":
        """Replay of a recorded ``(time, level)`` series."""
        params = {
            "times_s": tuple(float(t) for t in times_s),
            "levels": tuple(float(v) for v in levels),
            "interp": interp,
        }
        if duration_s is not None:
            params["duration_s"] = duration_s
        return cls("replay", params)

    def build(self):
        """The concrete :class:`~repro.loadgen.traces.LoadTrace`."""
        from repro.scenarios import factories

        return factories.build_trace(self)

    # -- cost hints for the batch scheduler -----------------------------

    def duration_s(self) -> float:
        """Trace length in seconds, straight from the parameters where
        possible (no trace construction for the common kinds)."""
        params = dict(self.params)
        try:
            if self.kind == "concat":
                return sum(part.duration_s() for part in self.parts)
            if self.kind in ("diurnal", "constant", "spike", "mmpp"):
                return float(params["duration_s"])
            if self.kind == "replay":
                if "duration_s" in params:
                    return float(params["duration_s"])
                last = float(params["times_s"][-1])
                if last > 0:  # else the builder applies its 1 s floor
                    return last
            if self.kind == "ramp":
                return (
                    float(params.get("lead_s", 0.0))
                    + float(params["ramp_s"])
                    + float(params.get("hold_s", 0.0))
                )
            if self.kind == "sampled":
                return len(params["levels"]) * float(params.get("interval_s", 1.0))
            if self.kind == "step":
                return sum(float(d) for d, _ in params["steps"])
        except KeyError:
            pass  # parameter left to the builder's default
        return float(self.build().duration_s)

    def mean_level(self) -> float:
        """Mean offered-load fraction over the trace -- a *scheduling
        hint* (arrivals scale execution cost), not a simulation input."""
        params = dict(self.params)
        try:
            if self.kind == "concat":
                total = self.duration_s()
                if total <= 0:
                    return 0.0
                return (
                    sum(p.mean_level() * p.duration_s() for p in self.parts)
                    / total
                )
            if self.kind == "constant":
                return float(params["level"])
            if self.kind == "sampled":
                levels = params["levels"]
                return float(sum(levels) / len(levels))
            if self.kind == "ramp":
                lead = float(params.get("lead_s", 0.0))
                hold = float(params.get("hold_s", 0.0))
                ramp = float(params["ramp_s"])
                start = float(params["start_level"])
                end = float(params["end_level"])
                area = start * lead + 0.5 * (start + end) * ramp + end * hold
                return area / (lead + ramp + hold)
            if self.kind == "step":
                steps = params["steps"]
                total = sum(float(d) for d, _ in steps)
                return sum(float(d) * float(level) for d, level in steps) / total
        except KeyError:
            pass  # parameter left to the builder's default
        # Diurnal, default-parameter and exotic kinds: sample the built
        # trace coarsely.
        trace = self.build()
        duration = trace.duration_s
        n = 32
        return float(
            sum(trace.load_at((i + 0.5) * duration / n) for i in range(n)) / n
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One simulator run, described entirely in plain data.

    Parameters
    ----------
    workload:
        Workload registry key (``"memcached"`` or ``"websearch"``).
    trace:
        The offered-load trace to play.
    manager:
        Manager-factory key in
        :data:`repro.scenarios.factories.MANAGER_FACTORIES` (e.g.
        ``"hipster-in"``, ``"static-config"``).
    manager_params / workload_params / engine:
        Keyword overrides for the manager factory, the workload's
        :meth:`~repro.workloads.base.LatencyCriticalWorkload.with_overrides`,
        and :class:`~repro.sim.engine.EngineConfig`.
    platform:
        Platform registry key (currently only ``"juno_r1"``).
    batch_jobs:
        Batch job set key (``"spec:<program>"`` or ``"spec-mix"``) for
        collocation scenarios; ``None`` runs the workload alone.
    cpuidle:
        ``None`` uses the engine default (CPUidle disabled, dodging the
        Juno perf bug); ``True``/``False`` forces a kernel config.
    seed:
        The run seed; the run is a pure function of the spec.
    n_intervals:
        Optional cap on simulated intervals (defaults to the trace
        length).
    label:
        Free-form display name; excluded from the fingerprint.
    """

    workload: str
    trace: TraceSpec
    manager: str
    manager_params: Params = ()
    workload_params: Params = ()
    platform: str = "juno_r1"
    batch_jobs: str | None = None
    cpuidle: bool | None = None
    engine: Params = ()
    seed: int = DEFAULT_SEED
    n_intervals: int | None = None
    label: str = ""

    def __post_init__(self) -> None:
        for attr in ("manager_params", "workload_params", "engine"):
            object.__setattr__(self, attr, freeze_params(getattr(self, attr)))
        from repro.scenarios import factories

        factories.validate_keys(self)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced (params re-frozen)."""
        return replace(self, **changes)

    def sweep(self, **grid: Iterable[Any]) -> tuple["ScenarioSpec", ...]:
        """Expand a field grid into the cartesian product of specs.

        Each keyword names a spec field and supplies an iterable of
        values; the product is taken in the keyword order given, last
        field fastest::

            spec.sweep(seed=range(3), manager=["octopus-man", "hipster-in"])

        yields six specs.  Figure modules use this to *declare* their
        grids instead of imperatively looping over runs.
        """
        if not grid:
            return (self,)
        names = list(grid)
        unknown = set(names) - {f.name for f in fields(self)}
        if unknown:
            raise ValueError(f"unknown spec fields in sweep: {sorted(unknown)}")
        combos = itertools.product(*(list(grid[name]) for name in names))
        return tuple(self.with_(**dict(zip(names, combo))) for combo in combos)

    def fingerprint(self) -> str:
        """Stable cache key: every run-affecting field plus the kernel
        and schema versions (so code changes invalidate stale results).

        The key is prefixed with :func:`cache_key_prefix`, so the cache
        can *see* which format generation a stored record belongs to --
        that is what lets manifest compaction reclaim records stranded
        by a version bump (the versions also fold into the hash, so the
        prefix adds legibility, not uniqueness)."""
        payload = (
            SCHEMA_VERSION,
            KERNEL_VERSION,
            self.workload,
            self.workload_params,
            self.trace,
            self.manager,
            self.manager_params,
            self.platform,
            self.batch_jobs,
            self.cpuidle,
            self.engine,
            self.seed,
            self.n_intervals,
        )
        return (
            cache_key_prefix()
            + hashlib.sha256(repr(payload).encode()).hexdigest()[:24]
        )

    def describe(self) -> str:
        """Short human-readable identity for logs and progress output."""
        return self.label or (
            f"{self.workload}/{self.manager}/{self.trace.kind}/seed={self.seed}"
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self) -> "ScenarioOutcome":
        """Execute the scenario in this process.

        Builds every component fresh from the factories (so repeated runs
        and cross-process runs are identical) and returns the result plus
        the manager statistics that only live on the manager instance.
        """
        from repro.scenarios import factories
        from repro.sim.engine import run_experiment

        platform = factories.build_platform(self.platform)
        workload = factories.build_workload(self.workload, self.workload_params)
        manager = factories.build_manager(self.manager, platform, self.manager_params)
        result = run_experiment(
            platform,
            workload,
            self.trace.build(),
            manager,
            batch_jobs=factories.build_batch_jobs(self.batch_jobs),
            kernel=factories.build_kernel(self.cpuidle),
            engine_config=factories.build_engine_config(self.engine),
            seed=self.seed,
            n_intervals=self.n_intervals,
        )
        return ScenarioOutcome(
            spec=self,
            result=result,
            manager_stats=freeze_params(manager.scenario_stats()),
        )


@dataclass(frozen=True)
class ScenarioOutcome:
    """What a scenario run produced: the result and manager statistics.

    Managers are rebuilt inside workers, so any state a figure needs from
    the manager instance (e.g. HipsterIn's ``phase_switches``) must be
    extracted before the worker exits; it travels here as plain pairs.
    """

    spec: ScenarioSpec
    result: ExperimentResult
    manager_stats: Params = ()

    def stat(self, name: str, default: Any = None) -> Any:
        """A manager statistic by name (e.g. ``"phase_switches"``)."""
        return thaw_params(self.manager_stats).get(name, default)
