"""Declarative scenario layer: *what* to run, separated from *how*.

A :class:`~repro.scenarios.spec.ScenarioSpec` is a frozen, picklable
description of one simulator run -- workload, trace, manager factory,
platform, engine overrides and seed -- expressed entirely in plain data
(strings, numbers, tuples) so it can cross process boundaries and be
fingerprinted for result caching.  Grids of scenarios expand with
:meth:`~repro.scenarios.spec.ScenarioSpec.sweep`, and the experiment
modules obtain their standard shapes from the
:class:`~repro.scenarios.registry.ScenarioRegistry`.

Execution lives one layer down in :mod:`repro.sim.batch`: a
:class:`~repro.sim.batch.BatchRunner` fans a list of specs out over
worker processes and caches results on disk keyed by spec fingerprint.
The figure/table modules in :mod:`repro.experiments` only ever *declare*
specs and post-process the returned results.
"""

from repro.scenarios.registry import (
    DEFAULT_REGISTRY,
    ScenarioRegistry,
    learning_seconds,
)
from repro.scenarios.spec import (
    DEFAULT_SEED,
    ScenarioOutcome,
    ScenarioSpec,
    TraceSpec,
)

__all__ = [
    "DEFAULT_REGISTRY",
    "DEFAULT_SEED",
    "ScenarioOutcome",
    "ScenarioRegistry",
    "ScenarioSpec",
    "TraceSpec",
    "learning_seconds",
]
