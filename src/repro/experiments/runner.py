"""Shared plumbing for the per-figure experiment modules.

Every experiment accepts a ``quick`` flag: the full setting mirrors the
paper's run lengths (1400 s Memcached / 1000 s Web-Search diurnal days),
while quick runs compress the day so the benchmark suite stays fast.  All
experiments are deterministic for a given seed.

The canonical run lengths and the scenario vocabulary now live in
:mod:`repro.scenarios`; this module re-exports them and keeps the small
object-level helpers (fresh workloads, traces and managers) used by
tests and by callers that drive :func:`repro.sim.engine.run_experiment`
directly.  Experiment modules themselves declare
:class:`~repro.scenarios.spec.ScenarioSpec`s and execute them through a
:class:`~repro.sim.batch.BatchRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.heuristic import HipsterHeuristicPolicy
from repro.core.hipster import HipsterParams, hipster_in
from repro.hardware.soc import Platform
from repro.loadgen.diurnal import DiurnalTrace
from repro.policies.base import TaskManager
from repro.policies.octopusman import OctopusMan
from repro.policies.static import static_all_big, static_all_small
from repro.scenarios.registry import (
    DIURNAL_TRACE_SEED,
    FULL_DURATION_S,
    FULL_LEARNING_S,
    QUICK_DURATION_S,
    QUICK_LEARNING_S,
    STANDARD_POLICIES,
    learning_seconds,
)
from repro.scenarios.spec import DEFAULT_SEED
from repro.workloads.base import LatencyCriticalWorkload
from repro.workloads.memcached import memcached
from repro.workloads.websearch import websearch

__all__ = [
    "DEFAULT_SEED",
    "FULL_DURATION_S",
    "FULL_LEARNING_S",
    "PolicySet",
    "QUICK_DURATION_S",
    "QUICK_LEARNING_S",
    "diurnal_for",
    "hipster_in_for",
    "learning_seconds",
    "workload_by_name",
]


def workload_by_name(name: str) -> LatencyCriticalWorkload:
    """Construct one of the paper's two workloads by name."""
    factories = {"memcached": memcached, "websearch": websearch}
    try:
        return factories[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(factories)}"
        ) from None


def diurnal_for(
    workload: LatencyCriticalWorkload,
    *,
    quick: bool = False,
    seed: int = DIURNAL_TRACE_SEED,
) -> DiurnalTrace:
    """The workload's diurnal day at full or compressed length."""
    table = QUICK_DURATION_S if quick else FULL_DURATION_S
    return DiurnalTrace(duration_s=table[workload.name], seed=seed)


def hipster_in_for(
    *, quick: bool = False, learning_s: float | None = None, **overrides
) -> TaskManager:
    """A HipsterIn manager with run-length-appropriate learning phase."""
    params = HipsterParams(
        learning_duration_s=(
            learning_s if learning_s is not None else learning_seconds(quick=quick)
        ),
        **overrides,
    )
    return hipster_in(params)


@dataclass(frozen=True)
class PolicySet:
    """The Table 3 line-up for one run (see also
    :func:`repro.scenarios.registry.standard_policy_specs` for the
    spec-level equivalent)."""

    quick: bool = False

    def build(self, platform: Platform) -> dict[str, TaskManager]:
        """Fresh manager instances, keyed by the paper's policy names."""
        managers = {
            "static-big": static_all_big(platform),
            "static-small": static_all_small(platform),
            "hipster-heuristic": HipsterHeuristicPolicy(),
            "octopus-man": OctopusMan(),
            "hipster-in": hipster_in_for(quick=self.quick),
        }
        assert tuple(managers) == STANDARD_POLICIES
        return managers
