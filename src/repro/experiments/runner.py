"""Shared plumbing for the per-figure experiment modules.

Every experiment accepts a ``quick`` flag: the full setting mirrors the
paper's run lengths (1400 s Memcached / 1000 s Web-Search diurnal days),
while quick runs compress the day so the benchmark suite stays fast.  All
experiments are deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.heuristic import HipsterHeuristicPolicy
from repro.core.hipster import HipsterParams, hipster_in
from repro.hardware.soc import Platform
from repro.loadgen.diurnal import DiurnalTrace
from repro.policies.base import TaskManager
from repro.policies.octopusman import OctopusMan
from repro.policies.static import static_all_big, static_all_small
from repro.workloads.base import LatencyCriticalWorkload
from repro.workloads.memcached import memcached
from repro.workloads.websearch import websearch

#: Paper run lengths: Figures 5/6 span ~1400 s for Memcached and ~1000 s
#: for Web-Search.
FULL_DURATION_S = {"memcached": 1400.0, "websearch": 1000.0}
QUICK_DURATION_S = {"memcached": 420.0, "websearch": 360.0}

#: Learning-phase length (Section 4.1): 500 s, 200 s in Figure 9.
FULL_LEARNING_S = 500.0
QUICK_LEARNING_S = 150.0

DEFAULT_SEED = 2017


def workload_by_name(name: str) -> LatencyCriticalWorkload:
    """Construct one of the paper's two workloads by name."""
    factories = {"memcached": memcached, "websearch": websearch}
    try:
        return factories[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(factories)}"
        ) from None


def diurnal_for(
    workload: LatencyCriticalWorkload, *, quick: bool = False, seed: int = 11
) -> DiurnalTrace:
    """The workload's diurnal day at full or compressed length."""
    table = QUICK_DURATION_S if quick else FULL_DURATION_S
    return DiurnalTrace(duration_s=table[workload.name], seed=seed)


def learning_seconds(*, quick: bool = False) -> float:
    """Learning-phase duration matching the run length."""
    return QUICK_LEARNING_S if quick else FULL_LEARNING_S


def hipster_in_for(
    *, quick: bool = False, learning_s: float | None = None, **overrides
) -> TaskManager:
    """A HipsterIn manager with run-length-appropriate learning phase."""
    params = HipsterParams(
        learning_duration_s=(
            learning_s if learning_s is not None else learning_seconds(quick=quick)
        ),
        **overrides,
    )
    return hipster_in(params)


@dataclass(frozen=True)
class PolicySet:
    """The Table 3 line-up for one run."""

    quick: bool = False

    def build(self, platform: Platform) -> dict[str, TaskManager]:
        """Fresh manager instances, keyed by the paper's policy names."""
        return {
            "static-big": static_all_big(platform),
            "static-small": static_all_small(platform),
            "hipster-heuristic": HipsterHeuristicPolicy(),
            "octopus-man": OctopusMan(),
            "hipster-in": hipster_in_for(quick=self.quick),
        }
