"""Figure 8: rapid adaptation to load changes (Memcached load ramp).

The paper ramps Memcached from 50% to 100% of maximum load over 175 s and
compares the per-interval QoS tardiness of HipsterIn (in its exploitation
phase) against Octopus-Man: HipsterIn jumps directly to configurations
that satisfy QoS, so its tardiness in the 75-90% load region is several
times lower (3.7x mean in the paper).

Both managers first see a warm-up period (diurnal day) so that HipsterIn
has finished learning before the measured ramp starts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import ascii_table, series_block
from repro.experiments.runner import DEFAULT_SEED
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner, get_runner
from repro.sim.records import ExperimentResult

#: The measured ramp (paper: 50% -> 100% over 175 s).
RAMP_START, RAMP_END, RAMP_SECONDS = 0.50, 1.00, 175.0

#: The load region the paper's 3.7x tardiness comparison covers.
COMPARISON_REGION = (0.75, 0.90)


@dataclass(frozen=True)
class Fig8Result:
    """Ramp-window traces for HipsterIn and Octopus-Man."""

    hipster: ExperimentResult
    octopus: ExperimentResult
    warmup_s: float

    def _ramp(self, result: ExperimentResult) -> ExperimentResult:
        return result.slice(self.warmup_s)

    def tardiness_ratio(self) -> float:
        """Mean Octopus-Man tardiness over HipsterIn's, 75-90% load region.

        Tardiness here is per-interval ``QoS_curr / QoS_target`` (above 1
        means a violation); the paper reports HipsterIn 3.7x lower.
        """
        lo, hi = COMPARISON_REGION
        ratios = []
        for result in (self.octopus, self.hipster):
            ramp = self._ramp(result)
            mask = (ramp.loads >= lo) & (ramp.loads <= hi)
            tard = ramp.tails_ms[mask] / ramp.target_latency_ms
            ratios.append(float(np.mean(tard)) if mask.any() else float("nan"))
        octo, hip = ratios
        return octo / hip if hip > 0 else float("inf")

    def render(self) -> str:
        hip, octo = self._ramp(self.hipster), self._ramp(self.octopus)
        return "\n".join(
            [
                "Figure 8 -- Memcached 50%->100% ramp: QoS tardiness",
                series_block("load (% of max)", hip.loads * 100, unit="%"),
                series_block(
                    "HipsterIn tardiness", hip.tails_ms / hip.target_latency_ms
                ),
                series_block(
                    "Octopus-Man tardiness", octo.tails_ms / octo.target_latency_ms
                ),
                ascii_table(
                    ["metric", "HipsterIn", "Octopus-Man"],
                    [
                        [
                            "ramp QoS guarantee",
                            f"{hip.qos_guarantee() * 100:.1f}%",
                            f"{octo.qos_guarantee() * 100:.1f}%",
                        ],
                        [
                            "mean tardiness (75-90% load)",
                            f"{np.mean((hip.tails_ms / hip.target_latency_ms)[(hip.loads >= 0.75) & (hip.loads <= 0.9)]):.2f}",
                            f"{np.mean((octo.tails_ms / octo.target_latency_ms)[(octo.loads >= 0.75) & (octo.loads <= 0.9)]):.2f}",
                        ],
                    ],
                ),
                f"Octopus-Man / HipsterIn tardiness ratio: {self.tardiness_ratio():.2f}x",
            ]
        )


def run(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> Fig8Result:
    """Regenerate Figure 8."""
    warmup_s = 360.0 if quick else 700.0
    specs = [
        DEFAULT_REGISTRY.build(
            "load-ramp",
            manager=manager,
            warmup_s=warmup_s,
            start_level=RAMP_START,
            end_level=RAMP_END,
            ramp_s=RAMP_SECONDS,
            seed=seed,
            learning_s=min(300.0, warmup_s - 60.0),
        )
        for manager in ("hipster-in", "octopus-man")
    ]
    hipster, octopus = get_runner(runner).results(specs)
    return Fig8Result(hipster=hipster, octopus=octopus, warmup_s=warmup_s)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
