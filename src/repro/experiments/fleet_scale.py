"""Fleet scaling: power and QoS versus node count and balancer policy.

The paper's evaluation stops at one board; this artifact asks the
cluster operator's question instead: as the same diurnal day is served
by ever larger fleets, how do total power, tail-of-tails QoS and
utilization skew move under each load-balancing policy?  Capacity-
oblivious round-robin lets board-to-board heterogeneity set the fleet
tail, least-loaded equalizes utilization, and power-aware consolidation
parks lightly-loaded nodes on small cores at the cost of deliberate
skew -- the cluster-level analogue of Hipster's own core-mapping story.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.reporting import ascii_table
from repro.experiments.runner import DEFAULT_SEED
from repro.fleet.aggregate import FleetAccumulator, FleetOutcome
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner, get_runner

#: Balancer line-up, in display order.
BALANCERS = ("round-robin", "least-loaded", "power-aware")

#: Node-count axis: quick keeps CI fast, full exercises a real fleet.
QUICK_NODE_COUNTS = (1, 2, 4, 8)
FULL_NODE_COUNTS = (1, 4, 16, 64)


@dataclass(frozen=True)
class FleetScaleRow:
    """One (balancer, node-count) cell of the scaling grid."""

    balancer: str
    n_nodes: int
    total_power_w: float
    power_per_node_w: float
    fleet_qos_pct: float
    tardiness: float
    utilization_skew: float
    total_energy_j: float


@dataclass(frozen=True)
class FleetScaleResult:
    """The scaling grid plus the fleet outcomes it was derived from."""

    rows: tuple[FleetScaleRow, ...]
    outcomes: tuple[FleetOutcome, ...]
    workload: str

    def row(self, balancer: str, n_nodes: int) -> FleetScaleRow:
        """The grid cell for one balancer at one fleet size."""
        for row in self.rows:
            if row.balancer == balancer and row.n_nodes == n_nodes:
                return row
        raise KeyError(f"no row for {balancer!r} x {n_nodes}")

    def balancers(self) -> tuple[str, ...]:
        """Balancer policies present, in display order."""
        seen = []
        for row in self.rows:
            if row.balancer not in seen:
                seen.append(row.balancer)
        return tuple(seen)

    def node_counts(self) -> tuple[int, ...]:
        """The node-count axis, ascending."""
        return tuple(sorted({row.n_nodes for row in self.rows}))

    def render(self) -> str:
        table_rows = [
            [
                row.balancer,
                str(row.n_nodes),
                f"{row.total_power_w:.2f}",
                f"{row.power_per_node_w:.2f}",
                f"{row.fleet_qos_pct:.1f}%",
                f"{row.tardiness:.2f}",
                f"{row.utilization_skew:.3f}",
            ]
            for row in self.rows
        ]
        return "\n".join(
            [
                f"Fleet scaling -- {self.workload} diurnal day, "
                "power + QoS vs node count and balancer",
                ascii_table(
                    [
                        "balancer",
                        "nodes",
                        "power (W)",
                        "W/node",
                        "fleet QoS",
                        "tail-of-tails tardiness",
                        "util skew",
                    ],
                    table_rows,
                ),
            ]
        )


def run(
    workload: str = "memcached",
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
    node_counts: Sequence[int] | None = None,
    balancers: Sequence[str] = BALANCERS,
) -> FleetScaleResult:
    """Regenerate the fleet-scaling artifact."""
    if node_counts is None:
        node_counts = QUICK_NODE_COUNTS if quick else FULL_NODE_COUNTS
    fleet_specs = [
        DEFAULT_REGISTRY.build(
            "fleet-diurnal",
            workload=workload,
            n_nodes=n_nodes,
            balancer=balancer,
            quick=quick,
            seed=seed,
        )
        for balancer in balancers
        for n_nodes in node_counts
    ]

    # One flat batch over every node of every fleet: the runner dedupes
    # shared node specs and fans the whole grid out across its pool.
    # Streamed straight into per-fleet accumulators -- node outcomes are
    # reduced on arrival, never collected into a grid-wide list.
    shared = get_runner(runner)
    all_nodes = [spec for fleet in fleet_specs for spec in fleet.node_specs()]
    accumulators = [FleetAccumulator(fleet) for fleet in fleet_specs]
    offsets = []
    start = 0
    for fleet in fleet_specs:
        offsets.append(start)
        start += fleet.n_nodes
    for flat_index, outcome in shared.iter_run(all_nodes):
        fleet_index = bisect_right(offsets, flat_index) - 1
        accumulators[fleet_index].add(flat_index - offsets[fleet_index], outcome)
    outcomes = [accumulator.finish() for accumulator in accumulators]

    rows = tuple(
        FleetScaleRow(
            balancer=outcome.spec.balancer,
            n_nodes=outcome.n_nodes,
            total_power_w=outcome.total_mean_power_w(),
            power_per_node_w=outcome.total_mean_power_w() / outcome.n_nodes,
            fleet_qos_pct=outcome.fleet_qos_guarantee() * 100.0,
            tardiness=outcome.fleet_qos_tardiness(),
            utilization_skew=outcome.utilization_skew(),
            total_energy_j=outcome.total_energy_j(),
        )
        for outcome in outcomes
    )
    return FleetScaleResult(rows=rows, outcomes=tuple(outcomes), workload=workload)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
