"""Figure 11: HipsterCo collocating Web-Search with SPEC CPU2006 programs.

For each of the twelve SPEC programs, Web-Search shares the machine with
one batch-program instance per leftover core, under three managers:

* the static mapping (Web-Search on the two big cores, batch on the four
  small cores) -- the normalization baseline;
* Octopus-Man in collocation mode;
* HipsterCo.

Reported per program: QoS guarantee, aggregate batch IPS and energy, the
last two normalized to static.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import ascii_table
from repro.experiments.runner import DEFAULT_SEED
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner, get_runner
from repro.workloads.spec import SPEC_CPU2006


@dataclass(frozen=True)
class CollocationRow:
    """One SPEC program under one manager, normalized to static."""

    program: str
    manager: str
    qos_guarantee_pct: float
    ips_normalized: float
    energy_normalized: float


@dataclass(frozen=True)
class Fig11Result:
    """All programs x managers, plus the mean row the paper reports."""

    rows: tuple[CollocationRow, ...]

    def rows_for(self, manager: str) -> tuple[CollocationRow, ...]:
        return tuple(r for r in self.rows if r.manager == manager)

    def mean_ips(self, manager: str) -> float:
        return float(np.mean([r.ips_normalized for r in self.rows_for(manager)]))

    def mean_energy(self, manager: str) -> float:
        return float(np.mean([r.energy_normalized for r in self.rows_for(manager)]))

    def mean_qos(self, manager: str) -> float:
        return float(np.mean([r.qos_guarantee_pct for r in self.rows_for(manager)]))

    def render(self) -> str:
        body = [
            [r.program, r.manager, f"{r.qos_guarantee_pct:.1f}%",
             f"{r.ips_normalized:.2f}", f"{r.energy_normalized:.2f}"]
            for r in self.rows
        ]
        for manager in ("octopus-man", "hipster-co"):
            body.append(
                [
                    "MEAN",
                    manager,
                    f"{self.mean_qos(manager):.1f}%",
                    f"{self.mean_ips(manager):.2f}",
                    f"{self.mean_energy(manager):.2f}",
                ]
            )
        return ascii_table(
            ["program", "manager", "QoS", "IPS (norm)", "energy (norm)"],
            body,
            title="Figure 11 -- Web-Search collocated with SPEC CPU2006",
        )


#: Managers compared against the static baseline, with the spec-level
#: collocation parameters each needs.
_MANAGER_PARAMS = {
    "octopus-man": {"collocate_batch": True},
    "hipster-co": None,  # the Co variant collocates by design
}


def run(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    programs: tuple[str, ...] | None = None,
    runner: BatchRunner | None = None,
) -> Fig11Result:
    """Regenerate Figure 11 (optionally for a subset of programs).

    The (program x manager) grid -- baseline included -- is one declared
    batch, so all collocation runs can fan out over workers.
    """
    names = programs or tuple(p.name for p in SPEC_CPU2006)
    if quick and programs is None:
        names = ("calculix", "lbm", "libquantum")

    specs = []
    for name in names:
        specs.append(
            DEFAULT_REGISTRY.build(
                "collocation",
                manager="static-big",
                program=name,
                quick=quick,
                seed=seed,
                manager_params={"collocate_batch": True},
            )
        )
        specs.extend(
            DEFAULT_REGISTRY.build(
                "collocation",
                manager=manager,
                program=name,
                quick=quick,
                seed=seed,
                manager_params=params,
            )
            for manager, params in _MANAGER_PARAMS.items()
        )

    results = iter(get_runner(runner).results(specs))
    rows: list[CollocationRow] = []
    for name in names:
        static = next(results)
        base_ips = static.batch_mean_ips()
        base_energy = static.total_energy_j()
        for manager_name in _MANAGER_PARAMS:
            result = next(results)
            rows.append(
                CollocationRow(
                    program=name,
                    manager=manager_name,
                    qos_guarantee_pct=result.qos_guarantee() * 100.0,
                    ips_normalized=result.batch_mean_ips() / base_ips,
                    energy_normalized=result.total_energy_j() / base_energy,
                )
            )
    return Fig11Result(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
