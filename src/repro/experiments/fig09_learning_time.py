"""Figure 9: impact of learning time on the QoS guarantee (Web-Search).

The paper shortens the learning phase to 200 s and plots the QoS
guarantee over consecutive 100 s windows: HipsterIn improves steadily as
the lookup table converges, while Octopus-Man stays flat (around 80% in
the paper) because it never exploits history.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import ascii_table
from repro.experiments.runner import DEFAULT_SEED
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner, get_runner

#: Figure 9's setup: learning phase shortened to 200 s, 100 s windows.
FIG9_LEARNING_S = 200.0
WINDOW_S = 100.0


@dataclass(frozen=True)
class Fig9Result:
    """Per-window QoS guarantees for HipsterIn and Octopus-Man."""

    hipster_windows: np.ndarray
    octopus_windows: np.ndarray
    window_s: float
    learning_s: float

    def late_improvement(self) -> float:
        """HipsterIn's late-run advantage over Octopus-Man (fractional).

        Compares mean per-window QoS after learning ends.
        """
        start = int(self.learning_s // self.window_s)
        hip = float(np.mean(self.hipster_windows[start:]))
        octo = float(np.mean(self.octopus_windows[start:]))
        if octo == 0:
            return float("inf")
        return hip / octo - 1.0

    def render(self) -> str:
        rows = [
            [
                i,
                f"{h * 100:.0f}%",
                f"{o * 100:.0f}%",
                "learning" if (i + 1) * self.window_s <= self.learning_s else "",
            ]
            for i, (h, o) in enumerate(
                zip(self.hipster_windows, self.octopus_windows)
            )
        ]
        return ascii_table(
            ["window", "HipsterIn", "Octopus-Man", "phase"],
            rows,
            title=(
                "Figure 9 -- QoS guarantee per 100 s window (Web-Search, "
                f"200 s learning); late advantage "
                f"{self.late_improvement() * 100:+.1f}%"
            ),
        )


def run(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> Fig9Result:
    """Regenerate Figure 9."""
    learning_s = 100.0 if quick else FIG9_LEARNING_S
    specs = [
        DEFAULT_REGISTRY.build(
            "diurnal-policy",
            workload="websearch",
            manager=manager,
            quick=quick,
            seed=seed,
            learning_s=learning_s,
        )
        for manager in ("hipster-in", "octopus-man")
    ]
    hipster, octopus = get_runner(runner).results(specs)
    return Fig9Result(
        hipster_windows=hipster.windowed_qos_guarantee(WINDOW_S),
        octopus_windows=octopus.windowed_qos_guarantee(WINDOW_S),
        window_s=WINDOW_S,
        learning_s=learning_s,
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
