"""Experiment harness: one module per table and figure of the paper.

Every module exposes ``run(*, quick=False, seed=..., runner=None)``
returning a result object with a ``render()`` method (plain-text
tables/sparklines) plus the derived quantities its tests and benchmarks
assert on.  ``quick=True`` compresses run lengths for CI; the full
setting matches the paper's.

Modules declare their runs as :class:`~repro.scenarios.spec.ScenarioSpec`
grids (via :data:`repro.scenarios.DEFAULT_REGISTRY`) and execute them
through the ``runner`` -- a :class:`~repro.sim.batch.BatchRunner` --
so a shared runner parallelizes every figure's scenario batch over
worker processes and caches results across invocations.  Passing
``runner=None`` gets a serial, uncached run with identical output.

=================================================  =======================
module                                             paper artifact
=================================================  =======================
:mod:`~repro.experiments.fig01_diurnal_power`      Figure 1
:mod:`~repro.experiments.fig02_efficiency`         Figures 2a/2b/2c
:mod:`~repro.experiments.fig03_cross_state_machine`  Figure 3
:mod:`~repro.experiments.fig05_heuristic_traces`   Figure 5
:mod:`~repro.experiments.fig06_hipsterin_memcached`  Figure 6
:mod:`~repro.experiments.fig07_hipsterin_websearch`  Figure 7
:mod:`~repro.experiments.fig08_load_ramp`          Figure 8
:mod:`~repro.experiments.fig09_learning_time`      Figure 9
:mod:`~repro.experiments.fig10_bucket_size`        Figure 10
:mod:`~repro.experiments.fig11_collocation`        Figure 11
:mod:`~repro.experiments.table1_workloads`         Table 1
:mod:`~repro.experiments.table2_characterization`  Table 2
:mod:`~repro.experiments.table3_summary`           Table 3
:mod:`~repro.experiments.calibration`              Table 1 methodology
:mod:`~repro.experiments.fleet_scale`              fleet scaling (beyond
                                                   the paper: power/QoS
                                                   vs node count)
=================================================  =======================
"""

from repro.experiments import (
    calibration,
    fig01_diurnal_power,
    fig02_efficiency,
    fig03_cross_state_machine,
    fig05_heuristic_traces,
    fig06_hipsterin_memcached,
    fig07_hipsterin_websearch,
    fig08_load_ramp,
    fig09_learning_time,
    fig10_bucket_size,
    fig11_collocation,
    fleet_scale,
    table1_workloads,
    table2_characterization,
    table3_summary,
)

#: CLI-facing registry: command name -> experiment module.
EXPERIMENTS = {
    "fig1": fig01_diurnal_power,
    "fig2": fig02_efficiency,
    "fig3": fig03_cross_state_machine,
    "fig5": fig05_heuristic_traces,
    "fig6": fig06_hipsterin_memcached,
    "fig7": fig07_hipsterin_websearch,
    "fig8": fig08_load_ramp,
    "fig9": fig09_learning_time,
    "fig10": fig10_bucket_size,
    "fig11": fig11_collocation,
    "fleet-scale": fleet_scale,
    "table1": table1_workloads,
    "table2": table2_characterization,
    "table3": table3_summary,
}

__all__ = ["EXPERIMENTS", "calibration"]
