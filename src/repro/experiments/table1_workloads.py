"""Table 1: workload configurations, maximum loads and tail targets.

Mostly a configuration printout, but the maximum-load column is *checked*
rather than copied: the paper defines max load as the highest load at
which two big cores at max DVFS meet the target, and
:mod:`repro.experiments.calibration` re-derives that operating point on
the simulated platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.calibration import EDGE_QUANTILE
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import DEFAULT_SEED
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner, get_runner
from repro.workloads.memcached import memcached
from repro.workloads.websearch import websearch


@dataclass(frozen=True)
class Table1Row:
    """One workload's contract plus the re-measured edge tail."""

    workload: str
    max_load_rps: float
    qos_percentile: float
    target_ms: float
    edge_tail_ms: float

    @property
    def edge_ok(self) -> bool:
        """Whether max load indeed sits at the edge of the target."""
        return abs(self.edge_tail_ms - self.target_ms) / self.target_ms <= 0.25


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]

    def render(self) -> str:
        return ascii_table(
            ["workload", "max load", "tail percentile", "target", "edge tail @100%"],
            [
                [
                    r.workload,
                    f"{r.max_load_rps:.0f} rps",
                    f"p{r.qos_percentile * 100:.0f}",
                    f"{r.target_ms:.0f} ms",
                    f"{r.edge_tail_ms:.1f} ms ({'ok' if r.edge_ok else 'DRIFTED'})",
                ]
                for r in self.rows
            ],
            title="Table 1 -- workload configurations and re-derived max loads",
        )


def run(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> Table1Result:
    """Regenerate Table 1."""
    duration = 120.0 if quick else 240.0
    workloads = (memcached(), websearch())
    specs = [
        DEFAULT_REGISTRY.build(
            "edge-load", workload=w.name, duration_s=duration, seed=seed
        )
        for w in workloads
    ]
    results = get_runner(runner).results(specs)
    rows = []
    for workload, result in zip(workloads, results):
        tail = float(np.quantile(result.tails_ms, EDGE_QUANTILE))
        rows.append(
            Table1Row(
                workload=workload.name,
                max_load_rps=workload.max_load_rps,
                qos_percentile=workload.qos_percentile,
                target_ms=workload.target_latency_ms,
                edge_tail_ms=tail,
            )
        )
    return Table1Result(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
