"""Figure 1: power drawn for a diurnal load, Web-Search on two big cores.

The paper's motivating figure: while load swings between ~5% and ~95% of
maximum capacity, server power never falls much below ~60% of its peak --
the energy-proportionality gap Hipster attacks.  We reproduce it by
running Web-Search under the static all-big mapping across one compressed
diurnal day and reporting load and power as percentages of their peaks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import ascii_table, series_block
from repro.experiments.runner import DEFAULT_SEED
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner, get_runner


@dataclass(frozen=True)
class Fig1Result:
    """Per-interval load and power, both as percent of their peaks."""

    times_s: np.ndarray
    qps_percent: np.ndarray
    power_percent: np.ndarray

    @property
    def min_power_percent(self) -> float:
        """The floor of the power curve -- the paper's ~60% claim."""
        return float(np.min(self.power_percent))

    @property
    def load_range_percent(self) -> tuple[float, float]:
        """Span of the offered load over the day."""
        return float(np.min(self.qps_percent)), float(np.max(self.qps_percent))

    def render(self) -> str:
        lo, hi = self.load_range_percent
        return "\n".join(
            [
                "Figure 1 -- diurnal load vs server power (Web-Search on 2B-1.15)",
                series_block("QPS   (% of max)", self.qps_percent, unit="%"),
                series_block("Power (% of max)", self.power_percent, unit="%"),
                ascii_table(
                    ["metric", "value"],
                    [
                        ["load range", f"{lo:.0f}% .. {hi:.0f}%"],
                        ["power floor", f"{self.min_power_percent:.0f}% of peak"],
                    ],
                ),
            ]
        )


def run(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> Fig1Result:
    """Regenerate Figure 1."""
    spec = DEFAULT_REGISTRY.build(
        "diurnal-policy",
        workload="websearch",
        manager="static-big",
        quick=quick,
        seed=seed,
    )
    (result,) = get_runner(runner).results([spec])
    power = result.powers_w
    return Fig1Result(
        times_s=result.times_s,
        # Offered load, not raw per-interval arrival counts: the paper's
        # QPS curve integrates tens of thousands of requests per point,
        # while the replica's per-interval Poisson-burst counts would add
        # sampling noise that is an artifact of the simulation.
        qps_percent=result.loads * 100.0,
        power_percent=power / float(np.max(power)) * 100.0,
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
