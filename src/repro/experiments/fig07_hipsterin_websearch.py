"""Figure 7: HipsterIn running Web-Search over the diurnal day.

Same harness as Figure 6 (see
:mod:`repro.experiments.fig06_hipsterin_memcached`); the paper highlights
that HipsterIn performs several times fewer task migrations than
Octopus-Man on Web-Search while improving QoS, which
:func:`migration_ratio_vs_octopus` quantifies.
"""

from __future__ import annotations

from repro.experiments.fig06_hipsterin_memcached import (
    HipsterTraceResult,
    run_hipster_trace,
)
from repro.experiments.runner import DEFAULT_SEED
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner, get_runner

WORKLOAD_NAME = "websearch"


def run(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> HipsterTraceResult:
    """Regenerate Figure 7."""
    return run_hipster_trace(WORKLOAD_NAME, quick=quick, seed=seed, runner=runner)


def migration_ratio_vs_octopus(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> float:
    """Octopus-Man migrations divided by HipsterIn's (exploitation phase).

    The paper reports 4.7x fewer migrations for Web-Search (Section
    4.2.3); values above 1 reproduce the direction of that claim.
    """
    hipster = run(quick=quick, seed=seed, runner=runner)
    octopus_spec = DEFAULT_REGISTRY.build(
        "diurnal-policy",
        workload=WORKLOAD_NAME,
        manager="octopus-man",
        quick=quick,
        seed=seed,
    )
    (octopus,) = get_runner(runner).results([octopus_spec])
    octo_rate = octopus.slice(hipster.learning_s).migration_events() / max(
        len(octopus.slice(hipster.learning_s)), 1
    )
    hip_rate = hipster.exploitation.migration_events() / max(
        len(hipster.exploitation), 1
    )
    if hip_rate == 0:
        return float("inf")
    return octo_rate / hip_rate


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
