"""Figure 6: HipsterIn running Memcached over the diurnal day.

The paper's observation: after the learning phase, core-mapping
oscillation drops and the QoS guarantee improves compared to the learning
phase -- HipsterIn jumps directly to the right configuration per load and
leans on cheap DVFS changes instead of costly migrations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import ascii_table, series_block
from repro.experiments.runner import DEFAULT_SEED, learning_seconds
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner, get_runner
from repro.sim.records import ExperimentResult

WORKLOAD_NAME = "memcached"


@dataclass(frozen=True)
class HipsterTraceResult:
    """A HipsterIn run split at the end of the (first) learning phase."""

    workload_name: str
    result: ExperimentResult
    learning_s: float
    phase_switches: int

    @property
    def learning(self) -> ExperimentResult:
        return self.result.slice(0.0, self.learning_s)

    @property
    def exploitation(self) -> ExperimentResult:
        return self.result.slice(self.learning_s)

    def qos_improvement(self) -> float:
        """Exploitation-over-learning QoS guarantee gain (fractional)."""
        learn = self.learning.qos_guarantee()
        exploit = self.exploitation.qos_guarantee()
        if learn == 0:
            return float("inf")
        return exploit / learn - 1.0

    def migration_rate_drop(self) -> float:
        """Learning-to-exploitation reduction in migrations per interval."""
        learn = self.learning.migration_events() / max(len(self.learning), 1)
        exploit = self.exploitation.migration_events() / max(len(self.exploitation), 1)
        if learn == 0:
            return 0.0
        return 1.0 - exploit / learn

    def render(self) -> str:
        result = self.result
        return "\n".join(
            [
                f"Figure 6/7 -- HipsterIn on {self.workload_name}",
                series_block("tail latency (ms)", result.tails_ms),
                series_block("throughput (rps)", result.arrival_rps),
                series_block("big DVFS (GHz)", [o.big_freq_ghz for o in result]),
                series_block(
                    "LC cores", [o.decision.config.total_cores for o in result]
                ),
                ascii_table(
                    ["metric", "learning", "exploitation"],
                    [
                        [
                            "QoS guarantee",
                            f"{self.learning.qos_guarantee() * 100:.1f}%",
                            f"{self.exploitation.qos_guarantee() * 100:.1f}%",
                        ],
                        [
                            "migrations/interval",
                            f"{self.learning.migration_events() / max(len(self.learning), 1):.3f}",
                            f"{self.exploitation.migration_events() / max(len(self.exploitation), 1):.3f}",
                        ],
                        [
                            "mean power (W)",
                            f"{self.learning.mean_power_w():.2f}",
                            f"{self.exploitation.mean_power_w():.2f}",
                        ],
                    ],
                ),
            ]
        )


def run_hipster_trace(
    workload_name: str,
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> HipsterTraceResult:
    """Shared driver for Figures 6 and 7."""
    spec = DEFAULT_REGISTRY.build(
        "diurnal-policy",
        workload=workload_name,
        manager="hipster-in",
        quick=quick,
        seed=seed,
    )
    outcome = get_runner(runner).run_one(spec)
    return HipsterTraceResult(
        workload_name=workload_name,
        result=outcome.result,
        learning_s=learning_seconds(quick=quick),
        phase_switches=outcome.stat("phase_switches", 0),
    )


def run(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> HipsterTraceResult:
    """Regenerate Figure 6."""
    return run_hipster_trace(WORKLOAD_NAME, quick=quick, seed=seed, runner=runner)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
