"""Plain-text rendering for experiment outputs.

The harness has no plotting dependency, so every experiment renders its
result as fixed-width tables and ASCII sparkline plots -- enough to
eyeball the same shapes the paper's figures show -- and can export CSV
for external plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

_SPARK_LEVELS = " .:-=+*#%@"


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render a fixed-width table with a separator under the header."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in str_rows))
        if str_rows
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, width: int = 72) -> str:
    """A one-line density plot of a series, resampled to ``width`` chars."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    resampled = np.interp(
        np.linspace(0, len(values) - 1, width), np.arange(len(values)), values
    )
    lo, hi = float(np.min(resampled)), float(np.max(resampled))
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * width
    scaled = (resampled - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)


def series_block(
    name: str, values: Sequence[float], *, width: int = 72, unit: str = ""
) -> str:
    """A labelled sparkline with min/max annotations."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return f"{name}: (empty)"
    return (
        f"{name} [min={np.min(values):.3g}{unit} max={np.max(values):.3g}{unit}]\n"
        f"  {sparkline(values, width=width)}"
    )


def write_csv(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> Path:
    """Dump rows to CSV; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
