"""Figure 2: throughput-per-watt of HetCMP vs the baseline policy.

For each load level the paper selects, among the configurations that meet
QoS, the one with the least power -- once over the full heterogeneous
configuration space (HetCMP) and once over the baseline policy's subset
(exclusively big or small cores at maximum DVFS).  The per-load HetCMP
winners are the workload's *state machine* (Figure 2c), which Figure 3
then cross-applies between workloads.

The sweep runs with CPUidle enabled (characterization setting: unused
cores power-gate) and a steady load per level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import ascii_table
from repro.experiments.runner import DEFAULT_SEED, workload_by_name
from repro.hardware.juno import juno_r1
from repro.hardware.topology import (
    Configuration,
    enumerate_configurations,
    octopus_man_ladder,
)
from repro.scenarios import DEFAULT_REGISTRY, ScenarioSpec
from repro.sim.batch import BatchRunner, get_runner
from repro.sim.records import ExperimentResult
from repro.workloads.base import LatencyCriticalWorkload, capacity_rps

#: Load levels swept (fraction of max), spanning the paper's 13 columns.
PAPER_LOAD_LEVELS = (
    0.18, 0.25, 0.33, 0.40, 0.47, 0.55, 0.62, 0.69, 0.77, 0.84, 0.91, 0.97, 1.0,
)

#: A configuration qualifies at a load level when at least this fraction
#: of its steady-state intervals meets the target.
QOS_PASS_FRACTION = 0.9


@dataclass(frozen=True)
class LoadLevelChoice:
    """The winning configuration at one load level for one policy."""

    load: float
    config_label: str
    power_w: float
    throughput_per_watt: float


@dataclass(frozen=True)
class Fig2Result:
    """Per-load winners for HetCMP and the baseline policy."""

    workload_name: str
    hetcmp: tuple[LoadLevelChoice | None, ...]
    baseline: tuple[LoadLevelChoice | None, ...]
    loads: tuple[float, ...]

    @property
    def state_machine(self) -> tuple[tuple[float, str], ...]:
        """Figure 2c: the per-load optimal configuration labels."""
        return tuple(
            (choice.load, choice.config_label)
            for choice in self.hetcmp
            if choice is not None
        )

    def mean_efficiency_gain(self) -> float:
        """Mean HetCMP-over-baseline throughput/W gain at levels both solve."""
        gains = [
            h.throughput_per_watt / b.throughput_per_watt
            for h, b in zip(self.hetcmp, self.baseline)
            if h is not None and b is not None and b.throughput_per_watt > 0
        ]
        return float(np.mean(gains)) if gains else float("nan")

    def render(self) -> str:
        rows = []
        for load, het, base in zip(self.loads, self.hetcmp, self.baseline):
            rows.append(
                [
                    f"{load * 100:.0f}%",
                    het.config_label if het else "-",
                    f"{het.throughput_per_watt:.1f}" if het else "-",
                    base.config_label if base else "-",
                    f"{base.throughput_per_watt:.1f}" if base else "-",
                ]
            )
        return "\n".join(
            [
                ascii_table(
                    ["load", "HetCMP", "RPS/W", "baseline", "RPS/W"],
                    rows,
                    title=(
                        f"Figure 2 -- per-load best configurations "
                        f"({self.workload_name}); mean HetCMP gain "
                        f"{self.mean_efficiency_gain():.2f}x"
                    ),
                )
            ]
        )


def candidate_specs(
    workload: LatencyCriticalWorkload,
    platform,
    load: float,
    configs: tuple[Configuration, ...],
    *,
    duration_s: float,
    seed: int,
) -> tuple[tuple[Configuration, ...], list[ScenarioSpec]]:
    """Capacity-eligible configurations at a load level, plus their specs.

    Configurations whose aggregate capacity cannot possibly meet any
    latency target at the offered demand are pruned before simulation.
    """
    demand = load * workload.max_load_rps
    eligible = tuple(
        config
        for config in configs
        if capacity_rps(workload, platform, config) >= demand * 0.9
    )
    specs = [
        DEFAULT_REGISTRY.build(
            "steady-config",
            workload=workload.name,
            config_label=config.label,
            load=load,
            duration_s=duration_s,
            seed=seed,
        )
        for config in eligible
    ]
    return eligible, specs


def pick_winner(
    load: float,
    eligible: tuple[Configuration, ...],
    results: list[ExperimentResult],
) -> LoadLevelChoice | None:
    """Least-power QoS-meeting configuration among evaluated candidates."""
    best: LoadLevelChoice | None = None
    for config, result in zip(eligible, results):
        if result.qos_guarantee() < QOS_PASS_FRACTION:
            continue
        power = result.mean_power_w()
        if best is None or power < best.power_w:
            best = LoadLevelChoice(
                load=load,
                config_label=config.label,
                power_w=power,
                throughput_per_watt=float(np.mean(result.arrival_rps)) / power,
            )
    return best


def best_configuration(
    platform,
    workload: LatencyCriticalWorkload,
    load: float,
    configs: tuple[Configuration, ...],
    *,
    duration_s: float = 40.0,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> LoadLevelChoice | None:
    """Least-power QoS-meeting configuration at one steady load level."""
    eligible, specs = candidate_specs(
        workload, platform, load, configs, duration_s=duration_s, seed=seed
    )
    return pick_winner(load, eligible, get_runner(runner).results(specs))


def run(
    workload_name: str = "memcached",
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    loads: tuple[float, ...] = PAPER_LOAD_LEVELS,
    runner: BatchRunner | None = None,
) -> Fig2Result:
    """Regenerate Figure 2a/2b (and the Figure 2c state machine).

    The whole (policy space x load level x configuration) grid is
    declared up front and dispatched as one batch, so ``--jobs N``
    parallelizes the sweep; winners are picked from the returned results.
    """
    platform = juno_r1()
    workload = workload_by_name(workload_name)
    duration = 20.0 if quick else 40.0
    space = enumerate_configurations(platform, max_total_cores=4)
    baseline_set = octopus_man_ladder(platform)
    if quick:
        loads = loads[::2]

    grid: list[tuple[str, float, tuple[Configuration, ...], list[ScenarioSpec]]] = []
    for policy_space, configs in (("hetcmp", space), ("baseline", baseline_set)):
        for load in loads:
            eligible, specs = candidate_specs(
                workload, platform, load, configs, duration_s=duration, seed=seed
            )
            grid.append((policy_space, load, eligible, specs))

    all_specs = [spec for _, _, _, specs in grid for spec in specs]
    all_results = iter(get_runner(runner).results(all_specs))
    winners: dict[str, list[LoadLevelChoice | None]] = {"hetcmp": [], "baseline": []}
    for policy_space, load, eligible, specs in grid:
        results = [next(all_results) for _ in specs]
        winners[policy_space].append(pick_winner(load, eligible, results))

    return Fig2Result(
        workload_name=workload_name,
        hetcmp=tuple(winners["hetcmp"]),
        baseline=tuple(winners["baseline"]),
        loads=loads,
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run("memcached", quick=True).render())
