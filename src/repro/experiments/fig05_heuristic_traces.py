"""Figure 5: static vs Octopus-Man vs Hipster's heuristic, trace view.

For each workload, runs the three heuristic-family policies over the
diurnal day and reports the four panels the paper plots per policy: tail
latency, throughput, DVFS, and core mapping -- plus the headline summary
(static violates least, the heuristics oscillate and violate more while
saving energy, and Hipster's heuristic explores configurations
Octopus-Man cannot reach).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import ascii_table, series_block
from repro.experiments.runner import DEFAULT_SEED
from repro.metrics.summary import PolicySummary, summarize
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner, get_runner
from repro.sim.records import ExperimentResult

#: The heuristic-family line-up of Figure 5.
FIG5_POLICIES = ("static-big", "octopus-man", "hipster-heuristic")


@dataclass(frozen=True)
class Fig5Result:
    """Traces and summaries for one workload's three policies."""

    workload_name: str
    runs: dict[str, ExperimentResult]
    summaries: dict[str, PolicySummary]

    def mixed_config_intervals(self, policy: str) -> int:
        """Intervals where the policy used big *and* small cores at once.

        Octopus-Man can never produce these; Hipster's heuristic does --
        the paper's Figure 5 bottom panels.
        """
        return sum(
            1
            for o in self.runs[policy]
            if o.decision.config.n_big > 0 and o.decision.config.n_small > 0
        )

    def distinct_big_freqs(self, policy: str) -> int:
        """DVFS points the policy actually used on the big cluster."""
        return len({o.big_freq_ghz for o in self.runs[policy]})

    def render(self) -> str:
        blocks = [f"Figure 5 -- heuristic policies on {self.workload_name}"]
        for name, run_result in self.runs.items():
            blocks.append(f"\n--- {name} ---")
            blocks.append(series_block("tail latency (ms)", run_result.tails_ms))
            blocks.append(series_block("throughput (rps)", run_result.arrival_rps))
            blocks.append(
                series_block(
                    "big DVFS (GHz)",
                    [o.big_freq_ghz for o in run_result],
                )
            )
            blocks.append(
                series_block(
                    "LC cores", [o.decision.config.total_cores for o in run_result]
                )
            )
        blocks.append("")
        blocks.append(
            ascii_table(
                ["policy", "QoS %", "migrations", "mixed-config intervals", "DVFS pts"],
                [
                    [
                        name,
                        f"{s.qos_guarantee_pct:.1f}",
                        s.migration_events,
                        self.mixed_config_intervals(name),
                        self.distinct_big_freqs(name),
                    ]
                    for name, s in self.summaries.items()
                ],
            )
        )
        return "\n".join(blocks)


def run(
    workload_name: str = "memcached",
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> Fig5Result:
    """Regenerate one row of Figure 5."""
    specs = [
        DEFAULT_REGISTRY.build(
            "diurnal-policy",
            workload=workload_name,
            manager=manager,
            quick=quick,
            seed=seed,
        )
        for manager in FIG5_POLICIES
    ]
    results = get_runner(runner).results(specs)
    runs = dict(zip(FIG5_POLICIES, results))
    summaries = {name: summarize(result) for name, result in runs.items()}
    return Fig5Result(workload_name=workload_name, runs=runs, summaries=summaries)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run("memcached", quick=True).render())
