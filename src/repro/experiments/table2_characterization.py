"""Table 2: power and performance characterization of the Juno platform.

Runs the compute stress microbenchmark over each cluster and reports the
paper's table -- power and IPS for one core and for the whole cluster at
maximum DVFS -- plus the derived efficiency claims the paper's text makes
(a single big core is ~52% more IPS/W-efficient than a single small core;
the small *cluster* is ~25% more efficient than the big cluster).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import ascii_table
from repro.hardware.juno import juno_r1
from repro.hardware.microbench import CharacterizationRow, characterize_platform


@dataclass(frozen=True)
class Table2Result:
    """Both clusters' characterization rows."""

    big: CharacterizationRow
    small: CharacterizationRow

    @property
    def single_core_efficiency_gain(self) -> float:
        """Big-over-small single-core IPS/W ratio (paper: ~1.52)."""
        return self.big.efficiency_one_core / self.small.efficiency_one_core

    @property
    def cluster_efficiency_gain(self) -> float:
        """Small-over-big full-cluster IPS/W ratio (paper: ~1.25)."""
        return self.small.efficiency_all_cores / self.big.efficiency_all_cores

    def render(self) -> str:
        rows = []
        for row in (self.big, self.small):
            rows.append(
                [
                    f"{row.core_type} ({row.freq_ghz:.2f} GHz)",
                    f"{row.power_all_cores_w:.2f}",
                    f"{row.power_one_core_w:.2f}",
                    f"{row.ips_all_cores / 1e6:,.0f}",
                    f"{row.ips_one_core / 1e6:,.0f}",
                ]
            )
        table = ascii_table(
            ["core type", "P all (W)", "P one (W)", "MIPS all", "MIPS one"],
            rows,
            title="Table 2 -- Juno R1 power/performance characterization",
        )
        derived = ascii_table(
            ["claim", "value"],
            [
                [
                    "single big core IPS/W vs single small",
                    f"{(self.single_core_efficiency_gain - 1) * 100:+.0f}%",
                ],
                [
                    "small cluster IPS/W vs big cluster",
                    f"{(self.cluster_efficiency_gain - 1) * 100:+.0f}%",
                ],
            ],
        )
        return table + "\n\n" + derived


def run(*, quick: bool = False, seed: int = 0, runner=None) -> Table2Result:
    """Regenerate Table 2.

    The characterization is closed-form (no stochastic simulation), so
    ``quick``, ``seed`` and ``runner`` are accepted only for interface
    symmetry with the other experiment modules and ignored.
    """
    big, small = characterize_platform(juno_r1())
    return Table2Result(big=big, small=small)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().render())
