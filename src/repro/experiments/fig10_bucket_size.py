"""Figure 10: impact of the load-bucket size on QoS and energy savings.

Small buckets give fine-grained control (more energy saved) but react to
noise with rapid configuration changes (more QoS violations); large
buckets are stable but lump distinct loads together.  The paper sweeps
{3, 6, 9}% for Web-Search and {2, 3, 4}% for Memcached, normalizing both
metrics to the static all-big mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.buckets import PAPER_BUCKET_SWEEP
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import DEFAULT_SEED
from repro.scenarios import DEFAULT_REGISTRY
from repro.scenarios.spec import thaw_params
from repro.sim.batch import BatchRunner, get_runner


@dataclass(frozen=True)
class BucketRow:
    """Outcome of one bucket size on one workload."""

    workload_name: str
    bucket_size: float
    qos_violations_pct: float
    energy_reduction_pct: float
    migration_events: int


@dataclass(frozen=True)
class Fig10Result:
    """The full bucket-size sweep for both workloads."""

    rows: tuple[BucketRow, ...]

    def rows_for(self, workload_name: str) -> tuple[BucketRow, ...]:
        return tuple(r for r in self.rows if r.workload_name == workload_name)

    def render(self) -> str:
        return ascii_table(
            ["workload", "bucket", "QoS violations", "energy saved", "migrations"],
            [
                [
                    r.workload_name,
                    f"{r.bucket_size * 100:.0f}%",
                    f"{r.qos_violations_pct:.1f}%",
                    f"{r.energy_reduction_pct:.1f}%",
                    r.migration_events,
                ]
                for r in self.rows
            ],
            title="Figure 10 -- bucket-size sweep (normalized to static all-big)",
        )


def run(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> Fig10Result:
    """Regenerate Figure 10.

    The bucket grid is declared with :meth:`ScenarioSpec.sweep` over the
    HipsterIn manager parameters and dispatched as one batch together
    with the per-workload static baselines.
    """
    groups = []
    specs = []
    for workload_name, sweep in PAPER_BUCKET_SWEEP.items():
        baseline_spec = DEFAULT_REGISTRY.build(
            "diurnal-policy",
            workload=workload_name,
            manager="static-big",
            quick=quick,
            seed=seed,
        )
        hipster_base = DEFAULT_REGISTRY.build(
            "diurnal-policy",
            workload=workload_name,
            manager="hipster-in",
            quick=quick,
            seed=seed,
        )
        base_params = thaw_params(hipster_base.manager_params)
        sweep_specs = hipster_base.sweep(
            manager_params=[
                {**base_params, "bucket_size": bucket_size} for bucket_size in sweep
            ]
        )
        groups.append((workload_name, sweep))
        specs.append(baseline_spec)
        specs.extend(sweep_specs)

    results = iter(get_runner(runner).results(specs))
    rows: list[BucketRow] = []
    for workload_name, sweep in groups:
        baseline = next(results)
        for bucket_size in sweep:
            result = next(results)
            rows.append(
                BucketRow(
                    workload_name=workload_name,
                    bucket_size=bucket_size,
                    qos_violations_pct=(1.0 - result.qos_guarantee()) * 100.0,
                    energy_reduction_pct=result.energy_reduction_vs(baseline) * 100.0,
                    migration_events=result.migration_events(),
                )
            )
    return Fig10Result(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
