"""Figure 10: impact of the load-bucket size on QoS and energy savings.

Small buckets give fine-grained control (more energy saved) but react to
noise with rapid configuration changes (more QoS violations); large
buckets are stable but lump distinct loads together.  The paper sweeps
{3, 6, 9}% for Web-Search and {2, 3, 4}% for Memcached, normalizing both
metrics to the static all-big mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.buckets import PAPER_BUCKET_SWEEP
from repro.core.hipster import HipsterParams, hipster_in
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    diurnal_for,
    learning_seconds,
    workload_by_name,
)
from repro.hardware.juno import juno_r1
from repro.policies.static import static_all_big
from repro.sim.engine import run_experiment


@dataclass(frozen=True)
class BucketRow:
    """Outcome of one bucket size on one workload."""

    workload_name: str
    bucket_size: float
    qos_violations_pct: float
    energy_reduction_pct: float
    migration_events: int


@dataclass(frozen=True)
class Fig10Result:
    """The full bucket-size sweep for both workloads."""

    rows: tuple[BucketRow, ...]

    def rows_for(self, workload_name: str) -> tuple[BucketRow, ...]:
        return tuple(r for r in self.rows if r.workload_name == workload_name)

    def render(self) -> str:
        return ascii_table(
            ["workload", "bucket", "QoS violations", "energy saved", "migrations"],
            [
                [
                    r.workload_name,
                    f"{r.bucket_size * 100:.0f}%",
                    f"{r.qos_violations_pct:.1f}%",
                    f"{r.energy_reduction_pct:.1f}%",
                    r.migration_events,
                ]
                for r in self.rows
            ],
            title="Figure 10 -- bucket-size sweep (normalized to static all-big)",
        )


def run(*, quick: bool = False, seed: int = DEFAULT_SEED) -> Fig10Result:
    """Regenerate Figure 10."""
    platform = juno_r1()
    rows: list[BucketRow] = []
    for workload_name, sweep in PAPER_BUCKET_SWEEP.items():
        workload = workload_by_name(workload_name)
        trace = diurnal_for(workload, quick=quick)
        baseline = run_experiment(
            platform, workload, trace, static_all_big(platform), seed=seed
        )
        for bucket_size in sweep:
            manager = hipster_in(
                HipsterParams(
                    bucket_size=bucket_size,
                    learning_duration_s=learning_seconds(quick=quick),
                )
            )
            result = run_experiment(platform, workload, trace, manager, seed=seed)
            rows.append(
                BucketRow(
                    workload_name=workload_name,
                    bucket_size=bucket_size,
                    qos_violations_pct=(1.0 - result.qos_guarantee()) * 100.0,
                    energy_reduction_pct=result.energy_reduction_vs(baseline) * 100.0,
                    migration_events=result.migration_events(),
                )
            )
    return Fig10Result(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
