"""Max-load calibration: the paper's Table 1 methodology, reproduced.

The paper chooses each workload's maximum load as the highest load at
which the platform meets the tail target when running on the two big cores
at maximum DVFS.  We hold the published maximum loads fixed (36 kRPS,
44 QPS) and instead calibrate the *service demand* of the workload model
until ``2B-1.15`` at 100% load sits exactly at the edge of the target --
the same operating point, approached from the model side.

"At the edge" is made precise as: the 95th percentile of per-interval tail
latencies equals the target, i.e. ~5% of monitoring intervals violate at
full load.  That leaves the static-big policy with the ~99.5% QoS
guarantee the paper's Table 3 reports over a diurnal trace (which rarely
touches 100%), while any sustained overload is promptly visible.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields

import numpy as np

from repro.hardware.soc import Platform
from repro.scenarios import DEFAULT_REGISTRY
from repro.scenarios.factories import build_platform, build_workload
from repro.sim.batch import BatchRunner, get_runner
from repro.workloads.base import LatencyCriticalWorkload

#: Quantile of per-interval tails pinned to the target at 100% load.
EDGE_QUANTILE = 0.95

#: Acceptable relative deviation when re-validating frozen constants.
VALIDATION_TOLERANCE = 0.25


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a demand calibration run."""

    workload_name: str
    demand_mean_ms: float
    edge_tail_ms: float
    target_ms: float
    iterations: int

    @property
    def relative_error(self) -> float:
        """Relative distance of the edge tail from the target."""
        return abs(self.edge_tail_ms - self.target_ms) / self.target_ms


def edge_tail_ms(
    platform: Platform,
    workload: LatencyCriticalWorkload,
    *,
    duration_s: float = 240.0,
    seed: int = 2017,
    quantile: float = EDGE_QUANTILE,
    runner: BatchRunner | None = None,
) -> float:
    """The ``quantile`` of per-interval tails at 100% load on ``2B-max``.

    Runs through the ``edge-load`` scenario family (so calibration probes
    share the batch runner's cache).  The scenario re-derives the
    workload from its registry name plus every field on which
    ``workload`` deviates from the stock instance, so arbitrary
    ``with_overrides`` variants calibrate faithfully; ``platform`` must
    equal the registry's Juno R1 (specs name platforms, they cannot
    carry a modified instance).
    """
    if platform != build_platform("juno_r1"):
        raise ValueError(
            "edge_tail_ms runs through the scenario registry, whose only "
            f"platform is the stock Juno R1; got a modified {platform.name!r}"
        )
    stock = build_workload(workload.name)
    overrides = {
        f.name: getattr(workload, f.name)
        for f in dataclass_fields(workload)
        if f.init and getattr(workload, f.name) != getattr(stock, f.name)
    }
    spec = DEFAULT_REGISTRY.build(
        "edge-load", workload=workload.name, duration_s=duration_s, seed=seed
    ).with_(workload_params=overrides)
    (result,) = get_runner(runner).results([spec])
    return float(np.quantile(result.tails_ms, quantile))


def calibrate_demand(
    platform: Platform,
    workload: LatencyCriticalWorkload,
    *,
    duration_s: float = 240.0,
    seed: int = 2017,
    iterations: int = 18,
    runner: BatchRunner | None = None,
) -> CalibrationResult:
    """Bisect the mean service demand until 100% load sits at the edge.

    The edge tail is monotone in the demand mean (more work per request
    means more queueing at the same arrival rate), so bisection over a
    generous bracket converges quickly.
    """
    target = workload.target_latency_ms
    lo = workload.demand_mean_ms * 0.25
    hi = workload.demand_mean_ms * 4.0
    mid = workload.demand_mean_ms
    for _ in range(iterations):
        mid = float(np.sqrt(lo * hi))  # geometric: demand spans decades
        candidate = workload.with_overrides(demand_mean_ms=mid)
        tail = edge_tail_ms(
            platform, candidate, duration_s=duration_s, seed=seed, runner=runner
        )
        if tail > target:
            hi = mid
        else:
            lo = mid
    calibrated = workload.with_overrides(demand_mean_ms=mid)
    achieved = edge_tail_ms(
        platform, calibrated, duration_s=duration_s, seed=seed + 1, runner=runner
    )
    return CalibrationResult(
        workload_name=workload.name,
        demand_mean_ms=mid,
        edge_tail_ms=achieved,
        target_ms=target,
        iterations=iterations,
    )


def validate_frozen_calibration(
    platform: Platform,
    workload: LatencyCriticalWorkload,
    *,
    duration_s: float = 240.0,
    seed: int = 99,
    tolerance: float = VALIDATION_TOLERANCE,
    runner: BatchRunner | None = None,
) -> CalibrationResult:
    """Check that a workload's frozen constants still sit at the edge.

    Raises ``ValueError`` when the edge tail drifted further than
    ``tolerance`` from the target -- the signal that the frozen
    ``demand_mean_ms`` no longer matches the platform model.
    """
    achieved = edge_tail_ms(
        platform, workload, duration_s=duration_s, seed=seed, runner=runner
    )
    result = CalibrationResult(
        workload_name=workload.name,
        demand_mean_ms=workload.demand_mean_ms,
        edge_tail_ms=achieved,
        target_ms=workload.target_latency_ms,
        iterations=0,
    )
    if result.relative_error > tolerance:
        raise ValueError(
            f"{workload.name}: edge tail {achieved:.2f} ms is more than "
            f"{tolerance:.0%} away from the {result.target_ms:.2f} ms target; "
            "re-run repro.experiments.calibration.calibrate_demand"
        )
    return result
