"""Max-load calibration: the paper's Table 1 methodology, reproduced.

The paper chooses each workload's maximum load as the highest load at
which the platform meets the tail target when running on the two big cores
at maximum DVFS.  We hold the published maximum loads fixed (36 kRPS,
44 QPS) and instead calibrate the *service demand* of the workload model
until ``2B-1.15`` at 100% load sits exactly at the edge of the target --
the same operating point, approached from the model side.

"At the edge" is made precise as: the 95th percentile of per-interval tail
latencies equals the target, i.e. ~5% of monitoring intervals violate at
full load.  That leaves the static-big policy with the ~99.5% QoS
guarantee the paper's Table 3 reports over a diurnal trace (which rarely
touches 100%), while any sustained overload is promptly visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.soc import Platform
from repro.loadgen.traces import ConstantTrace
from repro.policies.static import static_all_big
from repro.sim.engine import run_experiment
from repro.workloads.base import LatencyCriticalWorkload

#: Quantile of per-interval tails pinned to the target at 100% load.
EDGE_QUANTILE = 0.95

#: Acceptable relative deviation when re-validating frozen constants.
VALIDATION_TOLERANCE = 0.25


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a demand calibration run."""

    workload_name: str
    demand_mean_ms: float
    edge_tail_ms: float
    target_ms: float
    iterations: int

    @property
    def relative_error(self) -> float:
        """Relative distance of the edge tail from the target."""
        return abs(self.edge_tail_ms - self.target_ms) / self.target_ms


def edge_tail_ms(
    platform: Platform,
    workload: LatencyCriticalWorkload,
    *,
    duration_s: float = 240.0,
    seed: int = 2017,
    quantile: float = EDGE_QUANTILE,
) -> float:
    """The ``quantile`` of per-interval tails at 100% load on ``2B-max``."""
    result = run_experiment(
        platform,
        workload,
        ConstantTrace(1.0, duration_s),
        static_all_big(platform),
        seed=seed,
    )
    return float(np.quantile(result.tails_ms, quantile))


def calibrate_demand(
    platform: Platform,
    workload: LatencyCriticalWorkload,
    *,
    duration_s: float = 240.0,
    seed: int = 2017,
    iterations: int = 18,
) -> CalibrationResult:
    """Bisect the mean service demand until 100% load sits at the edge.

    The edge tail is monotone in the demand mean (more work per request
    means more queueing at the same arrival rate), so bisection over a
    generous bracket converges quickly.
    """
    target = workload.target_latency_ms
    lo = workload.demand_mean_ms * 0.25
    hi = workload.demand_mean_ms * 4.0
    mid = workload.demand_mean_ms
    for _ in range(iterations):
        mid = float(np.sqrt(lo * hi))  # geometric: demand spans decades
        candidate = workload.with_overrides(demand_mean_ms=mid)
        tail = edge_tail_ms(
            platform, candidate, duration_s=duration_s, seed=seed
        )
        if tail > target:
            hi = mid
        else:
            lo = mid
    calibrated = workload.with_overrides(demand_mean_ms=mid)
    achieved = edge_tail_ms(platform, calibrated, duration_s=duration_s, seed=seed + 1)
    return CalibrationResult(
        workload_name=workload.name,
        demand_mean_ms=mid,
        edge_tail_ms=achieved,
        target_ms=target,
        iterations=iterations,
    )


def validate_frozen_calibration(
    platform: Platform,
    workload: LatencyCriticalWorkload,
    *,
    duration_s: float = 240.0,
    seed: int = 99,
    tolerance: float = VALIDATION_TOLERANCE,
) -> CalibrationResult:
    """Check that a workload's frozen constants still sit at the edge.

    Raises ``ValueError`` when the edge tail drifted further than
    ``tolerance`` from the target -- the signal that the frozen
    ``demand_mean_ms`` no longer matches the platform model.
    """
    achieved = edge_tail_ms(platform, workload, duration_s=duration_s, seed=seed)
    result = CalibrationResult(
        workload_name=workload.name,
        demand_mean_ms=workload.demand_mean_ms,
        edge_tail_ms=achieved,
        target_ms=workload.target_latency_ms,
        iterations=0,
    )
    if result.relative_error > tolerance:
        raise ValueError(
            f"{workload.name}: edge tail {achieved:.2f} ms is more than "
            f"{tolerance:.0%} away from the {result.target_ms:.2f} ms target; "
            "re-run repro.experiments.calibration.calibrate_demand"
        )
    return result
