"""Table 3: HipsterIn summary -- QoS, tardiness and energy per policy.

Runs the five policies of the paper's Table 3 (static all-big, static
all-small, Hipster's heuristic alone, Octopus-Man, HipsterIn) over the
diurnal day for both workloads, reporting QoS guarantee, QoS tardiness,
and energy reduction relative to static all-big.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import ascii_table
from repro.experiments.runner import DEFAULT_SEED
from repro.metrics.summary import PolicySummary, summarize
from repro.scenarios.registry import STANDARD_POLICIES, standard_policy_specs
from repro.sim.batch import BatchRunner, get_runner

#: Policy display order, as in the paper's table.
POLICY_ORDER = STANDARD_POLICIES


@dataclass(frozen=True)
class Table3Result:
    """Summaries for every (policy, workload) pair."""

    summaries: dict[tuple[str, str], PolicySummary]

    def get(self, policy: str, workload: str) -> PolicySummary:
        return self.summaries[(policy, workload)]

    def render(self) -> str:
        rows = []
        for policy in POLICY_ORDER:
            for workload in ("memcached", "websearch"):
                s = self.get(policy, workload)
                rows.append(
                    [
                        policy,
                        workload,
                        f"{s.qos_guarantee_pct:.1f}%",
                        f"{s.qos_tardiness:.2f}",
                        f"{s.energy_reduction_pct:.1f}%",
                        s.migration_events,
                    ]
                )
        return ascii_table(
            [
                "policy",
                "workload",
                "QoS guarantee",
                "tardiness",
                "energy saved",
                "migr",
            ],
            rows,
            title="Table 3 -- policy summary over the diurnal day",
        )


def run(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    runner: BatchRunner | None = None,
) -> Table3Result:
    """Regenerate Table 3.

    The (workload x policy) grid is declared through the scenario
    registry and dispatched as one batch; the static-big run of each
    workload then serves as that workload's normalization baseline.
    """
    grid: list[tuple[str, dict]] = [
        (workload_name, standard_policy_specs(workload_name, quick=quick, seed=seed))
        for workload_name in ("memcached", "websearch")
    ]
    all_specs = [spec for _, specs in grid for spec in specs.values()]
    results = iter(get_runner(runner).results(all_specs))

    summaries: dict[tuple[str, str], PolicySummary] = {}
    for workload_name, specs in grid:
        by_policy = {name: next(results) for name in specs}
        baseline = by_policy.pop("static-big")
        summaries[("static-big", workload_name)] = summarize(baseline)
        for name, result in by_policy.items():
            summaries[(name, workload_name)] = summarize(result, baseline)
    return Table3Result(summaries=summaries)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
