"""Table 3: HipsterIn summary -- QoS, tardiness and energy per policy.

Runs the five policies of the paper's Table 3 (static all-big, static
all-small, Hipster's heuristic alone, Octopus-Man, HipsterIn) over the
diurnal day for both workloads, reporting QoS guarantee, QoS tardiness,
and energy reduction relative to static all-big.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import ascii_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    PolicySet,
    diurnal_for,
    workload_by_name,
)
from repro.hardware.juno import juno_r1
from repro.metrics.summary import PolicySummary, summarize
from repro.sim.engine import run_experiment

#: Policy display order, as in the paper's table.
POLICY_ORDER = (
    "static-big",
    "static-small",
    "hipster-heuristic",
    "octopus-man",
    "hipster-in",
)


@dataclass(frozen=True)
class Table3Result:
    """Summaries for every (policy, workload) pair."""

    summaries: dict[tuple[str, str], PolicySummary]

    def get(self, policy: str, workload: str) -> PolicySummary:
        return self.summaries[(policy, workload)]

    def render(self) -> str:
        rows = []
        for policy in POLICY_ORDER:
            for workload in ("memcached", "websearch"):
                s = self.get(policy, workload)
                rows.append(
                    [
                        policy,
                        workload,
                        f"{s.qos_guarantee_pct:.1f}%",
                        f"{s.qos_tardiness:.2f}",
                        f"{s.energy_reduction_pct:.1f}%",
                        s.migration_events,
                    ]
                )
        return ascii_table(
            ["policy", "workload", "QoS guarantee", "tardiness", "energy saved", "migr"],
            rows,
            title="Table 3 -- policy summary over the diurnal day",
        )


def run(*, quick: bool = False, seed: int = DEFAULT_SEED) -> Table3Result:
    """Regenerate Table 3."""
    platform = juno_r1()
    summaries: dict[tuple[str, str], PolicySummary] = {}
    for workload_name in ("memcached", "websearch"):
        workload = workload_by_name(workload_name)
        trace = diurnal_for(workload, quick=quick)
        managers = PolicySet(quick=quick).build(platform)
        baseline = run_experiment(
            platform, workload, trace, managers.pop("static-big"), seed=seed
        )
        summaries[("static-big", workload_name)] = summarize(baseline)
        for name, manager in managers.items():
            result = run_experiment(platform, workload, trace, manager, seed=seed)
            summaries[(name, workload_name)] = summarize(result, baseline)
    return Table3Result(summaries=summaries)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
