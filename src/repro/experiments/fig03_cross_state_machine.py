"""Figure 3: efficiency lost when using the *other* workload's state machine.

The paper's point: the per-load optimal configuration mapping (Figure 2c)
is workload-specific.  Running Memcached with Web-Search's mapping (and
vice versa) forfeits up to ~35% energy efficiency at some load levels,
which motivates learning the mapping online instead of hard-coding one.

Methodology here: build both state machines with the Figure 2 sweep; at
each load level, evaluate the workload under its own winning
configuration and under the other workload's winner (escalating along the
other machine if that configuration violates QoS, as its danger-zone
controller would), and report the efficiency ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.fig02_efficiency import (
    PAPER_LOAD_LEVELS,
    Fig2Result,
    run as run_fig2,
)
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import DEFAULT_SEED
from repro.scenarios import DEFAULT_REGISTRY, ScenarioSpec
from repro.sim.batch import BatchRunner, get_runner
from repro.sim.records import ExperimentResult


@dataclass(frozen=True)
class CrossRow:
    """One load level: own vs foreign efficiency for one workload."""

    load: float
    own_config: str
    foreign_config: str
    efficiency_ratio: float  # foreign / own; < 1 means efficiency lost


@dataclass(frozen=True)
class Fig3Result:
    """Normalized cross-machine efficiency for both workloads."""

    memcached_rows: tuple[CrossRow, ...]
    websearch_rows: tuple[CrossRow, ...]

    def worst_loss(self, workload_name: str) -> float:
        """Largest efficiency loss (1 - ratio) for a workload."""
        rows = (
            self.memcached_rows if workload_name == "memcached" else self.websearch_rows
        )
        if not rows:
            return 0.0
        return max(1.0 - row.efficiency_ratio for row in rows)

    def render(self) -> str:
        blocks = []
        for name, rows in (
            ("memcached", self.memcached_rows),
            ("websearch", self.websearch_rows),
        ):
            table = ascii_table(
                ["load", "own config", "foreign config", "normalized efficiency"],
                [
                    [
                        f"{r.load * 100:.0f}%",
                        r.own_config,
                        r.foreign_config,
                        f"{r.efficiency_ratio:.2f}",
                    ]
                    for r in rows
                ],
                title=(
                    f"Figure 3 -- {name} under the other workload's state machine "
                    f"(worst loss {self.worst_loss(name) * 100:.0f}%)"
                ),
            )
            blocks.append(table)
        return "\n\n".join(blocks)


def _steady_spec(
    workload_name: str, load: float, label: str, *, duration_s: float, seed: int
) -> ScenarioSpec:
    return DEFAULT_REGISTRY.build(
        "steady-config",
        workload=workload_name,
        config_label=label,
        load=load,
        duration_s=duration_s,
        seed=seed,
    )


def _efficiency(result: ExperimentResult) -> tuple[float, bool]:
    """(throughput per watt, QoS met) of one steady-load evaluation."""
    power = result.mean_power_w()
    return float(np.mean(result.arrival_rps)) / power, result.qos_guarantee() >= 0.9


def _cross_rows(
    workload_name: str,
    own: Fig2Result,
    foreign: Fig2Result,
    *,
    duration_s: float,
    seed: int,
    runner: BatchRunner | None,
) -> tuple[CrossRow, ...]:
    """Own-vs-foreign rows, batched: every candidate along the foreign
    escalation walk is declared up front and dispatched together; the
    walk itself (stop at the first QoS-meeting candidate, as the foreign
    danger-zone controller would) is applied to the returned results."""
    foreign_machine = [c for c in foreign.hetcmp if c is not None]
    pending: list[tuple[float, str, list[str]]] = []
    specs: list[ScenarioSpec] = []
    for own_choice, foreign_choice in zip(own.hetcmp, foreign.hetcmp):
        if own_choice is None or foreign_choice is None:
            continue
        load = own_choice.load
        start = next(
            i
            for i, c in enumerate(foreign_machine)
            if c.config_label == foreign_choice.config_label
        )
        candidates = [c.config_label for c in foreign_machine[start:]]
        specs.append(
            _steady_spec(
                workload_name,
                load,
                own_choice.config_label,
                duration_s=duration_s,
                seed=seed,
            )
        )
        specs.extend(
            _steady_spec(workload_name, load, label, duration_s=duration_s, seed=seed)
            for label in candidates
        )
        pending.append((load, own_choice.config_label, candidates))

    results = iter(get_runner(runner).results(specs))
    rows = []
    for load, own_label, candidates in pending:
        own_eff, _ = _efficiency(next(results))
        candidate_evals = [_efficiency(next(results)) for _ in candidates]
        foreign_eff, foreign_label = 0.0, candidates[0] if candidates else own_label
        for label, (eff, met) in zip(candidates, candidate_evals):
            foreign_eff, foreign_label = eff, label
            if met:
                break
        rows.append(
            CrossRow(
                load=load,
                own_config=own_label,
                foreign_config=foreign_label,
                efficiency_ratio=foreign_eff / own_eff if own_eff > 0 else 0.0,
            )
        )
    return tuple(rows)


def run(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    loads: tuple[float, ...] = PAPER_LOAD_LEVELS,
    runner: BatchRunner | None = None,
) -> Fig3Result:
    """Regenerate Figure 3 from fresh Figure 2 sweeps."""
    duration = 20.0 if quick else 40.0
    mc = run_fig2("memcached", quick=quick, seed=seed, loads=loads, runner=runner)
    ws = run_fig2("websearch", quick=quick, seed=seed, loads=loads, runner=runner)
    return Fig3Result(
        memcached_rows=_cross_rows(
            "memcached", mc, ws, duration_s=duration, seed=seed, runner=runner
        ),
        websearch_rows=_cross_rows(
            "websearch", ws, mc, duration_s=duration, seed=seed, runner=runner
        ),
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(quick=True).render())
