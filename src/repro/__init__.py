"""Reproduction of *Hipster: Hybrid Task Manager for Latency-Critical
Cloud Workloads* (Nishtala, Carpenter, Petrucci, Martorell -- HPCA 2017).

The package is organized as the paper's system plus everything it runs on:

* :mod:`repro.hardware` -- a calibrated model of the ARM Juno R1 board;
* :mod:`repro.workloads` -- Memcached / Web-Search service models and
  SPEC CPU2006 batch program models;
* :mod:`repro.loadgen` -- diurnal / ramp / spike load traces;
* :mod:`repro.sim` -- the queueing substrate, interval co-simulator and
  the parallel :class:`~repro.sim.batch.BatchRunner`;
* :mod:`repro.scenarios` -- declarative scenario specs and the registry;
* :mod:`repro.fleet` -- multi-node cluster simulation (FleetSpec, load
  balancers, fleet-level aggregation);
* :mod:`repro.core` -- Hipster itself (heuristic mapper + Q-learning);
* :mod:`repro.policies` -- Octopus-Man and static baselines;
* :mod:`repro.metrics` -- QoS guarantee / tardiness / energy summaries;
* :mod:`repro.experiments` -- one module per paper table and figure.

Quickstart (the stable facade lives in :mod:`repro.api`)::

    from repro.api import run_scenario

    outcome = run_scenario("diurnal-policy", workload="memcached",
                           manager="hipster-in", quick=True)
    print(outcome.result.qos_guarantee(), outcome.result.mean_power_w())
"""

from repro.api import open_runner, run_pack, run_scenario, sweep
from repro.core import (
    Hipster,
    HipsterHeuristicPolicy,
    HipsterParams,
    Variant,
    hipster_co,
    hipster_in,
)
from repro.fleet import FleetOutcome, FleetSpec, run_fleet
from repro.hardware import Configuration, juno_r1
from repro.errors import (
    PackError,
    ReproError,
    UnknownNameError,
    UnknownParamError,
)
from repro.loadgen import (
    ConcatTrace,
    ConstantTrace,
    DiurnalTrace,
    LoadTrace,
    MMPPTrace,
    RampTrace,
    ReplayTrace,
    SampledTrace,
    SpikeTrace,
    StepTrace,
)
from repro.policies import (
    OctopusMan,
    StaticPolicy,
    TaskManager,
    static_all_big,
    static_all_small,
)
from repro.scenarios import (
    DEFAULT_REGISTRY,
    ScenarioOutcome,
    ScenarioSpec,
    TraceSpec,
)
from repro.sim import BatchRunner, ExperimentResult, IntervalSimulator, run_experiment
from repro.workloads import (
    BatchJobSet,
    BatchProgram,
    LatencyCriticalWorkload,
    memcached,
    spec_job_set,
    spec_mix,
    websearch,
)

__version__ = "1.0.0"

__all__ = [
    "BatchJobSet",
    "BatchRunner",
    "DEFAULT_REGISTRY",
    "ScenarioOutcome",
    "ScenarioSpec",
    "TraceSpec",
    "ConcatTrace",
    "BatchProgram",
    "Configuration",
    "ConstantTrace",
    "DiurnalTrace",
    "ExperimentResult",
    "FleetOutcome",
    "FleetSpec",
    "Hipster",
    "HipsterHeuristicPolicy",
    "HipsterParams",
    "IntervalSimulator",
    "LatencyCriticalWorkload",
    "LoadTrace",
    "MMPPTrace",
    "OctopusMan",
    "PackError",
    "RampTrace",
    "ReplayTrace",
    "ReproError",
    "SampledTrace",
    "SpikeTrace",
    "StaticPolicy",
    "StepTrace",
    "TaskManager",
    "UnknownNameError",
    "UnknownParamError",
    "Variant",
    "hipster_co",
    "hipster_in",
    "juno_r1",
    "memcached",
    "open_runner",
    "run_experiment",
    "run_fleet",
    "run_pack",
    "run_scenario",
    "sweep",
    "spec_job_set",
    "spec_mix",
    "static_all_big",
    "static_all_small",
    "websearch",
    "__version__",
]
