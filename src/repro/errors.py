"""The library's user-facing error types.

Every error a caller can trigger by naming or parameterizing something
wrongly derives from :class:`ReproError`, so the public facade
(:mod:`repro.api`) and the CLI can catch one type and surface a clean,
actionable message.  The concrete classes double-inherit from the
builtin exceptions the pre-facade code raised (``KeyError`` /
``TypeError`` / ``ValueError``), so callers written against the old
contracts keep working.

Messages are *actionable* by construction: an unknown name lists the
valid choices and appends a ``difflib``-based "did you mean" suggestion
when one is close enough.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Sequence


def suggest(name: str, choices: Iterable[str]) -> str | None:
    """The closest valid choice to ``name``, if any is plausibly meant."""
    matches = difflib.get_close_matches(name, list(choices), n=1, cutoff=0.5)
    return matches[0] if matches else None


def _choices_clause(name: str, choices: Sequence[str]) -> str:
    clause = f"valid choices: {', '.join(sorted(choices))}"
    best = suggest(name, choices)
    if best is not None:
        clause += f" (did you mean {best!r}?)"
    return clause


class ReproError(Exception):
    """Base class of every error the public API raises on bad input."""


class UnknownNameError(ReproError, KeyError):
    """An unknown registry key: scenario family, workload, manager, ...

    ``str()`` returns the full actionable message (``KeyError``'s default
    ``repr``-of-args rendering is overridden), so the CLI can hand it to
    ``parser.error`` verbatim.
    """

    def __init__(self, kind: str, name: str, choices: Sequence[str]):
        message = f"unknown {kind} {name!r}; {_choices_clause(name, choices)}"
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.choices = tuple(sorted(choices))

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class UnknownParamError(ReproError, TypeError):
    """Unknown keyword argument(s) for a known factory or family."""

    def __init__(
        self, target: str, unknown: Sequence[str], accepted: Sequence[str]
    ):
        parts = []
        for name in sorted(unknown):
            clause = f"unknown parameter {name!r}"
            best = suggest(name, accepted)
            if best is not None:
                clause += f" (did you mean {best!r}?)"
            parts.append(clause)
        message = (
            f"{target}: {'; '.join(parts)}; "
            f"accepted parameters: {', '.join(sorted(accepted))}"
        )
        super().__init__(message)
        self.target = target
        self.unknown = tuple(sorted(unknown))
        self.accepted = tuple(sorted(accepted))


class PackError(ReproError, ValueError):
    """A scenario pack failed to parse, validate or compile.

    ``path`` locates the offending clause inside the pack document
    (e.g. ``scenarios[2].trace.kind``) and is prepended to the message.
    """

    def __init__(self, message: str, *, path: str = ""):
        full = f"{path}: {message}" if path else message
        super().__init__(full)
        self.path = path


class ExecutionError(ReproError, RuntimeError):
    """A scenario could not be executed, after the supervisor's retries.

    Unlike the naming/validation errors above this is a *runtime*
    failure: the spec was well-formed but running it crashed a worker,
    hung past its watchdog deadline, or raised inside the engine.
    ``fingerprint`` identifies the culprit spec (its cache key), so a
    caller can drop or pin exactly that run; everything else in the
    batch completes normally and lands in the cache.
    """

    def __init__(
        self,
        message: str,
        *,
        fingerprint: str = "",
        spec_description: str = "",
    ):
        super().__init__(message)
        self.fingerprint = fingerprint
        self.spec_description = spec_description


class WorkerCrashError(ExecutionError):
    """One spec repeatedly killed its worker process (a *poison spec*).

    The supervisor only raises this after isolating the spec through
    chunk bisection and confirming the crash with a solo dispatch, so
    the named fingerprint really is the culprit, not a victim that
    shared a pool with one.
    """


class SpecTimeoutError(ExecutionError):
    """One spec repeatedly overran its watchdog deadline (hung)."""

    def __init__(self, message: str, *, timeout_s: float = 0.0, **kwargs):
        super().__init__(message, **kwargs)
        self.timeout_s = timeout_s


class SpecFailedError(ExecutionError):
    """The engine raised a Python exception while running one spec.

    Deterministic by the purity contract (a run is a pure function of
    its spec), so it is not retried; ``exception_type`` carries the
    original class name across the process boundary.
    """

    def __init__(self, message: str, *, exception_type: str = "", **kwargs):
        super().__init__(message, **kwargs)
        self.exception_type = exception_type


class RunInterruptedError(ReproError):
    """The run was stopped early (SIGINT/SIGTERM) after a clean drain.

    In-flight chunks were allowed to finish and their outcomes were
    flushed to the cache and journal before this was raised, so a
    ``--resume`` rerun continues from exactly this point.
    """

    def __init__(self, message: str, *, remaining: int = 0):
        super().__init__(message)
        self.remaining = remaining


class ResumeMismatchError(ReproError):
    """``--resume`` named a journal written by a *different* run.

    Resuming under changed run parameters (seed, workload, quick mode,
    code version) would silently mix two runs' outputs; starting fresh
    (drop ``--resume`` or the journal file) is always safe.
    """


__all__ = [
    "ExecutionError",
    "PackError",
    "ReproError",
    "ResumeMismatchError",
    "RunInterruptedError",
    "SpecFailedError",
    "SpecTimeoutError",
    "UnknownNameError",
    "UnknownParamError",
    "WorkerCrashError",
    "suggest",
]
