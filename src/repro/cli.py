"""Command-line entry point: regenerate any paper table or figure.

Usage::

    hipster-repro table2
    hipster-repro fig2 --workload websearch
    hipster-repro fig11 --quick --seed 7
    hipster-repro calibrate
    hipster-repro all --quick

``--quick`` compresses run lengths (CI-friendly); without it the runs
match the paper's durations.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import EXPERIMENTS
from repro.experiments.calibration import calibrate_demand
from repro.experiments.runner import DEFAULT_SEED
from repro.hardware.juno import juno_r1
from repro.workloads.memcached import memcached
from repro.workloads.websearch import websearch

_WORKLOAD_EXPERIMENTS = {"fig2", "fig5"}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="hipster-repro",
        description="Reproduce tables and figures from the Hipster paper (HPCA 2017).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["calibrate", "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--workload",
        choices=["memcached", "websearch"],
        default="memcached",
        help="workload for per-workload experiments (fig2, fig5)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="compressed run lengths (CI-friendly)"
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="experiment seed"
    )
    return parser


def _run_one(name: str, args: argparse.Namespace) -> str:
    module = EXPERIMENTS[name]
    kwargs: dict[str, object] = {"quick": args.quick}
    if name in _WORKLOAD_EXPERIMENTS:
        result = module.run(args.workload, quick=args.quick, seed=args.seed)
    elif name == "table2":
        result = module.run(quick=args.quick)
    else:
        result = module.run(quick=args.quick, seed=args.seed)
    del kwargs
    return result.render()


def _run_calibration() -> str:
    platform = juno_r1()
    lines = ["Calibration (Table 1 methodology):"]
    for workload in (memcached(), websearch()):
        outcome = calibrate_demand(platform, workload)
        lines.append(
            f"  {outcome.workload_name}: demand_mean_ms={outcome.demand_mean_ms:.5f} "
            f"edge_tail={outcome.edge_tail_ms:.2f} ms "
            f"(target {outcome.target_ms:.0f} ms, error {outcome.relative_error:.1%})"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "calibrate":
        print(_run_calibration())
        return 0
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS):
            print(f"\n=== {name} ===")
            print(_run_one(name, args))
        return 0
    print(_run_one(args.experiment, args))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    sys.exit(main())
