"""Command-line entry point: regenerate any paper table or figure.

Usage::

    hipster-repro table2
    hipster-repro fig2 --workload websearch
    hipster-repro fig11 --quick --seed 7
    hipster-repro calibrate
    hipster-repro all --quick --jobs 4 --cache-dir .hipster-cache
    hipster-repro fleet --quick --nodes 64 --balancer power-aware --jobs 4
    hipster-repro bench --output BENCH_engine.json
    hipster-repro bench-batch --output BENCH_batch.json

``--quick`` compresses run lengths (CI-friendly); without it the runs
match the paper's durations.  ``--jobs N`` fans scenario batches out
over N worker processes in one *persistent* pool shared by every
experiment of the invocation, and ``--cache-dir`` adds the on-disk
cache tier keyed by scenario fingerprint, so repeated ``all``
invocations only re-run what changed (duplicates within one invocation
are served by the in-process tier either way).  ``fleet`` simulates a
multi-node cluster (see :mod:`repro.fleet`); its node runs fan out over
the same pool and cache.  ``bench`` runs the interval-engine
micro-benchmark (see :mod:`repro.sim.bench`) and ``bench-batch`` the
batch-layer one (see :mod:`repro.sim.bench_batch`); they write the
performance trajectories to ``BENCH_engine.json`` /
``BENCH_batch.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments import EXPERIMENTS
from repro.experiments.calibration import calibrate_demand
from repro.experiments.runner import DEFAULT_SEED
from repro.fleet.balancer import BALANCER_FACTORIES
from repro.hardware.juno import juno_r1
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner
from repro.workloads.memcached import memcached
from repro.workloads.websearch import websearch

#: Experiments that take a workload argument; for every other experiment
#: passing ``--workload`` is an error (it would be silently ignored).
_WORKLOAD_EXPERIMENTS = {"fig2", "fig5", "fleet", "fleet-scale"}

_DEFAULT_WORKLOAD = "memcached"

_DEFAULT_FLEET_NODES = 8
_DEFAULT_BALANCER = "round-robin"


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="hipster-repro",
        description="Reproduce tables and figures from the Hipster paper (HPCA 2017).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["bench", "bench-batch", "calibrate", "all", "fleet"],
        help=(
            "which artifact to regenerate ('fleet' simulates a cluster, "
            "'bench' records the engine performance trajectory, "
            "'bench-batch' the batch-layer one)"
        ),
    )
    parser.add_argument(
        "--workload",
        choices=["memcached", "websearch"],
        default=None,
        help=(
            "workload for per-workload experiments "
            f"({', '.join(sorted(_WORKLOAD_EXPERIMENTS))}); "
            f"default {_DEFAULT_WORKLOAD}"
        ),
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        metavar="N",
        help=f"fleet size ('fleet' only; default {_DEFAULT_FLEET_NODES})",
    )
    parser.add_argument(
        "--balancer",
        choices=sorted(BALANCER_FACTORIES),
        default=None,
        help=f"fleet load-balancer policy ('fleet' only; default {_DEFAULT_BALANCER})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="compressed run lengths (CI-friendly)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=f"experiment seed (default {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for scenario batches (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache scenario results on disk; re-runs only what changed",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help=(
            "output file for 'bench'/'bench-batch' "
            "(defaults: BENCH_engine.json / BENCH_batch.json)"
        ),
    )
    return parser


def _run_one(name: str, args: argparse.Namespace, runner: BatchRunner) -> str:
    """Run one experiment module with the shared batch runner."""
    module = EXPERIMENTS[name]
    if name in _WORKLOAD_EXPERIMENTS:
        result = module.run(
            args.workload or _DEFAULT_WORKLOAD,
            quick=args.quick,
            seed=args.seed,
            runner=runner,
        )
    else:
        result = module.run(quick=args.quick, seed=args.seed, runner=runner)
    return result.render()


def _run_fleet(args: argparse.Namespace, runner: BatchRunner) -> str:
    """Run one fleet over the diurnal day and render the cluster report."""
    spec = DEFAULT_REGISTRY.build(
        "fleet-diurnal",
        workload=args.workload or _DEFAULT_WORKLOAD,
        n_nodes=args.nodes if args.nodes is not None else _DEFAULT_FLEET_NODES,
        balancer=args.balancer or _DEFAULT_BALANCER,
        quick=args.quick,
        seed=args.seed,
    )
    return spec.run(runner).render()


def _run_calibration(runner: BatchRunner) -> str:
    platform = juno_r1()
    lines = ["Calibration (Table 1 methodology):"]
    for workload in (memcached(), websearch()):
        outcome = calibrate_demand(platform, workload, runner=runner)
        lines.append(
            f"  {outcome.workload_name}: demand_mean_ms={outcome.demand_mean_ms:.5f} "
            f"edge_tail={outcome.edge_tail_ms:.2f} ms "
            f"(target {outcome.target_ms:.0f} ms, error {outcome.relative_error:.1%})"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.cache_dir is not None:
        from pathlib import Path

        if Path(args.cache_dir).exists() and not Path(args.cache_dir).is_dir():
            parser.error(
                f"--cache-dir {args.cache_dir!r} exists and is not a directory"
            )
    if args.output is not None and args.experiment not in ("bench", "bench-batch"):
        parser.error(
            f"--output only applies to 'bench' and 'bench-batch'; "
            f"'{args.experiment}' ignores it"
        )
    if args.experiment in ("bench", "bench-batch"):
        # The benchmark protocols are fixed (seed, run lengths, worker
        # counts) so their numbers stay comparable; reject knobs they
        # would silently ignore.
        name = args.experiment
        if args.quick:
            parser.error(f"--quick does not apply to '{name}'")
        if args.seed is not None:
            parser.error(f"--seed does not apply to '{name}' (fixed protocol)")
        if args.jobs != 1:
            parser.error(f"--jobs does not apply to '{name}' (fixed protocol)")
        if args.cache_dir is not None:
            parser.error(f"--cache-dir does not apply to '{name}'")
    if args.seed is None:
        args.seed = DEFAULT_SEED
    workload_aware = (
        args.experiment in _WORKLOAD_EXPERIMENTS or args.experiment == "all"
    )
    if args.workload is not None and not workload_aware:
        parser.error(
            f"--workload only applies to {', '.join(sorted(_WORKLOAD_EXPERIMENTS))} "
            f"(and 'all'); '{args.experiment}' ignores it"
        )
    if args.experiment != "fleet":
        for flag in ("nodes", "balancer"):
            if getattr(args, flag) is not None:
                parser.error(
                    f"--{flag} only applies to 'fleet'; "
                    f"'{args.experiment}' ignores it"
                )
    elif args.nodes is not None and args.nodes < 1:
        parser.error("--nodes must be >= 1")

    if args.experiment == "bench":
        from repro.sim.bench import render_report, write_report

        output = args.output or "BENCH_engine.json"
        report = write_report(output)
        print(render_report(report))
        print(f"\nwrote {output}")
        return 0
    if args.experiment == "bench-batch":
        from repro.sim.bench_batch import render_report, write_report

        output = args.output or "BENCH_batch.json"
        report = write_report(output)
        print(render_report(report))
        print(f"\nwrote {output}")
        return 0

    # One runner -- hence one persistent worker pool and one two-tier
    # cache -- is shared by every experiment of the invocation; the
    # ``with`` block shuts the pool down on the way out.
    with BatchRunner(jobs=args.jobs, cache_dir=args.cache_dir) as runner:
        if args.experiment == "fleet":
            t0 = time.perf_counter()
            print(_run_fleet(args, runner))
            _report_stats(runner, [("fleet", time.perf_counter() - t0)])
            return 0
        if args.experiment == "calibrate":
            print(_run_calibration(runner))
            return 0
        if args.experiment == "all":
            walls = []
            for name in sorted(EXPERIMENTS):
                print(f"\n=== {name} ===")
                t0 = time.perf_counter()
                print(_run_one(name, args, runner))
                walls.append((name, time.perf_counter() - t0))
            _report_stats(runner, walls)
            return 0
        print(_run_one(args.experiment, args, runner))
    return 0


def render_stats(
    runner: BatchRunner, walls: Sequence[tuple[str, float]] = ()
) -> list[str]:
    """Cache / pool / wall-clock summary lines for one invocation.

    ``[cache]`` appears when an on-disk cache is configured, ``[pool]``
    when worker processes were actually spawned, and ``[wall]`` when
    per-experiment timings were collected.
    """
    lines = []
    if runner.cache_dir is not None:
        lines.append(
            f"[cache] {runner.cache_hits} hit(s) "
            f"({runner.memory_hits} memory, {runner.disk_hits} disk), "
            f"{runner.cache_misses} miss(es) in {runner.cache_dir}"
        )
    if runner.pool_spawns:
        lines.append(
            f"[pool] {runner.jobs} worker(s) "
            f"(spawned {runner.pool_spawns} pool(s)), "
            f"{runner.specs_dispatched} spec(s) dispatched in "
            f"{runner.chunks_dispatched} chunk(s), "
            f"{runner.cache_hits} served from cache"
        )
    if walls:
        total = sum(wall for _, wall in walls)
        lines.append(
            "[wall] "
            + " | ".join(f"{name} {wall:.2f}s" for name, wall in walls)
            + f" | total {total:.2f}s"
        )
    return lines


def _report_stats(
    runner: BatchRunner, walls: Sequence[tuple[str, float]] = ()
) -> None:
    """Statistics on stderr (stdout stays byte-stable across runs)."""
    lines = render_stats(runner, walls)
    if lines:
        print("\n" + "\n".join(lines), file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    sys.exit(main())
