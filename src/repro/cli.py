"""Command-line entry point: regenerate any paper table or figure.

Usage::

    hipster-repro table2
    hipster-repro fig2 --workload websearch
    hipster-repro fig11 --quick --seed 7
    hipster-repro calibrate
    hipster-repro all --quick --jobs 4 --cache-dir .hipster-cache
    hipster-repro fleet --quick --nodes 64 --balancer power-aware --jobs 4
    hipster-repro pack validate packs/*.yaml
    hipster-repro pack list
    hipster-repro pack run packs/ci-smoke.yaml --jobs 2 --output summary.json
    hipster-repro bench --output BENCH_engine.json
    hipster-repro bench-batch --output BENCH_batch.json

``--quick`` compresses run lengths (CI-friendly); without it the runs
match the paper's durations.  ``--jobs N`` fans scenario batches out
over N worker processes in one *persistent* pool shared by every
experiment of the invocation, and ``--cache-dir`` adds the on-disk
cache tier keyed by scenario fingerprint, so repeated ``all``
invocations only re-run what changed (duplicates within one invocation
are served by the in-process tier either way).  ``fleet`` simulates a
multi-node cluster (see :mod:`repro.fleet`); ``pack`` validates, lists
or runs declarative scenario packs (see :mod:`repro.packs`); ``bench``
runs the interval-engine micro-benchmark (see :mod:`repro.sim.bench`)
and ``bench-batch`` the batch-layer one (see
:mod:`repro.sim.bench_batch`); they write the performance trajectories
to ``BENCH_engine.json`` / ``BENCH_batch.json``.

Flag applicability is enforced by one shared validator table
(:data:`_FLAG_RULES`): a flag a command would silently ignore is a
``parser.error``, with the same message shape everywhere.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.errors import (
    ExecutionError,
    ResumeMismatchError,
    RunInterruptedError,
)
from repro.experiments import EXPERIMENTS
from repro.experiments.calibration import calibrate_demand
from repro.experiments.runner import DEFAULT_SEED
from repro.fleet.balancer import BALANCER_FACTORIES
from repro.hardware.juno import juno_r1
from repro.scenarios import DEFAULT_REGISTRY
from repro.sim.batch import BatchRunner
from repro.sim.supervise import JOURNAL_NAME, RunJournal
from repro.workloads.memcached import memcached
from repro.workloads.websearch import websearch

#: Process exit code for execution failures (worker crash / watchdog
#: timeout / engine exception surviving the supervisor's retries);
#: validation errors keep argparse's 2, interrupts exit 130 (128+INT).
EXIT_EXECUTION_FAILURE = 3
EXIT_INTERRUPTED = 130

_EPILOG = """\
exit codes:
  0    success -- including partial pack success (warning on stderr)
  2    usage or validation error (bad flag, malformed pack)
  3    execution failure: worker crash, watchdog timeout or engine
       error that survived the supervisor's retries
  130  interrupted (SIGINT/SIGTERM) after draining in-flight work;
       rerun with --resume to continue from the journal
"""

#: Experiments that take a workload argument; for every other experiment
#: passing ``--workload`` is an error (it would be silently ignored).
_WORKLOAD_EXPERIMENTS = {"fig2", "fig5", "fleet", "fleet-scale"}

_DEFAULT_WORKLOAD = "memcached"

_DEFAULT_FLEET_NODES = 8
_DEFAULT_BALANCER = "round-robin"

#: The benchmark protocols are fixed (seed, run lengths, worker counts)
#: so their numbers stay comparable; they reject the run-shaping knobs.
_FIXED_PROTOCOL = {"bench", "bench-batch"}

#: The actions ``hipster-repro pack`` accepts.
_PACK_ACTIONS = ("validate", "list", "run")

#: Directory the pack commands fall back to when no files are given.
_DEFAULT_PACK_DIR = "packs"


def _applies_everywhere_but_fixed(command: str) -> bool:
    return command not in _FIXED_PROTOCOL


#: The shared flag-validator table: ``(flag, attr, is_set, applies,
#: targets)``.  ``is_set`` detects a non-default value, ``applies``
#: decides whether the command consumes the flag, and ``targets``
#: renders the commands that do.  Every rule produces the same message
#: shape through :func:`_validate_flags`, so adding a flag (or a
#: command) is one table row instead of another ad-hoc ``if``.
_FLAG_RULES = (
    (
        "--workload",
        "workload",
        lambda v: v is not None,
        lambda c: c in _WORKLOAD_EXPERIMENTS or c == "all",
        lambda: f"{', '.join(sorted(_WORKLOAD_EXPERIMENTS))} (and 'all')",
    ),
    (
        "--nodes",
        "nodes",
        lambda v: v is not None,
        lambda c: c == "fleet",
        lambda: "'fleet'",
    ),
    (
        "--balancer",
        "balancer",
        lambda v: v is not None,
        lambda c: c == "fleet",
        lambda: "'fleet'",
    ),
    (
        "--quick",
        "quick",
        lambda v: bool(v),
        _applies_everywhere_but_fixed,
        lambda: "experiment, fleet and pack commands",
    ),
    (
        "--seed",
        "seed",
        lambda v: v is not None,
        lambda c: c not in _FIXED_PROTOCOL and c != "pack",
        lambda: "experiment and fleet commands (pack documents pin their own seeds)",
    ),
    (
        "--jobs",
        "jobs",
        lambda v: v != 1,
        _applies_everywhere_but_fixed,
        lambda: "experiment, fleet and pack commands",
    ),
    (
        "--cache-dir",
        "cache_dir",
        lambda v: v is not None,
        _applies_everywhere_but_fixed,
        lambda: "experiment, fleet and pack commands",
    ),
    (
        "--output",
        "output",
        lambda v: v is not None,
        lambda c: c in _FIXED_PROTOCOL or c == "pack",
        lambda: "'bench', 'bench-batch' and 'pack run'",
    ),
    (
        "--resume",
        "resume",
        lambda v: bool(v),
        _applies_everywhere_but_fixed,
        lambda: "experiment, fleet and pack commands",
    ),
    (
        "--strict",
        "strict",
        lambda v: bool(v),
        lambda c: c == "pack",
        lambda: "'pack run'",
    ),
    (
        "pack arguments",
        "pack_args",
        lambda v: bool(v),
        lambda c: c == "pack",
        lambda: "'pack'",
    ),
)


def _validate_flags(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Reject any flag the selected command would silently ignore."""
    command = args.experiment
    for flag, attr, is_set, applies, targets in _FLAG_RULES:
        if not is_set(getattr(args, attr)) or applies(command):
            continue
        if command in _FIXED_PROTOCOL:
            parser.error(
                f"{flag} does not apply to '{command}' (fixed protocol)"
            )
        verb = "applies" if flag.startswith("--") else "apply"
        parser.error(
            f"{flag} only {verb} to {targets()}; '{command}' ignores it"
        )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="hipster-repro",
        description="Reproduce tables and figures from the Hipster paper (HPCA 2017).",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["bench", "bench-batch", "calibrate", "all", "fleet", "pack"],
        help=(
            "which artifact to regenerate ('fleet' simulates a cluster, "
            "'pack' validates/lists/runs scenario packs, "
            "'bench' records the engine performance trajectory, "
            "'bench-batch' the batch-layer one)"
        ),
    )
    parser.add_argument(
        "pack_args",
        nargs="*",
        metavar="pack-arg",
        help=(
            "for 'pack': an action (validate|list|run) followed by pack "
            "files (defaults to the packs/ directory)"
        ),
    )
    parser.add_argument(
        "--workload",
        choices=["memcached", "websearch"],
        default=None,
        help=(
            "workload for per-workload experiments "
            f"({', '.join(sorted(_WORKLOAD_EXPERIMENTS))}); "
            f"default {_DEFAULT_WORKLOAD}"
        ),
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        metavar="N",
        help=f"fleet size ('fleet' only; default {_DEFAULT_FLEET_NODES})",
    )
    parser.add_argument(
        "--balancer",
        choices=sorted(BALANCER_FACTORIES),
        default=None,
        help=f"fleet load-balancer policy ('fleet' only; default {_DEFAULT_BALANCER})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="compressed run lengths (CI-friendly)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=f"experiment seed (default {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for scenario batches (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache scenario results on disk; re-runs only what changed",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help=(
            "output file for 'bench'/'bench-batch' "
            "(defaults: BENCH_engine.json / BENCH_batch.json)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue an interrupted run from the journal in "
            "--cache-dir (output stays byte-identical to an "
            "uninterrupted run)"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="'pack run': any failed entry makes the exit code nonzero",
    )
    return parser


def _journal_header(args: argparse.Namespace) -> dict:
    """The run identity recorded in (and checked against) the journal.

    Everything that shapes *output bytes* is included; knobs that only
    shape execution (``--jobs``, cache placement) are not, so a run may
    be resumed with different parallelism.
    """
    from repro.scenarios.spec import cache_key_prefix

    return {
        "command": args.experiment,
        "workload": args.workload,
        "nodes": args.nodes,
        "balancer": args.balancer,
        "quick": bool(args.quick),
        "seed": args.seed,
        "schema": cache_key_prefix(),
    }


def _open_journal(
    runner: BatchRunner, args: argparse.Namespace, header: dict
) -> None:
    """Attach a run journal to the runner (``--cache-dir`` runs only)."""
    from pathlib import Path

    if args.cache_dir is None:
        return
    runner.journal = RunJournal.open(
        Path(args.cache_dir) / JOURNAL_NAME, header, resume=args.resume
    )
    if args.resume:
        print(f"[journal] {runner.journal.describe()}", file=sys.stderr)


def _finish_journal(runner: BatchRunner) -> None:
    """Truncate the journal after a fully successful run.

    A completed run has nothing for ``--resume`` to pick up (every
    outcome is cached), so keeping its fingerprint lines only grows
    ``journal.log`` across invocations.  Interrupted or failed runs
    keep their journal: those are exactly the ones worth resuming.
    """
    if (
        runner.journal is not None
        and not runner.stop_requested
        and not runner.specs_failed
    ):
        runner.journal.truncate()


@contextmanager
def _partial_summary(runner: BatchRunner) -> Iterator[None]:
    """On a graceful interrupt, report progress before propagating.

    The stats plus the journal line *are* the partial summary: what was
    cached, what was journaled, how far the run got -- enough to judge
    whether ``--resume`` is worth it.
    """
    try:
        yield
    except RunInterruptedError:
        _report_stats(runner)
        if runner.journal is not None:
            print(f"[journal] {runner.journal.describe()}", file=sys.stderr)
        raise


@contextmanager
def _stop_signals(runner: BatchRunner) -> Iterator[None]:
    """Turn SIGINT/SIGTERM into a graceful stop request for the block.

    The handler only sets a flag: in-flight chunks drain, their
    outcomes reach cache and journal, and the run surfaces a
    :class:`~repro.errors.RunInterruptedError` (exit 130) instead of
    dying mid-write.  Previous handlers are restored on exit.
    """
    import signal as _signal

    def _handler(signum, frame):  # pragma: no cover - signal timing
        runner.request_stop()
        name = _signal.Signals(signum).name
        print(
            f"\n[{name}] stopping: draining in-flight work "
            "(repeat to kill)...",
            file=sys.stderr,
        )
        # A second signal falls through to the default handler: the
        # user asked twice, stop absorbing it.
        _signal.signal(signum, previous.get(signum, _signal.SIG_DFL))

    previous: dict = {}
    try:
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            try:
                previous[sig] = _signal.signal(sig, _handler)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        yield
    finally:
        for sig, old in previous.items():
            try:
                _signal.signal(sig, old)
            except ValueError:  # pragma: no cover
                pass


def _run_one(name: str, args: argparse.Namespace, runner: BatchRunner) -> str:
    """Run one experiment module with the shared batch runner."""
    module = EXPERIMENTS[name]
    if name in _WORKLOAD_EXPERIMENTS:
        result = module.run(
            args.workload or _DEFAULT_WORKLOAD,
            quick=args.quick,
            seed=args.seed,
            runner=runner,
        )
    else:
        result = module.run(quick=args.quick, seed=args.seed, runner=runner)
    return result.render()


def _run_fleet(args: argparse.Namespace, runner: BatchRunner) -> str:
    """Run one fleet over the diurnal day and render the cluster report."""
    spec = DEFAULT_REGISTRY.build(
        "fleet-diurnal",
        workload=args.workload or _DEFAULT_WORKLOAD,
        n_nodes=args.nodes if args.nodes is not None else _DEFAULT_FLEET_NODES,
        balancer=args.balancer or _DEFAULT_BALANCER,
        quick=args.quick,
        seed=args.seed,
    )
    return spec.run(runner).render()


def _run_calibration(runner: BatchRunner) -> str:
    platform = juno_r1()
    lines = ["Calibration (Table 1 methodology):"]
    for workload in (memcached(), websearch()):
        outcome = calibrate_demand(platform, workload, runner=runner)
        lines.append(
            f"  {outcome.workload_name}: demand_mean_ms={outcome.demand_mean_ms:.5f} "
            f"edge_tail={outcome.edge_tail_ms:.2f} ms "
            f"(target {outcome.target_ms:.0f} ms, error {outcome.relative_error:.1%})"
        )
    return "\n".join(lines)


def _pack_files(
    parser: argparse.ArgumentParser, names: Sequence[str]
) -> list:
    """Resolve pack-file arguments, defaulting to the packs/ directory."""
    from pathlib import Path

    if not names:
        pack_dir = Path(_DEFAULT_PACK_DIR)
        if not pack_dir.is_dir():
            parser.error(
                f"no pack files given and no {_DEFAULT_PACK_DIR}/ directory here"
            )
        files = sorted(
            [*pack_dir.glob("*.yaml"), *pack_dir.glob("*.yml"),
             *pack_dir.glob("*.json")]
        )
        if not files:
            parser.error(f"no pack files in {pack_dir}/")
        return files
    return [Path(name) for name in names]


def _run_pack_command(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> int:
    """Dispatch ``pack validate|list|run`` (errors via ``parser.error``)."""
    from repro.errors import ReproError
    from repro.packs import compile_pack, load_pack, run_pack

    if not args.pack_args:
        parser.error(
            f"'pack' needs an action: {', '.join(_PACK_ACTIONS)}"
        )
    action, *names = args.pack_args
    if action not in _PACK_ACTIONS:
        from repro.errors import suggest

        message = (
            f"unknown pack action {action!r}; "
            f"valid choices: {', '.join(_PACK_ACTIONS)}"
        )
        best = suggest(action, _PACK_ACTIONS)
        if best is not None:
            message += f" (did you mean {best!r}?)"
        parser.error(message)
    files = _pack_files(parser, names)
    quick = True if args.quick else None

    def _pack_error(file, err) -> str:
        message = str(err)
        return message if message.startswith(str(file)) else f"{file}: {message}"

    if action == "validate":
        for file in files:
            try:
                pack = compile_pack(load_pack(file), quick=quick)
                pack.validate_buildable()
            except ReproError as err:
                parser.error(_pack_error(file, err))
            print(f"{file}: OK ({pack.name}, {len(pack.items)} run(s))")
        return 0

    if action == "list":
        rows = []
        for file in files:
            try:
                pack = compile_pack(load_pack(file), quick=quick)
            except ReproError as err:
                parser.error(_pack_error(file, err))
            rows.append(
                [pack.name, str(len(pack.items)), str(file), pack.description]
            )
        from repro.experiments.reporting import ascii_table

        print(ascii_table(["pack", "runs", "file", "description"], rows))
        return 0

    # action == "run"
    import json

    summaries = []
    failed_entries = 0
    every_pack_all_failed = True
    with BatchRunner(jobs=args.jobs, cache_dir=args.cache_dir) as runner:
        _open_journal(
            runner,
            args,
            {
                "command": "pack run",
                "files": [str(file) for file in files],
                "quick": bool(args.quick),
            },
        )
        with _stop_signals(runner), _partial_summary(runner):
            for file in files:
                try:
                    pack = compile_pack(load_pack(file), quick=quick)
                    pack.validate_buildable()
                except ReproError as err:
                    parser.error(_pack_error(file, err))
                t0 = time.perf_counter()
                result = run_pack(pack, runner=runner)
                print(result.render())
                print()
                summaries.append(result.summary())
                for key, error in result.failures():
                    failed_entries += 1
                    print(
                        f"[pack] {pack.name}:{key} failed: {error}",
                        file=sys.stderr,
                    )
                if not result.all_failed:
                    every_pack_all_failed = False
                _report_stats(runner, [(pack.name, time.perf_counter() - t0)])
            if failed_entries == 0:
                _finish_journal(runner)
    if args.output is not None:
        from pathlib import Path

        payload = summaries[0] if len(summaries) == 1 else summaries
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if failed_entries:
        if every_pack_all_failed or args.strict:
            print(
                f"hipster-repro: error: {failed_entries} pack "
                "entry(ies) failed",
                file=sys.stderr,
            )
            return EXIT_EXECUTION_FAILURE
        print(
            f"hipster-repro: warning: {failed_entries} pack entry(ies) "
            "failed; exiting 0 (partial success -- use --strict to fail)",
            file=sys.stderr,
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    0 success (including partial pack success), 2 validation error,
    3 execution failure after retries, 130 graceful interrupt -- the
    table in ``--help``'s epilog.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.nodes is not None and args.nodes < 1:
        parser.error("--nodes must be >= 1")
    if args.cache_dir is not None:
        from pathlib import Path

        if Path(args.cache_dir).exists() and not Path(args.cache_dir).is_dir():
            parser.error(
                f"--cache-dir {args.cache_dir!r} exists and is not a directory"
            )
    if args.resume and args.cache_dir is None:
        parser.error("--resume needs --cache-dir (the journal lives there)")
    _validate_flags(parser, args)
    try:
        return _dispatch(parser, args)
    except ResumeMismatchError as err:
        parser.error(str(err))
    except RunInterruptedError as err:
        print(f"hipster-repro: {err}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ExecutionError as err:
        print(f"hipster-repro: error: {err}", file=sys.stderr)
        return EXIT_EXECUTION_FAILURE


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Route the validated invocation (execution errors handled above)."""
    if args.experiment == "pack":
        return _run_pack_command(parser, args)
    if args.seed is None:
        args.seed = DEFAULT_SEED

    if args.experiment == "bench":
        from repro.sim.bench import render_report, write_report

        output = args.output or "BENCH_engine.json"
        report = write_report(output)
        print(render_report(report))
        print(f"\nwrote {output}")
        return 0
    if args.experiment == "bench-batch":
        from repro.sim.bench_batch import render_report, write_report

        output = args.output or "BENCH_batch.json"
        report = write_report(output)
        print(render_report(report))
        print(f"\nwrote {output}")
        return 0

    # One runner -- hence one persistent worker pool and one two-tier
    # cache -- is shared by every experiment of the invocation; the
    # ``with`` block shuts the pool down on the way out.
    with BatchRunner(jobs=args.jobs, cache_dir=args.cache_dir) as runner:
        _open_journal(runner, args, _journal_header(args))
        with _stop_signals(runner), _partial_summary(runner):
            if args.experiment == "fleet":
                t0 = time.perf_counter()
                print(_run_fleet(args, runner))
                _report_stats(runner, [("fleet", time.perf_counter() - t0)])
                _finish_journal(runner)
                return 0
            if args.experiment == "calibrate":
                print(_run_calibration(runner))
                _finish_journal(runner)
                return 0
            if args.experiment == "all":
                walls = []
                for name in sorted(EXPERIMENTS):
                    print(f"\n=== {name} ===")
                    t0 = time.perf_counter()
                    print(_run_one(name, args, runner))
                    walls.append((name, time.perf_counter() - t0))
                _report_stats(runner, walls)
                _finish_journal(runner)
                return 0
            print(_run_one(args.experiment, args, runner))
            _finish_journal(runner)
    return 0


def render_stats(
    runner: BatchRunner, walls: Sequence[tuple[str, float]] = ()
) -> list[str]:
    """Cache / pool / fault / wall-clock summary lines for one invocation.

    ``[cache]`` appears when an on-disk cache is configured, ``[pool]``
    when worker processes were actually spawned, ``[fault]`` when the
    supervision layer had anything to absorb, and ``[wall]`` when
    per-experiment timings were collected.
    """
    lines = []
    if runner.cache_dir is not None:
        corrupt = runner.disk.corrupt_entries if runner.disk else 0
        lines.append(
            f"[cache] {runner.cache_hits} hit(s) "
            f"({runner.memory_hits} memory, {runner.disk_hits} disk), "
            f"{runner.cache_misses} miss(es), corrupt={corrupt} "
            f"in {runner.cache_dir}"
        )
    if runner.pool_spawns:
        lines.append(
            f"[pool] {runner.jobs} worker(s) "
            f"(spawned {runner.pool_spawns} pool(s)), "
            f"{runner.specs_dispatched} spec(s) dispatched in "
            f"{runner.chunks_dispatched} chunk(s), "
            f"{runner.cache_hits} served from cache"
        )
    evictions = runner.disk.quarantine_evictions if runner.disk else 0
    faults = (
        runner.worker_crashes
        + runner.spec_timeouts
        + runner.chunk_retries
        + runner.chunk_bisections
        + runner.pool_rebuilds
        + runner.specs_failed
        + evictions
    )
    if faults or runner.degraded:
        line = (
            f"[fault] {runner.worker_crashes} worker crash(es), "
            f"{runner.spec_timeouts} timeout(s), "
            f"{runner.chunk_retries} chunk retry(ies), "
            f"{runner.chunk_bisections} bisection(s), "
            f"{runner.pool_rebuilds} pool rebuild(s), "
            f"{runner.specs_failed} spec(s) failed"
        )
        if evictions:
            line += f", {evictions} quarantine eviction(s)"
        if runner.degraded:
            line += " -- degraded to serial"
        lines.append(line)
    if walls:
        total = sum(wall for _, wall in walls)
        lines.append(
            "[wall] "
            + " | ".join(f"{name} {wall:.2f}s" for name, wall in walls)
            + f" | total {total:.2f}s"
        )
    return lines


def _report_stats(
    runner: BatchRunner, walls: Sequence[tuple[str, float]] = ()
) -> None:
    """Statistics on stderr (stdout stays byte-stable across runs)."""
    lines = render_stats(runner, walls)
    if lines:
        print("\n" + "\n".join(lines), file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    sys.exit(main())
