"""Core-assignment bookkeeping: ``sched_setaffinity`` and job control.

The paper's Mapper Module pins the latency-critical workload to cores with
``sched_setaffinity``, hands leftover cores to batch jobs, and parks batch
jobs with ``SIGSTOP``/``SIGCONT`` when no core is available for them.  This
module provides the same mechanics over the simulated platform and counts
core migrations, because migrations (unlike DVFS changes) are the expensive
transitions whose cost drives the paper's central QoS argument.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hardware.soc import Platform
from repro.hardware.topology import Configuration, validate_configuration


class Role(str, enum.Enum):
    """What a core is currently running."""

    LATENCY_CRITICAL = "lc"
    BATCH = "batch"
    IDLE = "idle"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Placement:
    """Result of applying a configuration: who runs where.

    ``batch_assignment`` maps core id to the index of the batch job running
    there; batch jobs not present in the mapping are suspended (SIGSTOP).
    """

    lc_cores: tuple[str, ...]
    batch_assignment: dict[str, int]
    migrated_cores: int
    migration_event: bool

    @property
    def idle_cores_of(self) -> frozenset[str]:  # pragma: no cover - helper
        return frozenset(self.batch_assignment)


@dataclass
class AffinityManager:
    """Tracks which cores the latency-critical and batch workloads occupy.

    Latency-critical cores are always the lowest-numbered cores of each
    cluster, which keeps placement deterministic and makes migration
    counting meaningful (a ``2B2S -> 2B2S`` redecision moves nothing).
    """

    platform: Platform
    _lc_cores: frozenset[str] = field(init=False, default_factory=frozenset)
    _migrated_cores_total: int = field(init=False, default=0)
    _migration_events: int = field(init=False, default=0)

    def lc_core_ids(self, config: Configuration) -> tuple[str, ...]:
        """Deterministic core ids for a configuration (big first)."""
        validate_configuration(self.platform, config)
        return (
            self.platform.big.core_ids[: config.n_big]
            + self.platform.small.core_ids[: config.n_small]
        )

    def apply(
        self,
        config: Configuration,
        *,
        n_batch_jobs: int = 0,
    ) -> Placement:
        """Pin the latency-critical workload and distribute batch jobs.

        Batch jobs are assigned one per remaining core (the paper runs as
        many batch program instances as there are cores left over); if
        there are fewer jobs than free cores the extras stay idle, and if
        there are more jobs than cores the surplus jobs are suspended.
        """
        lc_cores = self.lc_core_ids(config)
        new_lc = frozenset(lc_cores)
        moved = len(new_lc.symmetric_difference(self._lc_cores))
        event = moved > 0 and bool(self._lc_cores)
        if event:
            self._migration_events += 1
            self._migrated_cores_total += moved
        self._lc_cores = new_lc

        remaining = [cid for cid in self.platform.core_ids if cid not in new_lc]
        batch_assignment = {
            core_id: job for job, core_id in enumerate(remaining[:n_batch_jobs])
        }
        return Placement(
            lc_cores=lc_cores,
            batch_assignment=batch_assignment,
            migrated_cores=moved,
            migration_event=event,
        )

    def role_of(self, core_id: str, placement: Placement) -> Role:
        """Role of a core under a given placement."""
        if core_id in placement.lc_cores:
            return Role.LATENCY_CRITICAL
        if core_id in placement.batch_assignment:
            return Role.BATCH
        if core_id not in self.platform.core_ids:
            raise KeyError(f"unknown core id {core_id!r}")
        return Role.IDLE

    @property
    def migration_events(self) -> int:
        """Number of intervals whose reconfiguration moved at least one core."""
        return self._migration_events

    @property
    def migrated_cores_total(self) -> int:
        """Total count of cores that entered or left the LC set."""
        return self._migrated_cores_total
