"""Per-cluster DVFS control, emulating Linux ``acpi-cpufreq`` (userspace governor).

The paper controls DVFS through ``acpi-cpufreq`` and notes (Section 3.6,
citing Kasture et al.) that DVFS transitions cost microseconds while core
migrations cost milliseconds.  :class:`DVFSController` tracks the current
operating point of each cluster, validates requested frequencies against
the discrete operating-point table, and accounts transition counts and the
(small) cumulative transition latency so experiments can report both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cores import Cluster

#: Latency of one frequency transition, seconds (order of tens of
#: microseconds on Juno; negligible next to the 1 s monitoring interval).
DVFS_TRANSITION_LATENCY_S = 50e-6


@dataclass
class DVFSController:
    """Userspace-governor style frequency control over a set of clusters.

    The controller is the single writer of per-cluster frequency state;
    the engine and the power model read from it.
    """

    clusters: tuple[Cluster, ...]
    transition_latency_s: float = DVFS_TRANSITION_LATENCY_S
    _freq_by_cluster: dict[str, float] = field(init=False)
    _transitions: int = field(init=False, default=0)
    _transition_time_s: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names: {names}")
        self._freq_by_cluster = {c.name: c.max_freq_ghz for c in self.clusters}

    def _cluster(self, name: str) -> Cluster:
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise KeyError(f"unknown cluster {name!r}")

    def available_frequencies(self, cluster_name: str) -> tuple[float, ...]:
        """Operating points of a cluster, GHz ascending (scaling_available_frequencies)."""
        return self._cluster(cluster_name).core_type.freqs_ghz

    def frequency(self, cluster_name: str) -> float:
        """Current operating point of a cluster in GHz (scaling_cur_freq)."""
        if cluster_name not in self._freq_by_cluster:
            raise KeyError(f"unknown cluster {cluster_name!r}")
        return self._freq_by_cluster[cluster_name]

    def set_frequency(self, cluster_name: str, freq_ghz: float) -> bool:
        """Request an operating point; returns True if a transition occurred.

        Raises ``ValueError`` for frequencies that are not valid operating
        points, mirroring a write of an unsupported value to
        ``scaling_setspeed``.
        """
        cluster = self._cluster(cluster_name)
        cluster.core_type.validate_freq(freq_ghz)
        if self._freq_by_cluster[cluster_name] == freq_ghz:
            return False
        self._freq_by_cluster[cluster_name] = freq_ghz
        self._transitions += 1
        self._transition_time_s += self.transition_latency_s
        return True

    def set_max(self, cluster_name: str) -> bool:
        """Pin a cluster to its highest operating point."""
        return self.set_frequency(
            cluster_name, self._cluster(cluster_name).max_freq_ghz
        )

    def set_min(self, cluster_name: str) -> bool:
        """Pin a cluster to its lowest operating point."""
        return self.set_frequency(
            cluster_name, self._cluster(cluster_name).min_freq_ghz
        )

    @property
    def transitions(self) -> int:
        """Number of frequency transitions performed so far."""
        return self._transitions

    @property
    def transition_time_s(self) -> float:
        """Total time spent in frequency transitions, seconds."""
        return self._transition_time_s

    def snapshot(self) -> dict[str, float]:
        """Current frequency of every cluster, by cluster name."""
        return dict(self._freq_by_cluster)
