"""Hardware substrate: a calibrated model of the ARM Juno R1 platform.

The modules here replace the physical board the paper measures on: core and
cluster descriptions (:mod:`~repro.hardware.cores`), per-cluster DVFS
(:mod:`~repro.hardware.dvfs`), the power model and energy meters
(:mod:`~repro.hardware.power`), perf-style counters with the Juno idle bug
(:mod:`~repro.hardware.counters`), the configuration space
(:mod:`~repro.hardware.topology`), core pinning and job control
(:mod:`~repro.hardware.affinity`), the characterization microbenchmark
(:mod:`~repro.hardware.microbench`) and the calibrated Juno R1 factory
(:mod:`~repro.hardware.juno`).
"""

from repro.hardware.affinity import AffinityManager, Placement, Role
from repro.hardware.cores import Cluster, CoreKind, CoreType
from repro.hardware.counters import PerfCounters
from repro.hardware.dvfs import DVFSController
from repro.hardware.juno import juno_r1
from repro.hardware.microbench import (
    CharacterizationRow,
    characterize_cluster,
    characterize_platform,
)
from repro.hardware.power import EnergyMeter, PowerBreakdown, PowerModel
from repro.hardware.soc import KernelConfig, Platform
from repro.hardware.topology import (
    PAPER_FIG2C_LADDER,
    Configuration,
    config_by_label,
    config_capacity_ips,
    config_power_w,
    enumerate_configurations,
    octopus_man_ladder,
    rank_configurations,
    validate_configuration,
)

__all__ = [
    "AffinityManager",
    "CharacterizationRow",
    "Cluster",
    "Configuration",
    "CoreKind",
    "CoreType",
    "DVFSController",
    "EnergyMeter",
    "KernelConfig",
    "PAPER_FIG2C_LADDER",
    "PerfCounters",
    "Placement",
    "Platform",
    "PowerBreakdown",
    "PowerModel",
    "Role",
    "characterize_cluster",
    "characterize_platform",
    "config_by_label",
    "config_capacity_ips",
    "config_power_w",
    "enumerate_configurations",
    "juno_r1",
    "octopus_man_ladder",
    "rank_configurations",
    "validate_configuration",
]
