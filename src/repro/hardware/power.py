"""System power model and energy metering.

The Juno board exposes per-channel power registers (big cluster, small
cluster, and the rest of the system); the paper's QoS Monitor samples them
once per monitoring interval.  :class:`PowerModel` computes the same three
channels from the platform description plus per-core utilizations, and
:class:`EnergyMeter` integrates them over time, mimicking the cumulative
energy registers read by ARM's ``readenergy`` tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.hardware.cores import Cluster, CoreKind
from repro.hardware.soc import KernelConfig, Platform


@dataclass(frozen=True)
class ClusterPowerCoefficients:
    """Per-operating-point constants of one cluster's power law.

    ``power = static_w + sum_over_active_cores(dynamic_w * activity)``
    with ``activity = idle_fraction + (1 - idle_fraction) * utilization``.
    Hoisting these out of the interval loop removes the per-core
    frequency validation and voltage lookups from the hot path while
    keeping the arithmetic identical to
    :meth:`repro.hardware.cores.CoreType.dynamic_power_w`.
    """

    static_w: float
    dynamic_w: float
    idle_fraction: float

    def cluster_power_w(
        self, utilizations: np.ndarray, *, power_gate_idle: bool
    ) -> float:
        """Cluster power for per-core utilizations (dense, cluster order)."""
        total = self.static_w
        idle = self.idle_fraction
        busy = 1.0 - idle
        for util in utilizations:
            util = float(util)
            if not 0.0 <= util <= 1.0:
                raise ValueError(f"utilization must be within [0, 1], got {util}")
            if util == 0.0 and power_gate_idle:
                continue
            total += self.dynamic_w * (idle + busy * util)
        return total


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous power split by measurement channel, watts."""

    big_w: float
    small_w: float
    rest_w: float

    @property
    def total_w(self) -> float:
        """System power: sum of both clusters and the rest of the system."""
        return self.big_w + self.small_w + self.rest_w


@dataclass(frozen=True)
class PowerModel:
    """Computes per-channel power from frequencies and core utilizations."""

    platform: Platform
    kernel: KernelConfig = KernelConfig()
    #: Per-(cluster, frequency) coefficient memo; operating points are a
    #: small discrete set, so this stays tiny over a run.
    _coeffs: dict[tuple[str, float], ClusterPowerCoefficients] = field(
        default_factory=dict, init=False, compare=False, repr=False
    )

    def cluster_coefficients(
        self, cluster: Cluster, freq_ghz: float
    ) -> ClusterPowerCoefficients:
        """The cluster's power-law constants at one operating point."""
        key = (cluster.name, freq_ghz)
        coeffs = self._coeffs.get(key)
        if coeffs is None:
            core = cluster.core_type
            v = core.voltage(freq_ghz)
            scale = (freq_ghz / core.max_freq_ghz) * v * v
            coeffs = ClusterPowerCoefficients(
                static_w=cluster.static_power(freq_ghz),
                dynamic_w=core.core_dynamic_w * scale,
                idle_fraction=core.idle_fraction,
            )
            self._coeffs[key] = coeffs
        return coeffs

    def breakdown(
        self,
        big_freq_ghz: float,
        small_freq_ghz: float,
        utilizations: Mapping[str, float],
    ) -> PowerBreakdown:
        """Per-channel power for one interval.

        Parameters
        ----------
        big_freq_ghz, small_freq_ghz:
            Current operating point of each cluster's DVFS domain.
        utilizations:
            Core id to utilization in ``[0, 1]``; absent cores are idle.
            Idle cores are power-gated only when CPUidle is enabled.

        Thin adapter over :meth:`breakdown_array` for callers holding
        string-keyed state; the engine reads through the array path.
        """
        platform = self.platform
        unknown = set(utilizations) - set(platform.core_ids)
        if unknown:
            raise ValueError(f"unknown core ids: {sorted(unknown)}")
        dense = np.array(
            [float(utilizations.get(cid, 0.0)) for cid in platform.core_ids]
        )
        return self.breakdown_array(big_freq_ghz, small_freq_ghz, dense)

    def breakdown_array(
        self,
        big_freq_ghz: float,
        small_freq_ghz: float,
        utilizations: np.ndarray,
    ) -> PowerBreakdown:
        """Array-native :meth:`breakdown` over the dense core index.

        ``utilizations[i]`` belongs to core ``platform.core_ids[i]`` (big
        cluster first).  Cached per-operating-point coefficients replace
        the per-core voltage/validation work of the dict path; the
        floating-point arithmetic is unchanged.
        """
        platform = self.platform
        gate = self.kernel.cpuidle_enabled
        n_big = platform.big.n_cores
        big = self.cluster_coefficients(platform.big, big_freq_ghz)
        small = self.cluster_coefficients(platform.small, small_freq_ghz)
        return PowerBreakdown(
            big_w=big.cluster_power_w(utilizations[:n_big], power_gate_idle=gate),
            small_w=small.cluster_power_w(utilizations[n_big:], power_gate_idle=gate),
            rest_w=platform.rest_of_system_w,
        )

    def system_power_w(
        self,
        big_freq_ghz: float,
        small_freq_ghz: float,
        utilizations: Mapping[str, float],
    ) -> float:
        """Total system power in watts (sum of all three channels)."""
        return self.breakdown(big_freq_ghz, small_freq_ghz, utilizations).total_w

    def cluster_characterization_power_w(
        self, kind: CoreKind, freq_ghz: float, n_active: int
    ) -> float:
        """Power reported by the paper's Table 2 methodology.

        Table 2 runs the stress microbenchmark on ``n_active`` cores of one
        cluster and reports that cluster's register plus the system
        register (the other cluster is left out of the sum).
        """
        cluster = self.platform.cluster(kind)
        if not 0 <= n_active <= cluster.n_cores:
            raise ValueError(f"n_active must be within [0, {cluster.n_cores}]")
        utils = {cid: 1.0 for cid in cluster.core_ids[:n_active]}
        return (
            cluster.power_w(
                freq_ghz, utils, power_gate_idle=self.kernel.cpuidle_enabled
            )
            + self.platform.rest_of_system_w
        )


@dataclass
class EnergyMeter:
    """Cumulative per-channel energy, like Juno's energy registers.

    ``read()`` returns monotonically increasing joule counters; experiments
    difference successive reads, exactly as ``readenergy`` users do.
    """

    _big_j: float = field(init=False, default=0.0)
    _small_j: float = field(init=False, default=0.0)
    _rest_j: float = field(init=False, default=0.0)
    _elapsed_s: float = field(init=False, default=0.0)

    def record(self, breakdown: PowerBreakdown, duration_s: float) -> None:
        """Integrate a constant power breakdown over ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        self._big_j += breakdown.big_w * duration_s
        self._small_j += breakdown.small_w * duration_s
        self._rest_j += breakdown.rest_w * duration_s
        self._elapsed_s += duration_s

    def record_many(self, big_w, small_w, rest_w, duration_s: float) -> None:
        """Integrate many equal-length intervals of constant power.

        Equivalent to calling :meth:`record` once per entry, in order --
        the accumulation stays a sequential scalar ``+=`` per channel so
        the counters are bit-identical to the one-at-a-time path (the
        engine's epoch fast path depends on that).
        """
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        big_j = self._big_j
        small_j = self._small_j
        rest_j = self._rest_j
        elapsed = self._elapsed_s
        big_list = np.asarray(big_w, dtype=float).tolist()
        small_list = np.asarray(small_w, dtype=float).tolist()
        rest_list = np.asarray(rest_w, dtype=float).tolist()
        for b, s, r in zip(big_list, small_list, rest_list):
            big_j += b * duration_s
            small_j += s * duration_s
            rest_j += r * duration_s
            elapsed += duration_s
        self._big_j = big_j
        self._small_j = small_j
        self._rest_j = rest_j
        self._elapsed_s = elapsed

    def read(self) -> dict[str, float]:
        """Cumulative energy per channel, joules."""
        return {
            "big": self._big_j,
            "small": self._small_j,
            "sys": self._rest_j,
            "total": self.total_j,
        }

    @property
    def total_j(self) -> float:
        """Total energy across all channels, joules."""
        return self._big_j + self._small_j + self._rest_j

    @property
    def elapsed_s(self) -> float:
        """Total metered wall-clock time, seconds."""
        return self._elapsed_s

    @property
    def mean_power_w(self) -> float:
        """Average system power over the metered period, watts."""
        if self._elapsed_s == 0:
            return 0.0
        return self.total_j / self._elapsed_s
