"""Stress-microbenchmark characterization (paper Section 3.3 / Table 2).

The paper characterizes each core configuration with a compute-only
microbenchmark ("mathematical operations without memory accesses") to (a)
derive the heuristic mapper's state ordering and (b) produce Table 2's
power/performance table.  Because the microbenchmark has no memory
component, its behaviour on the simulated platform is fully determined by
the core model, which makes the characterization a pure function of the
platform description.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cores import CoreKind
from repro.hardware.power import PowerModel
from repro.hardware.soc import KernelConfig, Platform


@dataclass(frozen=True)
class CharacterizationRow:
    """One row of a Table 2-style characterization."""

    core_type: str
    kind: CoreKind
    freq_ghz: float
    power_all_cores_w: float
    power_one_core_w: float
    ips_all_cores: float
    ips_one_core: float

    @property
    def efficiency_one_core(self) -> float:
        """IPS per watt of a single busy core (system channel included)."""
        return self.ips_one_core / self.power_one_core_w

    @property
    def efficiency_all_cores(self) -> float:
        """IPS per watt of the fully busy cluster (system channel included)."""
        return self.ips_all_cores / self.power_all_cores_w


def characterize_cluster(
    platform: Platform,
    kind: CoreKind,
    freq_ghz: float | None = None,
    *,
    kernel: KernelConfig | None = None,
) -> CharacterizationRow:
    """Run the stress microbenchmark over one cluster (Table 2 methodology).

    Power is the cluster's own register plus the system channel; the other
    cluster is idle with CPUidle enabled, so it is excluded from the figure
    exactly as in the paper's table.
    """
    kernel = kernel or KernelConfig(cpuidle_enabled=True)
    cluster = platform.cluster(kind)
    freq = cluster.max_freq_ghz if freq_ghz is None else freq_ghz
    model = PowerModel(platform, kernel)
    return CharacterizationRow(
        core_type=cluster.core_type.name,
        kind=kind,
        freq_ghz=freq,
        power_all_cores_w=model.cluster_characterization_power_w(
            kind, freq, cluster.n_cores
        ),
        power_one_core_w=model.cluster_characterization_power_w(kind, freq, 1),
        ips_all_cores=cluster.aggregate_microbench_ips(freq, cluster.n_cores),
        ips_one_core=cluster.aggregate_microbench_ips(freq, 1),
    )


def characterize_platform(
    platform: Platform, *, kernel: KernelConfig | None = None
) -> tuple[CharacterizationRow, CharacterizationRow]:
    """Characterize both clusters at max DVFS: the paper's Table 2."""
    return (
        characterize_cluster(platform, CoreKind.BIG, kernel=kernel),
        characterize_cluster(platform, CoreKind.SMALL, kernel=kernel),
    )
