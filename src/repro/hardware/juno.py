"""Calibrated model of the ARM Juno R1 development board.

All constants are derived from the paper's own characterization:

* Table 2 — microbenchmark power and performance per core and per cluster
  (2.30 W / 4260 MIPS for the big cluster, 1.43 W / 3298 MIPS for the small
  cluster, including the system channel);
* Section 4.1 — 0.76 W "rest of the system", big-cluster DVFS range
  0.6-1.15 GHz, small cluster fixed at 0.65 GHz;
* Section 4.1 hardware description — 2x Cortex-A57 with 2 MB shared L2,
  4x Cortex-A53 with 1 MB shared L2.

Working the Table 2 numbers backwards (system channel = 0.76 W):

====================  ==========  =============  =======================
quantity              big (A57)   small (A53)    from
====================  ==========  =============  =======================
per-core dynamic      0.68 W      0.16 W         (all-cores - one-core)/k
cluster static        0.18 W      0.03 W         one-core - dynamic
microbench IPC        1.859       1.271          one-core MIPS / freq
SMP efficiency        0.99626     0.99818        all-cores / k*one-core
====================  ==========  =============  =======================
"""

from __future__ import annotations

from repro.hardware.cores import CoreKind, CoreType, Cluster
from repro.hardware.soc import Platform

#: Power of memory controllers, interconnect and board logic (Section 4.1).
REST_OF_SYSTEM_W = 0.76

#: Big-cluster (Cortex-A57) operating points, GHz (Section 4.1).
BIG_FREQS_GHZ = (0.60, 0.90, 1.15)

#: Small-cluster (Cortex-A53) operating point, GHz — fixed on Juno R1.
SMALL_FREQS_GHZ = (0.65,)

#: Normalized supply voltage per operating point (1.0 at the top).
BIG_VOLTAGE = {0.60: 0.80, 0.90: 0.90, 1.15: 1.00}
SMALL_VOLTAGE = {0.65: 1.00}

#: Table 2, worked backwards (see module docstring).
BIG_CORE_DYNAMIC_W = 0.68
BIG_CLUSTER_STATIC_W = 0.18
SMALL_CORE_DYNAMIC_W = 0.16
SMALL_CLUSTER_STATIC_W = 0.03

#: Microbenchmark IPC: one-core MIPS / frequency (Table 2).
BIG_MICROBENCH_IPC = 2138e6 / 1.15e9  # ~1.859
SMALL_MICROBENCH_IPC = 826e6 / 0.65e9  # ~1.271

#: Multi-core scaling efficiency: all-cores MIPS / (k * one-core MIPS).
BIG_SMP_EFFICIENCY = 4260.0 / (2 * 2138.0)
SMALL_SMP_EFFICIENCY = 3298.0 / (4 * 826.0)


def cortex_a57() -> CoreType:
    """The big, out-of-order core of Juno R1."""
    return CoreType(
        name="Cortex-A57",
        kind=CoreKind.BIG,
        microbench_ipc=BIG_MICROBENCH_IPC,
        freqs_ghz=BIG_FREQS_GHZ,
        voltage_by_freq=BIG_VOLTAGE,
        core_dynamic_w=BIG_CORE_DYNAMIC_W,
    )


def cortex_a53() -> CoreType:
    """The small, in-order core of Juno R1."""
    return CoreType(
        name="Cortex-A53",
        kind=CoreKind.SMALL,
        microbench_ipc=SMALL_MICROBENCH_IPC,
        freqs_ghz=SMALL_FREQS_GHZ,
        voltage_by_freq=SMALL_VOLTAGE,
        core_dynamic_w=SMALL_CORE_DYNAMIC_W,
    )


def juno_r1() -> Platform:
    """The ARM Juno R1 platform the paper evaluates on.

    Two Cortex-A57 cores share a 2 MB L2 (one DVFS domain, 0.6-1.15 GHz);
    four Cortex-A53 cores share a 1 MB L2 (fixed 0.65 GHz).
    """
    big = Cluster(
        name="big",
        core_type=cortex_a57(),
        n_cores=2,
        l2_kb=2048,
        static_power_w=BIG_CLUSTER_STATIC_W,
        core_id_prefix="B",
        smp_efficiency=BIG_SMP_EFFICIENCY,
    )
    small = Cluster(
        name="small",
        core_type=cortex_a53(),
        n_cores=4,
        l2_kb=1024,
        static_power_w=SMALL_CLUSTER_STATIC_W,
        core_id_prefix="S",
        smp_efficiency=SMALL_SMP_EFFICIENCY,
    )
    return Platform(
        name="ARM Juno R1",
        big=big,
        small=small,
        rest_of_system_w=REST_OF_SYSTEM_W,
    )
