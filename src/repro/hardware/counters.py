"""Hardware performance counters (``perf``-style per-core IPS).

HipsterCo measures batch-workload throughput generically through per-core
instruction counters (paper Section 3.2/3.7).  On Juno there is a known
bug: whenever any core enters an idle state, ``perf`` returns garbage for
*all* cores.  The paper works around it by disabling CPUidle; we model both
the bug and the workaround so the implementation constraint is part of the
reproduction (and is exercised by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.hardware.soc import KernelConfig, Platform

#: Cores busier than this fraction of a cycle per cycle are "non-idle" for
#: the purposes of the Juno idle-entry bug.
_IDLE_UTIL_THRESHOLD = 1e-9


@dataclass(frozen=True)
class PerfCounters:
    """Samples per-core instructions-per-second, with the Juno quirk.

    Parameters
    ----------
    platform:
        The platform whose cores are being sampled.
    kernel:
        Kernel configuration; the Juno bug only manifests while CPUidle is
        enabled, because only then do idle cores enter idle states.
    juno_perf_bug:
        Whether to model the hardware erratum at all (on by default for the
        Juno platform).
    """

    platform: Platform
    kernel: KernelConfig = KernelConfig()
    juno_perf_bug: bool = True

    @property
    def bug_armed(self) -> bool:
        """Whether the erratum can fire at all under this kernel config."""
        return self.juno_perf_bug and self.kernel.cpuidle_enabled

    def read(
        self, true_ips: Mapping[str, float], rng: np.random.Generator
    ) -> dict[str, float]:
        """Read the ``instructions`` event for every core.

        ``true_ips`` is the ground-truth instruction throughput per core
        for the sampling interval (absent cores are idle).  If the bug
        fires, every counter in the sample is garbage.

        Thin adapter over :meth:`read_array` for callers holding
        string-keyed state; the engine reads through the array path.
        """
        unknown = set(true_ips) - set(self.platform.core_ids)
        if unknown:
            raise ValueError(f"unknown core ids: {sorted(unknown)}")
        truth = np.array(
            [float(true_ips.get(cid, 0.0)) for cid in self.platform.core_ids]
        )
        sample, _ = self.read_array(truth, rng)
        return {cid: float(sample[i]) for i, cid in enumerate(self.platform.core_ids)}

    def read_array(
        self, true_ips: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, bool]:
        """Array-native counter read over the platform's dense core index.

        ``true_ips[i]`` is the ground-truth IPS of core
        ``platform.core_ids[i]``.  Returns the sampled per-core IPS and
        whether the sample is garbage.  The garbage draw is one vectorized
        ``uniform`` over the cores in index order -- the identical rng
        stream the per-core scalar draws of the dict path consumed.
        """
        if not self._bug_fires(true_ips):
            return true_ips, False
        drawn = rng.uniform(0.0, 1e13, size=len(true_ips))
        # A garbage sample that exactly reproduces the truth would be
        # indistinguishable from a clean read (measure-zero, but keeps
        # the flag consistent with comparing the two samples).
        return drawn, not np.array_equal(drawn, true_ips)

    def _bug_fires(self, true_ips: np.ndarray) -> bool:
        if not self.bug_armed:
            return False
        return bool((np.asarray(true_ips) <= _IDLE_UTIL_THRESHOLD).any())
