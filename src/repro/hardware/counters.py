"""Hardware performance counters (``perf``-style per-core IPS).

HipsterCo measures batch-workload throughput generically through per-core
instruction counters (paper Section 3.2/3.7).  On Juno there is a known
bug: whenever any core enters an idle state, ``perf`` returns garbage for
*all* cores.  The paper works around it by disabling CPUidle; we model both
the bug and the workaround so the implementation constraint is part of the
reproduction (and is exercised by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.hardware.soc import KernelConfig, Platform

#: Cores busier than this fraction of a cycle per cycle are "non-idle" for
#: the purposes of the Juno idle-entry bug.
_IDLE_UTIL_THRESHOLD = 1e-9


@dataclass(frozen=True)
class PerfCounters:
    """Samples per-core instructions-per-second, with the Juno quirk.

    Parameters
    ----------
    platform:
        The platform whose cores are being sampled.
    kernel:
        Kernel configuration; the Juno bug only manifests while CPUidle is
        enabled, because only then do idle cores enter idle states.
    juno_perf_bug:
        Whether to model the hardware erratum at all (on by default for the
        Juno platform).
    """

    platform: Platform
    kernel: KernelConfig = KernelConfig()
    juno_perf_bug: bool = True

    def read(
        self, true_ips: Mapping[str, float], rng: np.random.Generator
    ) -> dict[str, float]:
        """Read the ``instructions`` event for every core.

        ``true_ips`` is the ground-truth instruction throughput per core
        for the sampling interval (absent cores are idle).  If the bug
        fires, every counter in the sample is garbage.
        """
        unknown = set(true_ips) - set(self.platform.core_ids)
        if unknown:
            raise ValueError(f"unknown core ids: {sorted(unknown)}")
        sample = {
            core_id: float(true_ips.get(core_id, 0.0))
            for core_id in self.platform.core_ids
        }
        if self._bug_fires(sample):
            return {
                core_id: float(rng.uniform(0.0, 1e13)) for core_id in sample
            }
        return sample

    def _bug_fires(self, sample: Mapping[str, float]) -> bool:
        if not (self.juno_perf_bug and self.kernel.cpuidle_enabled):
            return False
        return any(ips <= _IDLE_UTIL_THRESHOLD for ips in sample.values())
