"""Core and cluster descriptions for heterogeneous big.LITTLE platforms.

The paper evaluates Hipster on an ARM Juno R1 board with two out-of-order
Cortex-A57 ("big") cores and four in-order Cortex-A53 ("small") cores.  This
module provides the generic building blocks (:class:`CoreType`,
:class:`Cluster`) from which :mod:`repro.hardware.juno` assembles the
calibrated platform model.

Power follows the classic CMOS decomposition: each cluster has a static
(leakage) component that scales with supply voltage, and each active core has
a dynamic component scaling with ``f * V^2`` and with utilization.  All
constants are calibrated against Table 2 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping


class CoreKind(str, enum.Enum):
    """Kind of core in a big.LITTLE system."""

    BIG = "big"
    SMALL = "small"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CoreType:
    """Static description of one microarchitecture (e.g. Cortex-A57).

    Parameters
    ----------
    name:
        Human readable microarchitecture name.
    kind:
        Whether this is the big or the small core type.
    microbench_ipc:
        Instructions per cycle achieved by the compute stress microbenchmark
        used in the paper's Section 3.3 / Table 2 characterization.
    freqs_ghz:
        Available DVFS operating points, ascending.
    voltage_by_freq:
        Normalized supply voltage at each operating point (1.0 at the
        highest frequency).
    core_dynamic_w:
        Dynamic power of one fully-utilized core at the highest operating
        point, in watts.
    idle_fraction:
        Fraction of the dynamic power burned by an idle (but not
        power-gated) core, modelling clock tree and pipeline front-end
        activity when ``cpuidle`` is disabled.
    """

    name: str
    kind: CoreKind
    microbench_ipc: float
    freqs_ghz: tuple[float, ...]
    voltage_by_freq: Mapping[float, float]
    core_dynamic_w: float
    idle_fraction: float = 0.30

    def __post_init__(self) -> None:
        if not self.freqs_ghz:
            raise ValueError("a core type needs at least one DVFS point")
        if tuple(sorted(self.freqs_ghz)) != tuple(self.freqs_ghz):
            raise ValueError("freqs_ghz must be sorted ascending")
        missing = [f for f in self.freqs_ghz if f not in self.voltage_by_freq]
        if missing:
            raise ValueError(f"missing voltage for operating points {missing}")
        if self.microbench_ipc <= 0:
            raise ValueError("microbench_ipc must be positive")
        if self.core_dynamic_w < 0:
            raise ValueError("core_dynamic_w must be non-negative")
        if not 0.0 <= self.idle_fraction <= 1.0:
            raise ValueError("idle_fraction must be within [0, 1]")

    @property
    def max_freq_ghz(self) -> float:
        """Highest available operating point in GHz."""
        return self.freqs_ghz[-1]

    @property
    def min_freq_ghz(self) -> float:
        """Lowest available operating point in GHz."""
        return self.freqs_ghz[0]

    def validate_freq(self, freq_ghz: float) -> float:
        """Return ``freq_ghz`` if it is a valid operating point, else raise."""
        if freq_ghz not in self.voltage_by_freq:
            raise ValueError(
                f"{freq_ghz} GHz is not an operating point of {self.name}; "
                f"available: {list(self.freqs_ghz)}"
            )
        return freq_ghz

    def voltage(self, freq_ghz: float) -> float:
        """Normalized supply voltage at the given operating point."""
        self.validate_freq(freq_ghz)
        return self.voltage_by_freq[freq_ghz]

    def dynamic_power_w(self, freq_ghz: float, utilization: float) -> float:
        """Dynamic power of one core at ``freq_ghz`` and given utilization.

        Power scales as ``f * V^2``; an idle core still burns
        ``idle_fraction`` of the fully-utilized dynamic power (unless it is
        power-gated, which is the power model's concern, not the core's).
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be within [0, 1], got {utilization}")
        v = self.voltage(freq_ghz)
        scale = (freq_ghz / self.max_freq_ghz) * v * v
        activity = self.idle_fraction + (1.0 - self.idle_fraction) * utilization
        return self.core_dynamic_w * scale * activity

    def microbench_ips(self, freq_ghz: float, utilization: float = 1.0) -> float:
        """Instructions per second for the stress microbenchmark.

        The microbenchmark is pure compute (no memory accesses), so IPS is
        simply ``IPC * f`` scaled by utilization.
        """
        self.validate_freq(freq_ghz)
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be within [0, 1], got {utilization}")
        return self.microbench_ipc * freq_ghz * 1e9 * utilization


@dataclass(frozen=True)
class Cluster:
    """A group of identical cores sharing an L2 cache and a DVFS domain.

    On Juno the two A57s form the big cluster (shared 2 MB L2) and the four
    A53s form the small cluster (shared 1 MB L2); each cluster is a single
    voltage/frequency domain, so a DVFS change applies to every core in the
    cluster -- including batch jobs collocated there, a detail the paper
    leans on in Section 4.3.
    """

    name: str
    core_type: CoreType
    n_cores: int
    l2_kb: int
    static_power_w: float
    core_id_prefix: str = ""
    smp_efficiency: float = 1.0
    core_ids: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("a cluster needs at least one core")
        if self.static_power_w < 0:
            raise ValueError("static_power_w must be non-negative")
        if not 0.0 < self.smp_efficiency <= 1.0:
            raise ValueError("smp_efficiency must be within (0, 1]")
        prefix = self.core_id_prefix or self.name[:1].upper()
        object.__setattr__(
            self, "core_ids", tuple(f"{prefix}{i}" for i in range(self.n_cores))
        )

    @property
    def kind(self) -> CoreKind:
        """Kind (big/small) of the cores in this cluster."""
        return self.core_type.kind

    @property
    def max_freq_ghz(self) -> float:
        """Highest operating point of the cluster's DVFS domain."""
        return self.core_type.max_freq_ghz

    @property
    def min_freq_ghz(self) -> float:
        """Lowest operating point of the cluster's DVFS domain."""
        return self.core_type.min_freq_ghz

    def static_power(self, freq_ghz: float) -> float:
        """Leakage power of the cluster at the given operating point.

        Leakage scales roughly linearly with supply voltage in the small
        voltage range spanned by the Juno operating points.
        """
        return self.static_power_w * self.core_type.voltage(freq_ghz)

    def power_w(
        self,
        freq_ghz: float,
        utilizations: Mapping[str, float],
        *,
        power_gate_idle: bool = False,
    ) -> float:
        """Total cluster power for one monitoring interval.

        Parameters
        ----------
        freq_ghz:
            Operating point of the cluster's shared DVFS domain.
        utilizations:
            Mapping from core id to utilization in ``[0, 1]``.  Cores not
            present are idle.
        power_gate_idle:
            When true (``cpuidle`` enabled), idle cores are power-gated and
            consume (almost) no dynamic power; otherwise they burn the core
            type's ``idle_fraction``.
        """
        unknown = set(utilizations) - set(self.core_ids)
        if unknown:
            raise ValueError(
                f"unknown core ids for cluster {self.name}: {sorted(unknown)}"
            )
        total = self.static_power(freq_ghz)
        for core_id in self.core_ids:
            util = utilizations.get(core_id, 0.0)
            if util == 0.0 and power_gate_idle:
                continue
            total += self.core_type.dynamic_power_w(freq_ghz, util)
        return total

    def max_power_w(self, freq_ghz: float | None = None) -> float:
        """Cluster power with every core fully utilized."""
        freq = self.max_freq_ghz if freq_ghz is None else freq_ghz
        utils = {core_id: 1.0 for core_id in self.core_ids}
        return self.power_w(freq, utils)

    def aggregate_microbench_ips(self, freq_ghz: float, n_active: int) -> float:
        """Aggregate microbenchmark IPS of ``n_active`` cores at ``freq_ghz``.

        Running multiple cores in a cluster costs a small fraction of
        per-core throughput (shared L2 and interconnect arbitration);
        ``smp_efficiency`` captures it, calibrated against Table 2 of the
        paper (e.g. 2x2138 MIPS single-core vs 4260 MIPS measured on the
        big cluster).
        """
        if not 0 <= n_active <= self.n_cores:
            raise ValueError(f"n_active must be within [0, {self.n_cores}]")
        per_core = self.core_type.microbench_ips(freq_ghz)
        if n_active <= 1:
            return n_active * per_core
        return n_active * per_core * self.smp_efficiency

    def max_microbench_ips(self, freq_ghz: float | None = None) -> float:
        """Aggregate microbenchmark IPS with every core fully utilized.

        This is the ``maxIPS(B)`` / ``maxIPS(S)`` quantity used in the
        denominator of HipsterCo's throughput reward (Algorithm 1, line 13).
        """
        freq = self.max_freq_ghz if freq_ghz is None else freq_ghz
        return self.aggregate_microbench_ips(freq, self.n_cores)
