"""Core-mapping/DVFS configurations and the configuration space.

A *configuration* in the paper is the pair (core mapping, DVFS setting)
allocated to the latency-critical workload -- e.g. ``2B2S-0.90`` means two
big cores and two small cores with the big cluster at 0.90 GHz (the small
cluster on Juno runs at a fixed 0.65 GHz).  This module defines the
:class:`Configuration` value type, enumerates the configuration space for a
platform, and derives the heuristic mapper's *ladder*: the predefined
ordering of configurations "approximately from highest to lowest power
efficiency" obtained by characterizing every configuration with the stress
microbenchmark (paper Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cores import CoreKind
from repro.hardware.soc import Platform

#: The ladder printed on the y axis of the paper's Figure 2c (Juno R1).
PAPER_FIG2C_LADDER = (
    "1S-0.65",
    "2S-0.65",
    "3S-0.65",
    "2B-0.60",
    "1B3S-0.60",
    "4S-0.65",
    "2B2S-0.60",
    "1B3S-0.90",
    "2B-0.90",
    "2B2S-0.90",
    "1B3S-1.15",
    "2B2S-1.15",
    "2B-1.15",
)


@dataclass(frozen=True)
class Configuration:
    """Cores and DVFS allocated to the latency-critical workload.

    Frequencies are ``None`` exactly when the corresponding cluster hosts no
    latency-critical core; what frequency that cluster actually runs at is a
    *policy* decision (HipsterIn parks it at the minimum, HipsterCo races it
    at the maximum for batch work) recorded in the
    :class:`~repro.policies.base.Decision`, not here.
    """

    n_big: int
    n_small: int
    big_freq_ghz: float | None
    small_freq_ghz: float | None

    def __post_init__(self) -> None:
        if self.n_big < 0 or self.n_small < 0:
            raise ValueError("core counts must be non-negative")
        if self.n_big == 0 and self.n_small == 0:
            raise ValueError("a configuration must allocate at least one core")
        if (self.n_big > 0) != (self.big_freq_ghz is not None):
            raise ValueError("big_freq_ghz must be set iff big cores are allocated")
        if (self.n_small > 0) != (self.small_freq_ghz is not None):
            raise ValueError("small_freq_ghz must be set iff small cores are allocated")

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``2B2S-0.90``, ``4S-0.65``, ``2B-1.15``."""
        if self.n_big and self.n_small:
            return f"{self.n_big}B{self.n_small}S-{self.big_freq_ghz:.2f}"
        if self.n_big:
            return f"{self.n_big}B-{self.big_freq_ghz:.2f}"
        return f"{self.n_small}S-{self.small_freq_ghz:.2f}"

    @property
    def total_cores(self) -> int:
        """Number of cores allocated to the latency-critical workload."""
        return self.n_big + self.n_small

    @property
    def single_cluster_kind(self) -> CoreKind | None:
        """The single cluster this configuration occupies, if only one.

        Algorithm 2 (lines 10-11) races the *other* cluster to max DVFS for
        batch work exactly when the latency-critical job sits on one
        cluster only.
        """
        if self.n_big and not self.n_small:
            return CoreKind.BIG
        if self.n_small and not self.n_big:
            return CoreKind.SMALL
        return None

    def uses_cluster(self, kind: CoreKind) -> bool:
        """Whether any latency-critical core lives on the given cluster."""
        return (self.n_big if kind is CoreKind.BIG else self.n_small) > 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


def validate_configuration(platform: Platform, config: Configuration) -> Configuration:
    """Check a configuration against a platform's core counts and DVFS tables."""
    if config.n_big > platform.big.n_cores:
        raise ValueError(
            f"{config.label}: platform has only {platform.big.n_cores} big cores"
        )
    if config.n_small > platform.small.n_cores:
        raise ValueError(
            f"{config.label}: platform has only {platform.small.n_cores} small cores"
        )
    if config.big_freq_ghz is not None:
        platform.big.core_type.validate_freq(config.big_freq_ghz)
    if config.small_freq_ghz is not None:
        platform.small.core_type.validate_freq(config.small_freq_ghz)
    return config


def enumerate_configurations(
    platform: Platform, *, max_total_cores: int | None = None
) -> tuple[Configuration, ...]:
    """Every (core mapping, DVFS) combination available on the platform.

    This is the HetCMP configuration space of the paper's Figure 2: all
    non-empty mixes of big and small cores crossed with the operating points
    of each occupied cluster (34 configurations on Juno R1).

    ``max_total_cores`` bounds the core count per configuration; the
    paper's services run four worker threads, so its configuration space
    (Figure 2c) tops out at four cores (25 configurations on Juno R1).
    """
    configs: list[Configuration] = []
    big_freqs = platform.big.core_type.freqs_ghz
    small_freqs = platform.small.core_type.freqs_ghz
    for n_big in range(platform.big.n_cores + 1):
        for n_small in range(platform.small.n_cores + 1):
            if n_big == 0 and n_small == 0:
                continue
            if max_total_cores is not None and n_big + n_small > max_total_cores:
                continue
            for bf in big_freqs if n_big else (None,):
                for sf in small_freqs if n_small else (None,):
                    configs.append(Configuration(n_big, n_small, bf, sf))
    return tuple(configs)


def config_capacity_ips(platform: Platform, config: Configuration) -> float:
    """Aggregate microbenchmark IPS of the cores in a configuration."""
    validate_configuration(platform, config)
    total = 0.0
    if config.n_big:
        total += config.n_big * platform.big.core_type.microbench_ips(
            config.big_freq_ghz
        )
    if config.n_small:
        total += config.n_small * platform.small.core_type.microbench_ips(
            config.small_freq_ghz
        )
    return total


def config_power_w(platform: Platform, config: Configuration) -> float:
    """System power with the configuration's cores fully busy, others idle.

    Clusters without latency-critical cores are assumed parked at their
    minimum operating point, which matches how the characterization
    microbenchmark is run.
    """
    validate_configuration(platform, config)
    big_freq = config.big_freq_ghz or platform.big.min_freq_ghz
    small_freq = config.small_freq_ghz or platform.small.min_freq_ghz
    big_utils = {cid: 1.0 for cid in platform.big.core_ids[: config.n_big]}
    small_utils = {cid: 1.0 for cid in platform.small.core_ids[: config.n_small]}
    return (
        platform.rest_of_system_w
        + platform.big.power_w(big_freq, big_utils)
        + platform.small.power_w(small_freq, small_utils)
    )


def rank_configurations(
    platform: Platform, configs: tuple[Configuration, ...] | None = None
) -> tuple[Configuration, ...]:
    """Order configurations for the heuristic mapper's ladder.

    The paper derives the ordering by measuring power and performance of
    each state with a compute stress microbenchmark.  We rank primarily by
    measured capacity (aggregate microbenchmark IPS) ascending -- so that a
    "next-higher power state" transition reliably adds capacity -- breaking
    ties by measured power ascending, then by label for determinism.
    """
    if configs is None:
        configs = enumerate_configurations(platform)
    return tuple(
        sorted(
            configs,
            key=lambda c: (
                round(config_capacity_ips(platform, c), 3),
                round(config_power_w(platform, c), 6),
                c.label,
            ),
        )
    )


def pareto_configurations(
    platform: Platform, configs: tuple[Configuration, ...] | None = None
) -> tuple[Configuration, ...]:
    """Capacity/power Pareto frontier of the configuration space, ascending.

    A configuration is dropped when some other configuration delivers at
    least as much microbenchmark capacity for strictly less power (or more
    capacity for the same power).  The survivors form a ladder comparable
    to the paper's 13-state Figure 2c axis: every upward step buys capacity
    and costs power, which is exactly the property the heuristic mapper's
    "next-higher power state" transition relies on.
    """
    if configs is None:
        configs = enumerate_configurations(platform)
    measured = [
        (config_capacity_ips(platform, c), config_power_w(platform, c), c)
        for c in configs
    ]
    frontier = [
        (cap, power, c)
        for cap, power, c in measured
        if not any(
            (other_cap >= cap and other_power < power)
            or (other_cap > cap and other_power <= power)
            for other_cap, other_power, _ in measured
        )
    ]
    frontier.sort(key=lambda item: (item[0], item[1], item[2].label))
    return tuple(c for _, _, c in frontier)


def config_by_label(
    configs: tuple[Configuration, ...], label: str
) -> Configuration:
    """Find a configuration by its paper-style label."""
    for config in configs:
        if config.label == label:
            return config
    raise KeyError(f"no configuration labelled {label!r}")


def octopus_man_ladder(
    platform: Platform, *, include_single_big: bool = False
) -> tuple[Configuration, ...]:
    """The baseline policy's ladder: small-only then big-only, max DVFS.

    Octopus-Man maps the latency-critical workload exclusively to big or to
    small cores at the highest DVFS (paper Sections 2 and 4.2.1); its
    configuration space is therefore a strict subset of HetCMP's.
    """
    small_max = platform.small.max_freq_ghz
    big_max = platform.big.max_freq_ghz
    ladder = [
        Configuration(0, n, None, small_max)
        for n in range(1, platform.small.n_cores + 1)
    ]
    start_big = 1 if include_single_big else platform.big.n_cores
    ladder.extend(
        Configuration(n, 0, big_max, None)
        for n in range(start_big, platform.big.n_cores + 1)
    )
    return tuple(ladder)
