"""System-on-chip platform container.

A :class:`Platform` bundles the big and small clusters with the
"rest of the system" power (memory controllers, interconnect, I/O) that the
paper measures through Juno's ``sys`` power register.  It also exposes the
thermal design power (TDP) used by HipsterIn's power reward
(Algorithm 1, line 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.cores import Cluster, CoreKind


@dataclass(frozen=True)
class KernelConfig:
    """Kernel-level knobs the paper interacts with.

    ``cpuidle_enabled`` controls whether idle cores are power-gated.  The
    paper (Section 3.7) disables CPUidle to work around a Juno bug where
    ``perf`` returns garbage for all cores whenever any core enters an idle
    state; we model both the bug and the workaround.
    """

    cpuidle_enabled: bool = True


@dataclass(frozen=True)
class Platform:
    """A two-cluster big.LITTLE platform.

    Parameters
    ----------
    name:
        Platform name, e.g. ``"ARM Juno R1"``.
    big, small:
        The two clusters.  ``big`` must contain :class:`CoreKind.BIG` cores
        and ``small`` :class:`CoreKind.SMALL` cores.
    rest_of_system_w:
        Constant power of everything outside the clusters (DRAM
        controllers, interconnect, board), watts.
    """

    name: str
    big: Cluster
    small: Cluster
    rest_of_system_w: float
    core_ids: tuple[str, ...] = field(init=False)
    #: Stable core id -> dense index mapping (big cluster first, matching
    #: ``core_ids``); the interval engine's array representation is keyed
    #: by these indices, established once per platform.
    core_index: dict[str, int] = field(init=False, compare=False, repr=False)
    #: Dense indices of each cluster's cores (``core_ids`` order).
    big_core_index: np.ndarray = field(init=False, compare=False, repr=False)
    small_core_index: np.ndarray = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.big.kind is not CoreKind.BIG:
            raise ValueError("'big' cluster must be built from big cores")
        if self.small.kind is not CoreKind.SMALL:
            raise ValueError("'small' cluster must be built from small cores")
        if self.rest_of_system_w < 0:
            raise ValueError("rest_of_system_w must be non-negative")
        overlap = set(self.big.core_ids) & set(self.small.core_ids)
        if overlap:
            raise ValueError(f"core id collision between clusters: {sorted(overlap)}")
        object.__setattr__(self, "core_ids", self.big.core_ids + self.small.core_ids)
        object.__setattr__(
            self, "core_index", {cid: i for i, cid in enumerate(self.core_ids)}
        )
        n_big = self.big.n_cores
        object.__setattr__(self, "big_core_index", np.arange(n_big))
        object.__setattr__(
            self, "small_core_index", np.arange(n_big, n_big + self.small.n_cores)
        )

    @property
    def clusters(self) -> tuple[Cluster, Cluster]:
        """Both clusters, big first."""
        return (self.big, self.small)

    def cluster(self, kind: CoreKind | str) -> Cluster:
        """Look up a cluster by :class:`CoreKind` (or its string value)."""
        kind = CoreKind(kind)
        return self.big if kind is CoreKind.BIG else self.small

    def cluster_of(self, core_id: str) -> Cluster:
        """Cluster that owns the given core id."""
        if core_id in self.big.core_ids:
            return self.big
        if core_id in self.small.core_ids:
            return self.small
        raise KeyError(f"unknown core id {core_id!r}")

    @property
    def n_cores(self) -> int:
        """Total number of cores across both clusters."""
        return self.big.n_cores + self.small.n_cores

    @property
    def tdp_w(self) -> float:
        """Thermal design power: peak power with everything fully busy.

        Used as the numerator of HipsterIn's power reward
        (``Power_reward = TDP / Power``, Algorithm 1 line 5).
        """
        return (
            self.rest_of_system_w
            + self.big.max_power_w()
            + self.small.max_power_w()
        )

    def max_microbench_ips(self) -> float:
        """``maxIPS(B) + maxIPS(S)``: denominator of the throughput reward."""
        return self.big.max_microbench_ips() + self.small.max_microbench_ips()
