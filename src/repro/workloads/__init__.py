"""Workload models: latency-critical services and batch programs."""

from repro.workloads.base import (
    LatencyCriticalWorkload,
    capacity_rps,
    lc_server_speeds,
    used_core_ids,
)
from repro.workloads.batch import MEMORY_CEILING_IPS, BatchJobSet, BatchProgram
from repro.workloads.memcached import memcached
from repro.workloads.spec import SPEC_CPU2006, spec_job_set, spec_mix, spec_program
from repro.workloads.websearch import websearch

__all__ = [
    "BatchJobSet",
    "BatchProgram",
    "LatencyCriticalWorkload",
    "MEMORY_CEILING_IPS",
    "SPEC_CPU2006",
    "capacity_rps",
    "lc_server_speeds",
    "memcached",
    "spec_job_set",
    "spec_mix",
    "spec_program",
    "used_core_ids",
    "websearch",
]
