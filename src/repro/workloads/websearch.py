"""Web-Search workload model (Table 1 of the paper).

The paper's Web-Search backend is an Elasticsearch instance indexing the
English Wikipedia, queried with a Zipfian term distribution; QoS is the
90th-percentile query latency with a 500 ms target, and the maximum load
(44 QPS) is the highest load at which two big cores at maximum DVFS meet
the target.

Search queries burn tens of milliseconds of CPU each with moderate
variance (posting-list lengths follow the Zipfian term popularity), and
depend heavily on out-of-order execution, so small in-order cores pay a
penalty beyond the raw IPC ratio.  The demand constants come from
:mod:`repro.experiments.calibration` (same methodology as Memcached).
"""

from __future__ import annotations

from repro.workloads.base import LatencyCriticalWorkload

#: p90 target, ms (Table 1).
WEBSEARCH_TARGET_MS = 500.0

#: Queries per second at 100% load (Table 1).
WEBSEARCH_MAX_QPS = 44.0

#: Calibrated mean service demand on a big core @ 1.15 GHz, ms.
WEBSEARCH_DEMAND_MEAN_MS = 28.48

#: Log-normal sigma of the demand distribution (Zipfian posting lists).
WEBSEARCH_DEMAND_SIGMA = 0.75

#: Network + coordination latency floor, ms.
WEBSEARCH_BASE_LATENCY_MS = 15.0


def websearch() -> LatencyCriticalWorkload:
    """The paper's Web-Search instance (p90 <= 500 ms at up to 44 QPS).

    At 44 QPS the queue simulation is cheap, so no time dilation is used:
    the replica serves the full query stream.
    """
    return LatencyCriticalWorkload(
        name="websearch",
        qos_percentile=0.90,
        target_latency_ms=WEBSEARCH_TARGET_MS,
        max_load_rps=WEBSEARCH_MAX_QPS,
        demand_mean_ms=WEBSEARCH_DEMAND_MEAN_MS,
        demand_sigma=WEBSEARCH_DEMAND_SIGMA,
        base_latency_ms=WEBSEARCH_BASE_LATENCY_MS,
        sim_scale=1.0,
        small_core_penalty=1.10,
        mem_intensity=0.4,
        contention_sensitivity=0.9,
        n_threads=4,
        lc_ipc_fraction=0.85,
        burstiness=2.5,
    )
