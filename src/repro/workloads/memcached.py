"""Memcached workload model (Table 1 of the paper).

The paper runs Memcached as a Twitter-like caching server with a 1.3 GB
dataset, defines QoS as the 95th-percentile request latency with a 10 ms
target, and calibrates the maximum load (36 000 RPS) as the highest load at
which two big cores at maximum DVFS meet the target.

The demand distribution constants below were produced by
:mod:`repro.experiments.calibration`, which reproduces the paper's
methodology on the simulated platform: the mean demand is tuned until the
p95 latency at 36 kRPS on ``2B-1.15`` sits just under the 10 ms target.
Memcached requests are tiny (tens of microseconds of CPU) with a
heavy-tailed distribution (large multi-key requests), and the 10 ms target
is dominated by queueing at high load plus the network/kernel floor.
"""

from __future__ import annotations

from repro.workloads.base import LatencyCriticalWorkload

#: p95 target, ms (Table 1).
MEMCACHED_TARGET_MS = 10.0

#: Requests per second at 100% load (Table 1).
MEMCACHED_MAX_RPS = 36_000.0

#: Time-dilation factor for the simulated replica (36 kRPS -> 1440 req/s).
MEMCACHED_SIM_SCALE = 25.0

#: Calibrated mean service demand on a big core @ 1.15 GHz, ms.
MEMCACHED_DEMAND_MEAN_MS = 0.0522

#: Log-normal sigma of the demand distribution (heavy-tailed value sizes).
MEMCACHED_DEMAND_SIGMA = 1.00

#: Network + kernel-stack latency floor, ms.
MEMCACHED_BASE_LATENCY_MS = 1.5


def memcached(*, sim_scale: float = MEMCACHED_SIM_SCALE) -> LatencyCriticalWorkload:
    """The paper's Memcached instance (p95 <= 10 ms at up to 36 kRPS).

    ``sim_scale`` trades simulation cost for per-interval sample count;
    the default keeps roughly 720 simulated requests per second at full
    load.  Use ``sim_scale=1`` only for small validation runs.
    """
    return LatencyCriticalWorkload(
        name="memcached",
        qos_percentile=0.95,
        target_latency_ms=MEMCACHED_TARGET_MS,
        max_load_rps=MEMCACHED_MAX_RPS,
        demand_mean_ms=MEMCACHED_DEMAND_MEAN_MS,
        demand_sigma=MEMCACHED_DEMAND_SIGMA,
        base_latency_ms=MEMCACHED_BASE_LATENCY_MS,
        sim_scale=sim_scale,
        small_core_penalty=1.08,
        mem_intensity=0.7,
        contention_sensitivity=1.2,
        n_threads=4,
        lc_ipc_fraction=0.55,
        burstiness=3.0,
    )
