"""Latency-critical workload models.

A :class:`LatencyCriticalWorkload` describes a request-serving service as a
service-demand distribution plus a QoS contract (tail percentile and target
latency, Table 1 of the paper).  Demands are expressed in *reference
seconds*: the time the request takes on one big core at the highest DVFS.
A core's *speed* converts demand into service time; it scales with the
core's IPC and clock relative to the reference core, so DVFS and big/small
placement fall out naturally.

Time dilation
-------------
Simulating 36 000 requests/s in Python is infeasible, so high-rate
workloads run as a time-dilated replica: arrival rate is divided by
``sim_scale`` and every demand multiplied by it, which preserves
utilization exactly and scales all queueing delays linearly (a standard
G/G/k property).  Reported latencies are scaled back and the network/stack
``base_latency_ms`` floor is added after de-dilation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.hardware.cores import CoreType
from repro.hardware.soc import Platform
from repro.hardware.topology import Configuration, validate_configuration


@dataclass(frozen=True)
class LatencyCriticalWorkload:
    """A request-serving, QoS-constrained service (Memcached, Web-Search).

    Parameters
    ----------
    name:
        Workload name.
    qos_percentile:
        Tail percentile defining QoS, as a fraction (0.95 = p95).
    target_latency_ms:
        The tail-latency target, ``QoS_target`` in the paper.
    max_load_rps:
        Requests per second at 100% load (Table 1: the highest load at
        which two big cores at max DVFS meet the target).
    demand_mean_ms:
        Mean service demand on the reference core (big @ max DVFS), ms.
    demand_sigma:
        Log-normal sigma of the demand distribution; larger values give
        heavier tails and a softer latency-vs-load knee.
    base_latency_ms:
        Load-independent latency floor (network round trip, kernel stack).
    sim_scale:
        Time-dilation factor for the simulated replica (see module doc).
    small_core_penalty:
        Extra demand multiplier on in-order small cores beyond the IPC
        ratio (out-of-order-sensitive request processing).
    mem_intensity:
        The workload's own memory pressure contribution, used by the
        contention model when batch jobs share a cluster.
    contention_sensitivity:
        How strongly batch pressure inflates this workload's demand.
    n_threads:
        Worker threads; cores beyond this count cannot be used.
    lc_ipc_fraction:
        Instructions retired per cycle relative to the microbenchmark,
        used only to report realistic perf-counter values for LC cores.
    burstiness:
        Mean arrival batch size (1.0 = Poisson); see
        :class:`repro.sim.queueing.DispatchQueue`.
    """

    name: str
    qos_percentile: float
    target_latency_ms: float
    max_load_rps: float
    demand_mean_ms: float
    demand_sigma: float
    base_latency_ms: float
    sim_scale: float = 1.0
    small_core_penalty: float = 1.0
    mem_intensity: float = 0.5
    contention_sensitivity: float = 1.0
    n_threads: int = 4
    lc_ipc_fraction: float = 0.75
    burstiness: float = 1.0
    #: Memoized log-normal location parameter (see :meth:`sample_demands`).
    _demand_mu: float | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.qos_percentile < 1.0:
            raise ValueError("qos_percentile must be a fraction in (0, 1)")
        for attr in (
            "target_latency_ms",
            "max_load_rps",
            "demand_mean_ms",
            "sim_scale",
            "small_core_penalty",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.demand_sigma < 0 or self.base_latency_ms < 0:
            raise ValueError("demand_sigma and base_latency_ms must be non-negative")
        if self.n_threads < 1:
            raise ValueError("n_threads must be at least 1")

    # ------------------------------------------------------------------
    # demand / arrival model (time-dilated)
    # ------------------------------------------------------------------

    def sim_arrival_rate(self, load_fraction: float) -> float:
        """Dilated arrival rate for the simulated replica, requests/s."""
        if load_fraction < 0:
            raise ValueError("load_fraction must be non-negative")
        return load_fraction * self.max_load_rps / self.sim_scale

    def sample_demands(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` dilated service demands, reference-seconds."""
        mu = self._demand_mu
        if mu is None:
            mean_s = self.demand_mean_ms * 1e-3 * self.sim_scale
            mu = np.log(mean_s) - 0.5 * self.demand_sigma**2
            # Frozen dataclass, so memoize through object.__setattr__; the
            # value is a pure function of frozen fields.
            object.__setattr__(self, "_demand_mu", mu)
        return rng.lognormal(mu, self.demand_sigma, n)

    def reported_latency_ms(self, sim_latencies_s: np.ndarray) -> np.ndarray:
        """De-dilate queue latencies and add the network/stack floor."""
        out = np.asarray(sim_latencies_s, dtype=float) / self.sim_scale
        np.multiply(out, 1e3, out=out)
        np.add(out, self.base_latency_ms, out=out)
        return out

    @property
    def idle_latency_ms(self) -> float:
        """Latency of an unloaded service: floor plus one mean service."""
        return self.base_latency_ms + self.demand_mean_ms

    # ------------------------------------------------------------------
    # QoS contract
    # ------------------------------------------------------------------

    def qos_met(self, tail_latency_ms: float) -> bool:
        """Whether a measured tail satisfies the target."""
        return tail_latency_ms <= self.target_latency_ms

    def tardiness(self, tail_latency_ms: float) -> float:
        """``QoS_curr / QoS_target`` (Section 3.4)."""
        return tail_latency_ms / self.target_latency_ms

    # ------------------------------------------------------------------
    # core speed law
    # ------------------------------------------------------------------

    def core_speed(
        self, core_type: CoreType, freq_ghz: float, reference: CoreType
    ) -> float:
        """Service speed of one core relative to the reference big core.

        Speed follows ``IPC * f`` scaling, normalized to the reference
        (big) core at its maximum frequency; in-order small cores pay the
        additional ``small_core_penalty``.
        """
        core_type.validate_freq(freq_ghz)
        rel = (core_type.microbench_ipc * freq_ghz) / (
            reference.microbench_ipc * reference.max_freq_ghz
        )
        if core_type is not reference and core_type.kind != reference.kind:
            rel /= self.small_core_penalty
        return rel

    def with_overrides(self, **changes: object) -> "LatencyCriticalWorkload":
        """A copy with some parameters replaced (e.g. a different scale)."""
        return replace(self, **changes)


def lc_server_speeds(
    workload: LatencyCriticalWorkload,
    platform: Platform,
    config: Configuration,
    *,
    big_slowdown: float = 1.0,
    small_slowdown: float = 1.0,
) -> list[float]:
    """Queue-server speeds for a configuration's cores, big cores first.

    The list is truncated to the workload's thread count: allocating more
    cores than worker threads buys nothing (the paper's configuration
    space therefore stops at four cores).  Slowdowns >= 1 come from the
    contention model when batch jobs share a cluster.
    """
    if big_slowdown < 1.0 or small_slowdown < 1.0:
        raise ValueError("slowdowns must be >= 1")
    validate_configuration(platform, config)
    reference = platform.big.core_type
    speeds: list[float] = []
    if config.n_big:
        big_speed = (
            workload.core_speed(platform.big.core_type, config.big_freq_ghz, reference)
            / big_slowdown
        )
        speeds.extend([big_speed] * config.n_big)
    if config.n_small:
        small_speed = (
            workload.core_speed(
                platform.small.core_type, config.small_freq_ghz, reference
            )
            / small_slowdown
        )
        speeds.extend([small_speed] * config.n_small)
    return speeds[: workload.n_threads]


def lc_server_speeds_array(
    workload: LatencyCriticalWorkload,
    platform: Platform,
    config: Configuration,
    *,
    big_slowdown: float = 1.0,
    small_slowdown: float = 1.0,
) -> np.ndarray:
    """:func:`lc_server_speeds` as a float array, for the array engine.

    The interval engine computes the speed vector once per distinct
    decision and hands the same buffer to the queue on every repeat, so
    the per-interval cost of the speed law drops to a cache lookup.
    """
    return np.array(
        lc_server_speeds(
            workload,
            platform,
            config,
            big_slowdown=big_slowdown,
            small_slowdown=small_slowdown,
        ),
        dtype=float,
    )


def capacity_rps(
    workload: LatencyCriticalWorkload,
    platform: Platform,
    config: Configuration,
) -> float:
    """Nominal saturation throughput of a configuration, requests/s.

    Aggregate speed divided by mean demand.  A useful screening bound:
    offered load above this cannot meet any finite latency target.
    """
    speeds = lc_server_speeds(workload, platform, config)
    return sum(speeds) / (workload.demand_mean_ms * 1e-3)


def used_core_ids(
    workload: LatencyCriticalWorkload,
    platform: Platform,
    config: Configuration,
    lc_cores: Sequence[str],
) -> tuple[str, ...]:
    """The subset of allocated cores the workload's threads actually use."""
    return tuple(lc_cores[: workload.n_threads])
