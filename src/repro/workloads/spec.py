"""SPEC CPU2006 batch program definitions.

The paper's Figure 11 collocates Web-Search with twelve SPEC CPU2006
programs.  The ``(ipc_factor, mem_intensity)`` pairs below are synthetic
stand-ins for the real binaries (which we cannot run), chosen from the
well-known characterization literature so that the compute/memory spectrum
matches: povray/namd/calculix are compute-bound (biggest big-core
speedups; the paper reports calculix at 3.35x over static), while
lbm/libquantum are memory-bound (smallest speedups, 1.6x for libquantum).
"""

from __future__ import annotations

from repro.workloads.batch import BatchJobSet, BatchProgram

#: The twelve programs of the paper's Figure 11, in its plotting order.
SPEC_CPU2006: tuple[BatchProgram, ...] = (
    BatchProgram("povray", ipc_factor=1.05, mem_intensity=0.06),
    BatchProgram("namd", ipc_factor=1.10, mem_intensity=0.08),
    BatchProgram("gromacs", ipc_factor=0.95, mem_intensity=0.12),
    BatchProgram("tonto", ipc_factor=0.90, mem_intensity=0.18),
    BatchProgram("sjeng", ipc_factor=0.85, mem_intensity=0.22),
    BatchProgram("calculix", ipc_factor=1.00, mem_intensity=0.05),
    BatchProgram("cactusADM", ipc_factor=0.70, mem_intensity=0.55),
    BatchProgram("lbm", ipc_factor=0.60, mem_intensity=0.90),
    BatchProgram("astar", ipc_factor=0.65, mem_intensity=0.45),
    BatchProgram("soplex", ipc_factor=0.60, mem_intensity=0.60),
    BatchProgram("libquantum", ipc_factor=0.55, mem_intensity=0.85),
    BatchProgram("zeusmp", ipc_factor=0.75, mem_intensity=0.50),
)


def spec_program(name: str) -> BatchProgram:
    """Look up one SPEC CPU2006 program by name."""
    for program in SPEC_CPU2006:
        if program.name == name:
            return program
    raise KeyError(
        f"unknown SPEC program {name!r}; available: {[p.name for p in SPEC_CPU2006]}"
    )


def spec_job_set(name: str) -> BatchJobSet:
    """A job set replicating one program on every free core (Figure 11)."""
    return BatchJobSet(programs=(spec_program(name),))


def spec_mix() -> BatchJobSet:
    """A round-robin mix of all twelve programs."""
    return BatchJobSet(programs=SPEC_CPU2006)
