"""Batch (throughput-oriented) workload models.

HipsterCo collocates batch programs on the cores the latency-critical
workload does not need, and observes them only through aggregate IPS from
hardware counters (paper Section 3.2).  Each :class:`BatchProgram` is a
two-parameter model: an IPC factor (compute throughput relative to the
characterization microbenchmark) and a memory intensity in ``[0, 1]``.
Per-core IPS follows a bottleneck law between the core's compute rate
(which scales with IPC and frequency) and a frequency-independent memory
ceiling -- so compute-bound programs (calculix) gain the full 2.6x from a
big core at max DVFS while memory-bound ones (lbm, libquantum) barely
move, exactly the spread the paper reports in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cores import CoreType

#: IPS ceiling imposed by DRAM bandwidth for a fully memory-bound program.
MEMORY_CEILING_IPS = 1.1e9


@dataclass(frozen=True)
class BatchProgram:
    """A throughput-oriented program (one SPEC CPU2006 benchmark).

    Parameters
    ----------
    name:
        Benchmark name, e.g. ``"lbm"``.
    ipc_factor:
        Compute-phase IPC relative to the stress microbenchmark's IPC.
    mem_intensity:
        Fraction of execution bound by memory, in ``[0, 1]``; also the
        program's pressure contribution to the contention model.
    """

    name: str
    ipc_factor: float
    mem_intensity: float

    def __post_init__(self) -> None:
        if self.ipc_factor <= 0:
            raise ValueError("ipc_factor must be positive")
        if not 0.0 <= self.mem_intensity <= 1.0:
            raise ValueError("mem_intensity must be within [0, 1]")

    def ips(
        self,
        core_type: CoreType,
        freq_ghz: float,
        *,
        throughput_factor: float = 1.0,
    ) -> float:
        """Instructions per second on one core of the given type.

        The bottleneck law interpolates between the compute rate
        ``ipc_factor * IPC_core * f`` and the memory ceiling according to
        the program's memory intensity.  ``throughput_factor`` (<= 1)
        applies contention degradation computed by
        :class:`repro.sim.contention.ContentionModel`.
        """
        if not 0.0 < throughput_factor <= 1.0:
            raise ValueError("throughput_factor must be within (0, 1]")
        compute_ips = self.ipc_factor * core_type.microbench_ips(freq_ghz)
        seconds_per_instr = (
            (1.0 - self.mem_intensity) / compute_ips
            + self.mem_intensity / MEMORY_CEILING_IPS
        )
        return throughput_factor / seconds_per_instr


@dataclass(frozen=True)
class BatchJobSet:
    """The pool of batch jobs available for collocation.

    The engine spawns one job per core left over by the latency-critical
    workload (the paper's setup); job ``i`` runs ``programs[i % len]``, so
    a single-program set replicates that program (Figure 11's per-program
    runs) while a longer list gives a round-robin mix.
    """

    programs: tuple[BatchProgram, ...]

    def __post_init__(self) -> None:
        if not self.programs:
            raise ValueError("a batch job set needs at least one program")

    def program_for_job(self, job_index: int) -> BatchProgram:
        """Program executed by the given job slot."""
        if job_index < 0:
            raise ValueError("job_index must be non-negative")
        return self.programs[job_index % len(self.programs)]

    @property
    def names(self) -> tuple[str, ...]:
        """Names of the programs in the set."""
        return tuple(p.name for p in self.programs)
