"""Reward mechanism: Algorithm 1 of the paper, lines 1-15.

The reward ``lambda_n`` for the interval just finished has three parts:

* **QoS reward** -- ``QoS_reward = QoS_curr / QoS_target``.  Below the
  danger zone the reward is ``QoS_reward + 1`` (prefer configurations that
  approach the target from below, i.e. spend less); above the target it is
  ``-QoS_reward - 1`` (violations are punished in proportion to their
  tardiness).
* **Stochastic reward** -- between the danger threshold and the target a
  uniform ``Random(0, 1)`` penalty keeps some exploration pressure on
  configurations that sit close under the target (line 9).
* **Power reward** (HipsterIn) -- ``TDP / Power``: cheaper intervals score
  higher (line 15); or **Throughput reward** (HipsterCo) --
  ``(BIPS + SIPS) / (maxIPS(B) + maxIPS(S))``, the batch clusters'
  aggregate IPS normalized by the platform's peak (lines 12-13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Danger-zone fraction QoS_D (Section 3.3; shared with the heuristic).
DEFAULT_QOS_DANGER = 0.85


@dataclass(frozen=True)
class RewardInputs:
    """Measurements feeding one reward evaluation."""

    qos_curr_ms: float
    qos_target_ms: float
    power_w: float
    tdp_w: float
    batch_present: bool = False
    big_ips: float = 0.0
    small_ips: float = 0.0
    max_ips_big: float = 1.0
    max_ips_small: float = 1.0

    def __post_init__(self) -> None:
        if self.qos_target_ms <= 0:
            raise ValueError("qos_target_ms must be positive")
        if self.power_w <= 0 or self.tdp_w <= 0:
            raise ValueError("power_w and tdp_w must be positive")
        if self.max_ips_big <= 0 or self.max_ips_small <= 0:
            raise ValueError("max IPS denominators must be positive")


@dataclass(frozen=True)
class RewardBreakdown:
    """The reward and its components, for inspection and tests."""

    total: float
    qos_part: float
    stochastic_penalty: float
    objective_part: float
    violated: bool


def compute_reward(
    inputs: RewardInputs,
    rng: np.random.Generator,
    *,
    qos_danger: float = DEFAULT_QOS_DANGER,
) -> RewardBreakdown:
    """Evaluate Algorithm 1, lines 1-15, for one interval."""
    if not 0.0 < qos_danger <= 1.0:
        raise ValueError("qos_danger must be within (0, 1]")
    qos_reward = inputs.qos_curr_ms / inputs.qos_target_ms
    stochastic = 0.0
    violated = False
    if inputs.qos_curr_ms < inputs.qos_target_ms * qos_danger:
        qos_part = qos_reward + 1.0  # line 7
    elif inputs.qos_curr_ms < inputs.qos_target_ms:
        stochastic = float(rng.uniform(0.0, 1.0))  # line 9
        qos_part = qos_reward + 1.0
    else:
        qos_part = -qos_reward - 1.0  # line 11
        violated = True

    if inputs.batch_present:
        objective = (inputs.big_ips + inputs.small_ips) / (
            inputs.max_ips_big + inputs.max_ips_small
        )  # line 13
    else:
        objective = inputs.tdp_w / inputs.power_w  # line 15

    total = qos_part - stochastic + objective
    return RewardBreakdown(
        total=total,
        qos_part=qos_part,
        stochastic_penalty=stochastic,
        objective_part=objective,
        violated=violated,
    )
