"""Hipster's heuristic mapper (the learning-phase controller, Section 3.3).

Structurally this is the same danger/safe feedback automaton as
Octopus-Man (:class:`repro.policies.octopusman.LadderStateMachine`), but
its ladder spans the full heterogeneous configuration space -- mixes of
big and small cores across DVFS points -- ordered by the microbenchmark
characterization.  The paper keeps the heuristic deliberately simple: its
job is not to be optimal but to steer the system through *viable*
configurations so the lookup table fills with reasonable values quickly.
"""

from __future__ import annotations

from repro.hardware.soc import Platform
from repro.hardware.topology import Configuration, pareto_configurations
from repro.policies.base import Decision, TaskManager, resolve_decision
from repro.policies.octopusman import (
    DEFAULT_QOS_DANGER,
    DEFAULT_QOS_SAFE,
    LadderStateMachine,
)


def pareto_ladder(
    platform: Platform, *, max_total_cores: int | None = 4
) -> tuple[Configuration, ...]:
    """A ladder from first principles: the measured Pareto frontier.

    The capacity/power Pareto frontier of the configuration space yields a
    Figure 2c-like ladder where every upward transition buys capacity at a
    power cost.  Note its known blind spot (the very reason the paper
    pairs the heuristic with learning): aggregate-throughput ordering
    never includes big-cores-only states at high DVFS, which
    latency-sensitive, single-thread-bound workloads need at peak load.
    """
    from repro.hardware.topology import enumerate_configurations

    configs = enumerate_configurations(platform, max_total_cores=max_total_cores)
    return pareto_configurations(platform, configs)


def hipster_ladder(
    platform: Platform, *, max_total_cores: int | None = 4
) -> tuple[Configuration, ...]:
    """The heuristic mapper's ladder (paper Section 3.3 / Figure 2c).

    On platforms where the paper's published 13-state Juno ladder is
    expressible (the default Juno R1 model), use it verbatim -- it is the
    paper's own artifact, ordered "approximately from highest to lowest
    power efficiency" and topped by the maximum single-thread-performance
    state ``2B-1.15``.  On other platforms fall back to the measured
    Pareto frontier (:func:`pareto_ladder`).
    """
    from repro.hardware.topology import (
        PAPER_FIG2C_LADDER,
        config_by_label,
        enumerate_configurations,
    )

    configs = enumerate_configurations(platform, max_total_cores=max_total_cores)
    try:
        return tuple(config_by_label(configs, label) for label in PAPER_FIG2C_LADDER)
    except KeyError:
        return pareto_ladder(platform, max_total_cores=max_total_cores)


def build_heuristic_mapper(
    platform: Platform,
    *,
    qos_danger: float = DEFAULT_QOS_DANGER,
    qos_safe: float = DEFAULT_QOS_SAFE,
    max_total_cores: int | None = 4,
) -> LadderStateMachine:
    """A ready-to-use heuristic mapper for a platform."""
    return LadderStateMachine(
        ladder=hipster_ladder(platform, max_total_cores=max_total_cores),
        qos_danger=qos_danger,
        qos_safe=qos_safe,
    )


class HipsterHeuristicPolicy(TaskManager):
    """Hipster's heuristic mapper running *alone* (Section 4.2.1).

    The paper evaluates the learning-phase heuristic as a standalone
    policy (Figure 5, right column): it explores the full heterogeneous
    ladder -- unlike Octopus-Man -- but still oscillates and violates QoS,
    which is precisely why Hipster layers reinforcement learning on top.
    """

    def __init__(
        self,
        *,
        qos_danger: float = DEFAULT_QOS_DANGER,
        qos_safe: float | None = None,
        collocate_batch: bool = False,
        max_total_cores: int | None = 4,
    ):
        super().__init__()
        self.name = "hipster-heuristic"
        self._qos_danger = qos_danger
        self._qos_safe = qos_safe
        self._collocate = collocate_batch
        self._max_total_cores = max_total_cores
        self._machine: LadderStateMachine | None = None

    def start(self, ctx) -> None:
        super().start(ctx)
        from repro.policies.octopusman import default_qos_safe

        self._machine = build_heuristic_mapper(
            ctx.platform,
            qos_danger=self._qos_danger,
            qos_safe=self._qos_safe or default_qos_safe(ctx.workload.name),
            max_total_cores=self._max_total_cores,
        )

    def decide(self) -> Decision:
        assert self._machine is not None
        return resolve_decision(
            self.ctx.platform, self._machine.current, collocate_batch=self._collocate
        )

    def observe(self, observation) -> None:
        assert self._machine is not None
        self._machine.step(
            observation.tail_latency_ms, self.ctx.workload.target_latency_ms
        )

    def stable_horizon(self, offered_loads) -> int:
        # Tail-latency feedback: future decisions are unprovable from the
        # trace, so the policy stays on the scalar path (explicit pin).
        return 1
