"""Hipster: the hybrid reinforcement-learning task manager (Sections 3.2-3.5).

Hipster runs in two phases.  During the **learning phase** the heuristic
mapper (a danger/safe feedback automaton over the characterized ladder)
drives the system through viable configurations while every interval's
outcome updates the lookup table.  After a prefixed time quantum it enters
the **exploitation phase** (Algorithm 2): each interval it applies
``argmax_c R(w, c)`` for the current load bucket ``w``, keeps updating the
table, and falls back into the learning phase whenever the rolling QoS
guarantee drops to the threshold ``X`` (line 18) -- e.g. after a change in
the batch mix or any other drift.

Two variants share all of this and differ only in the objective term of
the reward and in what the leftover cores do:

* :data:`Variant.INTERACTIVE` (HipsterIn) -- leftover cluster parked at
  minimum DVFS; reward includes ``TDP / Power``.
* :data:`Variant.COLLOCATED` (HipsterCo) -- leftover cores run batch jobs,
  a batch-only cluster races to maximum DVFS; reward includes the
  normalized batch IPS.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.buckets import DEFAULT_BUCKET_SIZE, LoadBucketizer
from repro.core.heuristic import build_heuristic_mapper
from repro.core.rewards import RewardInputs, compute_reward
from repro.core.table import DEFAULT_ALPHA, DEFAULT_GAMMA, LookupTable
from repro.hardware.topology import (
    Configuration,
    config_capacity_ips,
    enumerate_configurations,
)
from repro.policies.base import Decision, TaskManager, resolve_decision
from repro.policies.octopusman import DEFAULT_QOS_DANGER

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> core import cycle
    from repro.sim.records import IntervalObservation


class Variant(str, enum.Enum):
    """Which Hipster variant to run."""

    INTERACTIVE = "in"
    COLLOCATED = "co"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Phase(str, enum.Enum):
    """Hipster's runtime phase."""

    LEARNING = "learning"
    EXPLOITATION = "exploitation"


@dataclass(frozen=True)
class HipsterParams:
    """Tunables, with the paper's defaults (Sections 3.4 and 4.1)."""

    learning_duration_s: float = 500.0
    bucket_size: float | None = None  # None: the paper's per-workload default
    alpha: float = DEFAULT_ALPHA
    gamma: float = DEFAULT_GAMMA
    qos_danger: float = DEFAULT_QOS_DANGER
    #: None: resolved per workload at start() via the swept defaults.
    qos_safe: float | None = None
    reenter_threshold: float = 0.85  # Algorithm 2's X
    reenter_window_s: float = 100.0
    max_total_cores: int | None = 4
    #: Guided exploration during exploitation: with probability epsilon,
    #: try a configuration whose microbenchmark capacity lies within
    #: ``exploration_band`` of the incumbent's (never something obviously
    #: undersized).  The paper relies on its stochastic reward for
    #: residual exploration; on the noisier simulated substrate a small
    #: explicit rate is needed for the lookup table to discover
    #: lower-power configurations after the learning phase (the
    #: exploration ablation bench quantifies both settings).
    epsilon: float = 0.04
    exploration_band: tuple[float, float] = (0.70, 1.35)
    #: Safe threshold used *during the learning phase only*.  A higher
    #: value makes the heuristic descend (and bounce) more aggressively,
    #: which spreads lookup-table visits over adjacent ladder states --
    #: the exploration the paper gets from its oscillating heuristic
    #: (Figure 5c).  QoS during learning suffers slightly; exploitation
    #: gains fresher values to compare.
    learning_qos_safe: float = 0.30
    #: Exploitation keeps the incumbent configuration unless the argmax
    #: beats it by this margin.  Damps near-tie flapping (each flap is a
    #: costly migration, Section 3.6); see the switch-margin ablation
    #: bench for the sensitivity.
    switch_margin: float = 0.75
    #: Learning-rate schedule for the lookup table: "fixed" is the
    #: paper's constant alpha; "decay" (default) uses a per-entry
    #: stochastic-approximation schedule that removes the recency bias a
    #: constant alpha suffers while the value scale is still growing --
    #: necessary on the simulated platform, whose per-interval tail
    #: estimates are noisier than the real hardware's (fewer requests per
    #: interval in the time-dilated replica).  The alpha-schedule
    #: ablation bench quantifies the difference.
    alpha_schedule: str = "decay"

    def __post_init__(self) -> None:
        if self.learning_duration_s < 0:
            raise ValueError("learning_duration_s must be non-negative")
        if not 0.0 <= self.reenter_threshold <= 1.0:
            raise ValueError("reenter_threshold must be within [0, 1]")
        if self.reenter_window_s <= 0:
            raise ValueError("reenter_window_s must be positive")
        if not 0.0 <= self.epsilon < 1.0:
            raise ValueError("epsilon must be within [0, 1)")


class Hipster(TaskManager):
    """The hybrid heuristic + Q-learning task manager."""

    def __init__(
        self,
        variant: Variant | str = Variant.INTERACTIVE,
        params: HipsterParams | None = None,
    ):
        super().__init__()
        self.variant = Variant(variant)
        self.params = params or HipsterParams()
        self.name = f"hipster-{self.variant.value}"
        self._phase = Phase.LEARNING
        self._phase_elapsed_s = 0.0
        self._configs: tuple[Configuration, ...] = ()
        self._table: LookupTable | None = None
        self._machine = None
        self._bucketizer: LoadBucketizer | None = None
        self._tie_order: tuple[int, ...] = ()
        self._current_bucket = 0
        self._pending: tuple[int, int] | None = None
        self._last_action: int | None = None
        self._qos_window: deque[bool] = deque()
        self._phase_switches = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, ctx) -> None:
        super().start(ctx)
        platform = ctx.platform
        self._configs = enumerate_configurations(
            platform, max_total_cores=self.params.max_total_cores
        )
        self._table = LookupTable(
            n_actions=len(self._configs),
            alpha=self.params.alpha,
            gamma=self.params.gamma,
            alpha_schedule=self.params.alpha_schedule,
        )
        from repro.policies.octopusman import default_qos_safe

        resolved_safe = self.params.qos_safe or default_qos_safe(ctx.workload.name)
        self._machine = build_heuristic_mapper(
            platform,
            qos_danger=self.params.qos_danger,
            qos_safe=max(resolved_safe, self.params.learning_qos_safe),
            max_total_cores=self.params.max_total_cores,
        )
        bucket_size = self.params.bucket_size or DEFAULT_BUCKET_SIZE.get(
            ctx.workload.name, 0.05
        )
        self._bucketizer = LoadBucketizer(bucket_size)
        # Equal Q-values resolve toward the most capable configuration:
        # in a barely-known state the QoS-safe guess is more capacity.
        self._capacity = {
            i: config_capacity_ips(platform, c) for i, c in enumerate(self._configs)
        }
        self._tie_order = tuple(
            sorted(range(len(self._configs)), key=lambda i: -self._capacity[i])
        )
        window = max(int(self.params.reenter_window_s / ctx.interval_s), 1)
        self._qos_window = deque(maxlen=window)

    # ------------------------------------------------------------------
    # introspection (reports/tests)
    # ------------------------------------------------------------------

    @property
    def phase(self) -> Phase:
        """Current runtime phase."""
        return self._phase

    @property
    def phase_switches(self) -> int:
        """How many times the phase changed during the run."""
        return self._phase_switches

    def scenario_stats(self) -> dict[str, float | int]:
        """Instance state the figures need back from scenario workers."""
        return {"phase_switches": self._phase_switches}

    @property
    def table(self) -> LookupTable:
        """The lookup table (available after :meth:`start`)."""
        if self._table is None:
            raise RuntimeError("manager not started")
        return self._table

    @property
    def configurations(self) -> tuple[Configuration, ...]:
        """The action space (available after :meth:`start`)."""
        return self._configs

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------

    def decide(self) -> Decision:
        config, action = self._choose()
        self._pending = (self._current_bucket, action)
        self._last_action = action
        collocate = (
            self.variant is Variant.COLLOCATED and self.ctx.batch_present
        )
        return resolve_decision(self.ctx.platform, config, collocate_batch=collocate)

    def stable_horizon(self, offered_loads) -> int:
        # The learner consumes rewards (and rng during exploration) every
        # interval; no epoch is provable, so the scalar path stays in
        # charge (explicit pin of the TaskManager default).
        return 1

    def _choose(self) -> tuple[Configuration, int]:
        assert self._table is not None and self._machine is not None
        bucket = self._current_bucket
        if self._phase is Phase.LEARNING or not self._table.state_visited(bucket):
            config = self._machine.current
            return config, self._configs.index(config)
        if self.params.epsilon > 0 and self.ctx.rng.random() < self.params.epsilon:
            explored = self._explore()
            if explored is not None:
                return self._configs[explored], explored
        action, best_value = self._table.best_action(bucket, tie_break=self._tie_order)
        incumbent = self._last_action
        if (
            incumbent is not None
            and incumbent != action
            and self._table.visited(bucket, incumbent)
            and self._table.value(bucket, incumbent)
            >= best_value - self.params.switch_margin
        ):
            action = incumbent
        return self._configs[action], action

    def _explore(self) -> int | None:
        """Pick a capacity-plausible neighbour of the incumbent, if any."""
        incumbent = self._last_action
        if incumbent is None:
            return None
        lo, hi = self.params.exploration_band
        reference = self._capacity[incumbent]
        candidates = [
            a
            for a in range(len(self._configs))
            if a != incumbent and lo * reference <= self._capacity[a] <= hi * reference
        ]
        if not candidates:
            return None
        # Prefer the least-visited candidate: one fresh update is all a
        # truly better configuration needs to take over the argmax.
        bucket = self._current_bucket
        min_visits = min(self._table.visit_count(bucket, a) for a in candidates)
        least = [
            a for a in candidates if self._table.visit_count(bucket, a) == min_visits
        ]
        return int(least[self.ctx.rng.integers(len(least))])

    def observe(self, observation: "IntervalObservation") -> None:
        assert self._table is not None and self._machine is not None
        workload = self.ctx.workload
        platform = self.ctx.platform
        next_bucket = self._bucketizer.bucket(observation.measured_load)

        batch_active = (
            self.variant is Variant.COLLOCATED
            and self.ctx.batch_present
            and observation.decision.run_batch
        )
        reward = compute_reward(
            RewardInputs(
                qos_curr_ms=observation.tail_latency_ms,
                qos_target_ms=workload.target_latency_ms,
                power_w=observation.power_w,
                tdp_w=platform.tdp_w,
                batch_present=batch_active,
                big_ips=observation.big_ips,
                small_ips=observation.small_ips,
                max_ips_big=platform.big.max_microbench_ips(),
                max_ips_small=platform.small.max_microbench_ips(),
            ),
            self.ctx.rng,
            qos_danger=self.params.qos_danger,
        )
        if self._pending is not None:
            state, action = self._pending
            self._table.update(state, action, reward.total, next_bucket)

        if self._phase is Phase.LEARNING:
            self._machine.step(
                observation.tail_latency_ms, workload.target_latency_ms
            )
        self._qos_window.append(observation.qos_met)
        self._advance_phase(observation)
        self._current_bucket = next_bucket

    def _advance_phase(self, observation: "IntervalObservation") -> None:
        self._phase_elapsed_s += observation.duration_s
        if self._phase is Phase.LEARNING:
            if self._phase_elapsed_s >= self.params.learning_duration_s:
                self._switch(Phase.EXPLOITATION)
        else:
            window = self._qos_window
            if (
                window.maxlen is not None
                and len(window) == window.maxlen
                and sum(window) / len(window) <= self.params.reenter_threshold
            ):
                # Algorithm 2, line 18: QoSGuarantee <= X -> learning phase.
                self._machine.seed_from(observation.decision.config)
                self._switch(Phase.LEARNING)

    def _switch(self, phase: Phase) -> None:
        self._phase = phase
        self._phase_elapsed_s = 0.0
        self._qos_window.clear()
        self._phase_switches += 1


def hipster_in(params: HipsterParams | None = None) -> Hipster:
    """HipsterIn: latency-critical workload alone, minimize power."""
    return Hipster(Variant.INTERACTIVE, params)


def hipster_co(params: HipsterParams | None = None) -> Hipster:
    """HipsterCo: collocate batch jobs, maximize their throughput."""
    return Hipster(Variant.COLLOCATED, params)
