"""Load quantization into buckets (the MDP state space).

Hipster's state ``w_n`` is the latency-critical workload's load during the
previous interval, quantized into discrete buckets between ``0`` and
``T - 1`` (Section 3.2).  The bucket size trades energy savings against
QoS: small buckets allow fine-grained configurations but react to noise;
large buckets lump distinct loads together (Section 4.2.5, Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bucket sizes used in Figure 10's sweep, by workload (fractions of max).
PAPER_BUCKET_SWEEP = {
    "websearch": (0.03, 0.06, 0.09),
    "memcached": (0.02, 0.03, 0.04),
}

#: Deployment defaults, tuned with the paper's rule -- the bucket size
#: inside Figure 10's sweep that maximizes the QoS guarantee with good
#: energy savings (Section 4.2.5) -- re-applied on the simulated
#: substrate (whose per-interval tail estimates are noisier, favouring
#: the coarser end of each sweep).
DEFAULT_BUCKET_SIZE = {
    "websearch": 0.09,
    "memcached": 0.04,
}


@dataclass(frozen=True)
class LoadBucketizer:
    """Quantizes load fractions into ``ceil(1 / bucket_size)`` buckets."""

    bucket_size: float

    def __post_init__(self) -> None:
        if not 0.0 < self.bucket_size <= 1.0:
            raise ValueError("bucket_size must be a fraction in (0, 1]")

    @property
    def n_buckets(self) -> int:
        """Number of buckets covering loads in ``[0, 1]``."""
        return int(1.0 / self.bucket_size - 1e-9) + 1

    def bucket(self, load_fraction: float) -> int:
        """Bucket index of a load fraction (clamped into ``[0, 1]``)."""
        if load_fraction < 0:
            raise ValueError("load_fraction must be non-negative")
        clamped = min(load_fraction, 1.0)
        return min(int(clamped / self.bucket_size), self.n_buckets - 1)

    def representative_load(self, bucket: int) -> float:
        """Mid-point load of a bucket (useful for reports)."""
        if not 0 <= bucket < self.n_buckets:
            raise ValueError(f"bucket must be within [0, {self.n_buckets})")
        return min((bucket + 0.5) * self.bucket_size, 1.0)


def default_bucketizer(workload_name: str) -> LoadBucketizer:
    """The paper's tuned bucket size for a known workload (3% / 6%)."""
    try:
        return LoadBucketizer(DEFAULT_BUCKET_SIZE[workload_name])
    except KeyError:
        raise KeyError(
            f"no tuned bucket size for {workload_name!r}; construct a "
            "LoadBucketizer explicitly"
        ) from None
