"""The lookup table ``R(w, c)`` and its Q-learning update.

The table estimates the total discounted reward of choosing configuration
``c`` in load bucket ``w`` (Section 3.1).  The paper implements it as a
Python dictionary for O(1) access (Section 3.7); so do we.  The update
rule is Algorithm 1's line 16:

    R(w_n, c_n) += alpha * (lambda_n + gamma * max_d R(w_n+1, d) - R(w_n, c_n))

with learning rate ``alpha = 0.6`` and discount ``gamma = 0.9``
(Section 3.4, empirically determined).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: Discount factor gamma (Section 3.4).
DEFAULT_GAMMA = 0.9

#: Learning rate alpha (Section 3.4).
DEFAULT_ALPHA = 0.6


@dataclass
class LookupTable:
    """``R(w, c)`` over (load bucket, configuration index).

    ``n_actions`` is the size of the configuration space; action indices
    are the caller's concern (Hipster uses the index into its enumerated
    configuration tuple).
    """

    n_actions: int
    alpha: float = DEFAULT_ALPHA
    gamma: float = DEFAULT_GAMMA
    alpha_schedule: str = "fixed"
    alpha_min: float = 0.10
    _table: dict[tuple[int, int], float] = field(default_factory=dict)
    _visits: dict[tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_actions <= 0:
            raise ValueError("n_actions must be positive")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be within (0, 1]")
        if not 0.0 <= self.gamma < 1.0:
            raise ValueError("gamma must be within [0, 1)")
        if self.alpha_schedule not in ("fixed", "decay"):
            raise ValueError("alpha_schedule must be 'fixed' or 'decay'")
        if not 0.0 < self.alpha_min <= 1.0:
            raise ValueError("alpha_min must be within (0, 1]")

    def value(self, state: int, action: int) -> float:
        """``R(w, c)``; unvisited entries are 0 (Algorithm 2, line 4)."""
        self._check(state, action)
        return self._table.get((state, action), 0.0)

    def visited(self, state: int, action: int) -> bool:
        """Whether the entry has ever been updated."""
        self._check(state, action)
        return (state, action) in self._table

    def state_visited(self, state: int) -> bool:
        """Whether any action has been tried in this state."""
        if state < 0:
            raise ValueError("state must be non-negative")
        return any((state, a) in self._table for a in range(self.n_actions))

    def best_action(
        self, state: int, *, tie_break: Iterable[int] | None = None
    ) -> tuple[int, float]:
        """``argmax_c R(w, c)`` with its value (Algorithm 2, line 7).

        Unvisited entries count as 0, exactly as in the paper.  Ties are
        broken by ``tie_break`` order (e.g. the heuristic ladder, so equal
        scores prefer lower-power configurations) or by index.
        """
        order = list(tie_break) if tie_break is not None else range(self.n_actions)
        best_action, best_value = None, float("-inf")
        for action in order:
            self._check(state, action)
            value = self.value(state, action)
            if value > best_value:
                best_action, best_value = action, value
        assert best_action is not None
        return best_action, best_value

    def max_value(self, state: int) -> float:
        """``max_d R(w, d)`` -- the bootstrap term of the update."""
        return max(self.value(state, a) for a in range(self.n_actions))

    def update(
        self, state: int, action: int, reward: float, next_state: int
    ) -> float:
        """Apply Algorithm 1's line 16; returns the new ``R(w, c)``."""
        self._check(state, action)
        self._check(next_state, 0)
        old = self.value(state, action)
        alpha = self._effective_alpha(state, action)
        new = old + alpha * (
            reward + self.gamma * self.max_value(next_state) - old
        )
        self._table[(state, action)] = new
        self._visits[(state, action)] = self._visits.get((state, action), 0) + 1
        return new

    def _effective_alpha(self, state: int, action: int) -> float:
        """Learning rate for the next update of an entry.

        ``fixed`` is the paper's constant alpha.  ``decay`` uses the
        stochastic-approximation schedule ``1 / (n + 1) ** 0.6`` floored
        at ``alpha_min``: the first visit of an entry jumps directly to
        its bootstrap target (eliminating stale values from earlier in
        the run, when the value scale was still growing), and subsequent
        visits average measurement noise away while the floor preserves
        adaptivity to drift.
        """
        if self.alpha_schedule == "fixed":
            return self.alpha
        n = self._visits.get((state, action), 0)
        return max(self.alpha_min, 1.0 / (n + 1) ** 0.6)

    def visit_count(self, state: int, action: int) -> int:
        """How many times the entry has been updated."""
        self._check(state, action)
        return self._visits.get((state, action), 0)

    def __len__(self) -> int:
        return len(self._table)

    def snapshot(self) -> dict[tuple[int, int], float]:
        """A copy of the populated entries (for inspection/tests)."""
        return dict(self._table)

    def _check(self, state: int, action: int) -> None:
        if state < 0:
            raise ValueError("state must be non-negative")
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action must be within [0, {self.n_actions})")
