"""Hipster: the paper's contribution (Sections 3.1-3.7).

* :mod:`~repro.core.buckets` -- load quantization (the MDP state space);
* :mod:`~repro.core.table` -- the lookup table ``R(w, c)`` and Q-update;
* :mod:`~repro.core.rewards` -- Algorithm 1 (QoS / stochastic /
  power / throughput rewards);
* :mod:`~repro.core.heuristic` -- the learning-phase heuristic mapper;
* :mod:`~repro.core.hipster` -- HipsterIn and HipsterCo (Algorithm 2).
"""

from repro.core.buckets import (
    DEFAULT_BUCKET_SIZE,
    PAPER_BUCKET_SWEEP,
    LoadBucketizer,
    default_bucketizer,
)
from repro.core.heuristic import (
    HipsterHeuristicPolicy,
    build_heuristic_mapper,
    hipster_ladder,
    pareto_ladder,
)
from repro.core.hipster import (
    Hipster,
    HipsterParams,
    Phase,
    Variant,
    hipster_co,
    hipster_in,
)
from repro.core.rewards import RewardBreakdown, RewardInputs, compute_reward
from repro.core.table import DEFAULT_ALPHA, DEFAULT_GAMMA, LookupTable

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_BUCKET_SIZE",
    "DEFAULT_GAMMA",
    "Hipster",
    "HipsterHeuristicPolicy",
    "HipsterParams",
    "LoadBucketizer",
    "LookupTable",
    "PAPER_BUCKET_SWEEP",
    "Phase",
    "RewardBreakdown",
    "RewardInputs",
    "Variant",
    "build_heuristic_mapper",
    "compute_reward",
    "default_bucketizer",
    "hipster_co",
    "hipster_in",
    "hipster_ladder",
    "pareto_ladder",
]
