"""The stable public facade: four entry points over the whole library.

Everything an external caller needs funnels through here::

    from repro.api import run_scenario, run_pack, sweep, open_runner

    outcome = run_scenario("diurnal-policy", workload="memcached",
                           manager="hipster-in", quick=True)
    print(outcome.result.qos_guarantee())

    with open_runner(jobs=4, cache_dir=".cache") as runner:
        results = sweep("edge-load", {"level": [0.5, 1.0]},
                        workload="memcached", runner=runner)
        report = run_pack("packs/ci-smoke.yaml", runner=runner)

The facade is intentionally small and **stable**: these four callables,
the result types they return and the error hierarchy in
:mod:`repro.errors` are the supported surface; everything else may move
between releases.  Bad names and parameters raise
:class:`~repro.errors.ReproError` subclasses with actionable messages
(valid choices plus a "did you mean" suggestion).
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import (
    ExecutionError,
    PackError,
    ReproError,
    ResumeMismatchError,
    RunInterruptedError,
    SpecFailedError,
    SpecTimeoutError,
    UnknownNameError,
    UnknownParamError,
    WorkerCrashError,
)
from repro.fleet.aggregate import FleetOutcome
from repro.fleet.spec import FleetSpec
from repro.packs.runner import PackResult, run_pack
from repro.scenarios.registry import DEFAULT_REGISTRY
from repro.scenarios.spec import ScenarioOutcome, ScenarioSpec
from repro.sim.batch import BatchRunner
from repro.sim.records import ExperimentResult
from repro.sim.supervise import RetryPolicy, RunJournal


def open_runner(
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    **options: Any,
) -> BatchRunner:
    """A batch runner: the execution context every facade call accepts.

    Use as a context manager (``with open_runner(jobs=4) as runner:``)
    so the worker pool shuts down and the disk cache gets its compaction
    pass.  Extra ``options`` forward to :class:`BatchRunner` (e.g.
    ``memory_entries``).
    """
    return BatchRunner(jobs=jobs, cache_dir=cache_dir, **options)


def _build_spec(family: str, kwargs: Mapping[str, Any]) -> Any:
    import repro.fleet  # noqa: F401  (registers the fleet-* families)

    return DEFAULT_REGISTRY.build(family, **kwargs)


def run_scenario(
    scenario: str | ScenarioSpec | FleetSpec,
    *,
    runner: BatchRunner | None = None,
    **params: Any,
) -> ScenarioOutcome | FleetOutcome:
    """Run one scenario: a registry family name or an explicit spec.

    A family name builds its spec through the registry (``params`` are
    the family's keyword arguments); a ready-made
    :class:`ScenarioSpec` / :class:`FleetSpec` runs as-is (``params``
    must then be empty).  Single-node runs return a
    :class:`ScenarioOutcome`, fleet runs a :class:`FleetOutcome`.
    """
    if isinstance(scenario, str):
        spec = _build_spec(scenario, params)
    else:
        if params:
            raise TypeError(
                "params only apply when building from a family name; "
                "use spec.with_(...) to modify an explicit spec"
            )
        spec = scenario
    if isinstance(spec, ScenarioSpec):
        from repro.sim.batch import get_runner

        return get_runner(runner).run_one(spec)
    return spec.run(runner)


def sweep(
    family: str,
    over: Mapping[str, Iterable[Any]],
    *,
    runner: BatchRunner | None = None,
    **common: Any,
) -> list[tuple[dict[str, Any], Any]]:
    """Run a family across a parameter grid, batched through one runner.

    ``over`` maps parameter names to the values to sweep; the grid is
    the cartesian product over **sorted** names, so result order (and
    caching) is independent of mapping order.  Returns
    ``(assignment, outcome)`` pairs in grid order.  Single-node specs
    all go to the runner in one batch (cost-aware scheduling plans the
    whole sweep); fleet specs run after, through the same runner.
    """
    names = sorted(over)
    grids = [list(over[name]) for name in names]
    for name, values in zip(names, grids):
        if not values:
            raise ValueError(f"sweep values for {name!r} must be non-empty")
    assignments = [
        dict(zip(names, combo)) for combo in itertools.product(*grids)
    ]
    specs = [
        _build_spec(family, {**common, **assignment})
        for assignment in assignments
    ]
    from repro.sim.batch import get_runner

    active = get_runner(runner)
    try:
        outcomes: list[Any] = [None] * len(specs)
        single = [
            (i, spec)
            for i, spec in enumerate(specs)
            if isinstance(spec, ScenarioSpec)
        ]
        if single:
            for (i, _), outcome in zip(
                single, active.run([spec for _, spec in single])
            ):
                outcomes[i] = outcome
        for i, spec in enumerate(specs):
            if outcomes[i] is None:
                outcomes[i] = spec.run(active)
    finally:
        if runner is None:
            active.close()
    return list(zip(assignments, outcomes))


__all__ = [
    "BatchRunner",
    "ExecutionError",
    "ExperimentResult",
    "FleetOutcome",
    "FleetSpec",
    "PackError",
    "PackResult",
    "ReproError",
    "ResumeMismatchError",
    "RetryPolicy",
    "RunInterruptedError",
    "RunJournal",
    "ScenarioOutcome",
    "ScenarioSpec",
    "SpecFailedError",
    "SpecTimeoutError",
    "UnknownNameError",
    "UnknownParamError",
    "WorkerCrashError",
    "open_runner",
    "run_pack",
    "run_scenario",
    "sweep",
]
