"""Lower parsed packs into frozen, fingerprinted run specs.

The compiler is the bridge between the declarative document layer
(:mod:`repro.packs.model`) and the execution substrate: every entry
lowers to ordinary :class:`~repro.scenarios.spec.ScenarioSpec` /
:class:`~repro.fleet.spec.FleetSpec` objects, so packs inherit the
whole determinism and caching story for free -- same document, same
fingerprints, byte-identical results serial or ``--jobs N``.

Lowering rules:

* ``family`` entries call :data:`~repro.scenarios.registry.DEFAULT_REGISTRY`
  with the merged ``defaults.params`` + entry ``params`` + sweep
  assignment; the registry's unknown-name / unknown-kwarg errors are
  re-raised as :class:`~repro.errors.PackError` carrying the entry path.
* ``scenario`` / ``fleet`` entries construct the spec dataclass
  directly; field names are validated against the dataclass (with a
  "did you mean" suggestion) and the ``trace`` mapping lowers to a
  :class:`~repro.scenarios.spec.TraceSpec` (``kind`` plus keyword
  params; ``concat`` takes a ``parts`` list of nested traces).
* ``sweep`` expands as a cartesian product over its **sorted** keys, so
  the variant order -- and therefore replica seeds and item keys -- is
  independent of document key order.
* ``weight: n`` expands to *n* replicas; replica ``k > 0`` reseeds the
  spec with ``seed + SEED_STRIDE * k``, keeping replicas distinct runs
  while replica 0 stays byte-identical to the unweighted entry.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import PackError, ReproError, suggest
from repro.packs.model import Pack, PackEntry, load_pack, parse_pack
from repro.scenarios.registry import DEFAULT_REGISTRY
from repro.scenarios.spec import Params, ScenarioSpec, TraceSpec, freeze_params

#: Replica seed stride (the 10000th prime): far apart in seed space so
#: replica streams never overlap the small hand-picked seeds packs use.
SEED_STRIDE = 104729

#: Spec fields an inline entry may not set (constructed objects only).
_EXCLUDED_FIELDS = frozenset({"platform"})


def _spec_fields(cls) -> tuple[str, ...]:
    return tuple(
        f.name
        for f in dataclasses.fields(cls)
        if f.name not in _EXCLUDED_FIELDS
    )


def _lower_trace(value: Any, where: str) -> TraceSpec:
    """Lower a trace mapping (``kind`` + params, nested for concat)."""
    if isinstance(value, TraceSpec):
        return value
    if not isinstance(value, Mapping):
        raise PackError(
            f"expected a trace mapping, got {type(value).__name__}",
            path=where,
        )
    fields = dict(value)
    kind = fields.pop("kind", None)
    if kind is None:
        raise PackError("a trace needs a 'kind'", path=where)
    from repro.scenarios.factories import TRACE_BUILDERS

    if kind != "concat" and kind not in TRACE_BUILDERS:
        choices = sorted(TRACE_BUILDERS) + ["concat"]
        clause = f"unknown trace kind {kind!r}; valid choices: " + ", ".join(
            choices
        )
        best = suggest(str(kind), choices)
        if best is not None:
            clause += f" (did you mean {best!r}?)"
        raise PackError(clause, path=f"{where}.kind")
    if kind == "concat":
        parts = fields.pop("parts", None)
        if fields:
            raise PackError(
                "a concat trace only takes 'parts'", path=where
            )
        if not isinstance(parts, (list, tuple)) or not parts:
            raise PackError(
                "a concat trace needs a non-empty 'parts' list", path=where
            )
        lowered = tuple(
            _lower_trace(part, f"{where}.parts[{i}]")
            for i, part in enumerate(parts)
        )
        return TraceSpec.concat(*lowered)
    try:
        return TraceSpec(kind, {k: _freeze_value(v) for k, v in fields.items()})
    except (ReproError, ValueError, TypeError) as err:
        raise PackError(str(err), path=where) from err


def _freeze_value(value: Any) -> Any:
    """YAML lists become tuples so they can live inside frozen params."""
    if isinstance(value, list):
        return tuple(_freeze_value(v) for v in value)
    return value


@dataclass(frozen=True)
class PackItem:
    """One compiled run: a unique key plus its frozen spec."""

    key: str  #: unique within the pack (entry label + variant + replica)
    spec: Any  #: :class:`ScenarioSpec` or :class:`FleetSpec`
    entry_index: int
    variant: Params  #: the sweep assignment that produced this item
    replica: int  #: 0-based; replica > 0 runs under a strided seed

    @property
    def is_fleet(self) -> bool:
        return not isinstance(self.spec, ScenarioSpec)


@dataclass(frozen=True)
class CompiledPack:
    """A fully lowered pack: every item is a frozen, buildable spec."""

    name: str
    description: str
    source: str
    items: tuple[PackItem, ...]

    def specs(self) -> tuple[Any, ...]:
        return tuple(item.spec for item in self.items)

    def scenario_items(self) -> tuple[PackItem, ...]:
        return tuple(item for item in self.items if not item.is_fleet)

    def fleet_items(self) -> tuple[PackItem, ...]:
        return tuple(item for item in self.items if item.is_fleet)

    def fingerprints(self) -> tuple[str, ...]:
        """Per-item cache keys, in item order."""
        return tuple(item.spec.fingerprint() for item in self.items)

    def validate_buildable(self) -> None:
        """Probe every item past the frozen-spec layer: build its trace
        (catching bad trace params that only surface at build time) and
        lower its fault schedule.  Raises :class:`PackError` naming the
        offending item; returns ``None`` when the whole pack is sound.
        """
        for item in self.items:
            try:
                item.spec.trace.build()
                if item.is_fleet:
                    item.spec.fault_schedule()
            except (ReproError, KeyError, TypeError, ValueError) as err:
                raise PackError(
                    str(err), path=f"{self.name}:{item.key}"
                ) from err


def _build_family_spec(
    entry: PackEntry, assignment: Mapping[str, Any], quick: bool | None
) -> Any:
    params = dict(entry.params)
    params.update(assignment)
    if quick is not None:
        accepted = DEFAULT_REGISTRY.family_params(str(entry.body))
        if accepted is None or "quick" in accepted:
            params["quick"] = quick
    try:
        return DEFAULT_REGISTRY.build(str(entry.body), **params)
    except (ReproError, KeyError, TypeError, ValueError) as err:
        raise PackError(str(err), path=entry.where) from err


def _build_inline_spec(
    entry: PackEntry, assignment: Mapping[str, Any]
) -> Any:
    from repro.fleet.spec import FleetSpec

    cls = ScenarioSpec if entry.kind == "scenario" else FleetSpec
    accepted = _spec_fields(cls)
    fields = dict(entry.body)
    fields.update(assignment)
    unknown = sorted(set(fields) - set(accepted))
    if unknown:
        parts = []
        for name in unknown:
            clause = f"unknown field {name!r}"
            best = suggest(name, accepted)
            if best is not None:
                clause += f" (did you mean {best!r}?)"
            parts.append(clause)
        raise PackError(
            f"{'; '.join(parts)}; accepted fields: {', '.join(accepted)}",
            path=f"{entry.where}.{entry.kind}",
        )
    if "trace" not in fields:
        raise PackError(
            f"a {entry.kind} entry needs a 'trace'",
            path=f"{entry.where}.{entry.kind}",
        )
    fields["trace"] = _lower_trace(
        fields["trace"], f"{entry.where}.{entry.kind}.trace"
    )
    if entry.label is not None:
        fields.setdefault("label", entry.label)
    try:
        return cls(**fields)
    except (ReproError, KeyError, TypeError, ValueError) as err:
        raise PackError(str(err), path=f"{entry.where}.{entry.kind}") from err


def _entry_key(entry: PackEntry, spec: Any) -> str:
    if entry.label is not None:
        return entry.label
    if entry.kind == "family":
        return str(entry.body)
    return getattr(spec, "label", None) or spec.describe()


def _compile_entry(
    entry: PackEntry, quick: bool | None
) -> list[PackItem]:
    sweep_names = [name for name, _ in entry.sweep]
    sweep_values = [values for _, values in entry.sweep]
    items: list[PackItem] = []
    for combo in itertools.product(*sweep_values):
        assignment = dict(zip(sweep_names, combo))
        if entry.kind == "family":
            spec = _build_family_spec(entry, assignment, quick)
            if entry.label is not None:
                spec = spec.with_(label=entry.label)
        else:
            spec = _build_inline_spec(entry, assignment)
        base_key = _entry_key(entry, spec)
        variant = freeze_params(assignment)
        if assignment:
            desc = ",".join(f"{k}={v}" for k, v in sorted(assignment.items()))
            base_key = f"{base_key}[{desc}]"
        for replica in range(entry.weight):
            run_spec = spec
            if replica > 0:
                run_spec = spec.with_(seed=spec.seed + SEED_STRIDE * replica)
            key = base_key if replica == 0 else f"{base_key}#r{replica}"
            items.append(
                PackItem(
                    key=key,
                    spec=run_spec,
                    entry_index=entry.index,
                    variant=variant,
                    replica=replica,
                )
            )
    return items


def ensure_pack(pack: Any) -> Pack:
    """Coerce a path / document mapping / :class:`Pack` into a Pack."""
    if isinstance(pack, Pack):
        return pack
    if isinstance(pack, (str, Path)):
        return load_pack(pack)
    return parse_pack(pack)


def compile_pack(pack: Any, *, quick: bool | None = None) -> CompiledPack:
    """Lower a pack into frozen specs (also its validation pass).

    ``quick`` (when not ``None``) overrides the quick flag of every
    family entry whose factory accepts one -- the CLI's ``--quick``
    switch.  Inline entries spell their durations out explicitly and
    are left untouched.
    """
    import repro.fleet  # noqa: F401  (registers the fleet-* families)

    parsed = ensure_pack(pack)
    items: list[PackItem] = []
    seen: dict[str, int] = {}
    for entry in parsed.entries:
        for item in _compile_entry(entry, quick):
            key = item.key
            if key in seen:
                seen[key] += 1
                key = f"{key}~{seen[item.key]}"
            else:
                seen[key] = 1
            items.append(dataclasses.replace(item, key=key))
    return CompiledPack(
        name=parsed.name,
        description=parsed.description,
        source=parsed.source,
        items=tuple(items),
    )


__all__ = [
    "CompiledPack",
    "PackItem",
    "SEED_STRIDE",
    "compile_pack",
    "ensure_pack",
]
