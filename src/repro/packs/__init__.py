"""Scenario packs: a declarative YAML/JSON DSL over the spec layer.

A pack names a weighted mix of scenario entries -- registry families
with parameter sweeps, inline single-node scenarios (including the
bursty ``mmpp`` and recorded ``replay`` trace kinds), and fleets with
heterogeneous workload mixes and probabilistic fault clauses.  Packs
**compile** to the same frozen, fingerprinted specs everything else in
the repo runs on, so they inherit caching, per-spec-seed determinism
and serial/parallel byte-identity instead of re-implementing them.

Layers:

* :mod:`repro.packs.model` -- document parsing (:func:`load_pack`,
  :func:`parse_pack`) with path-addressed errors,
* :mod:`repro.packs.compiler` -- lowering to specs
  (:func:`compile_pack`, sweeps, weights, seed strides),
* :mod:`repro.packs.runner` -- execution (:func:`run_pack`) with
  pack-level batch planning.

The shipped pack library lives in the repo's ``packs/`` directory; the
CLI front end is ``hipster-repro pack validate|list|run``.
"""

from repro.errors import PackError
from repro.packs.compiler import (
    SEED_STRIDE,
    CompiledPack,
    PackItem,
    compile_pack,
    ensure_pack,
)
from repro.packs.model import Pack, PackEntry, load_pack, parse_pack
from repro.packs.runner import PackResult, run_pack

__all__ = [
    "CompiledPack",
    "Pack",
    "PackEntry",
    "PackError",
    "PackItem",
    "PackResult",
    "SEED_STRIDE",
    "compile_pack",
    "ensure_pack",
    "load_pack",
    "parse_pack",
    "run_pack",
]
