"""Execute compiled packs with pack-level sweep planning.

``run_pack`` hands **all** of a pack's single-node scenario specs to
one :meth:`~repro.sim.batch.BatchRunner.iter_run` call, so the runner's
cost-aware longest-job-first scheduler and two-tier cache plan across
the whole pack instead of entry by entry; fleets run afterwards through
the same runner (their node expansions batch internally).  Because
every item is a frozen spec, a pack's results are byte-identical
serial or ``--jobs N``, and repeated runs hit the outcome cache.

Packs run to completion even when entries fail: a poison spec, a
watchdog timeout or an engine exception lands in its entry's outcome
slot as the :class:`~repro.errors.ExecutionError` itself, and
``rows()``/``summary()``/``render()`` carry a per-entry ``status``
(``ok`` / ``failed: <error type>``) so a sweep with one broken point
still reports the other N-1.
"""

from __future__ import annotations

import math
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any

from repro.errors import ExecutionError
from repro.packs.compiler import CompiledPack, compile_pack
from repro.scenarios.spec import ScenarioOutcome


@dataclass(frozen=True)
class PackResult:
    """All of a pack's outcomes, aligned with ``pack.items``.

    An outcome slot holds the entry's ``ScenarioOutcome`` /
    ``FleetOutcome``, or the :class:`~repro.errors.ExecutionError` that
    definitively failed it.
    """

    pack: CompiledPack
    outcomes: tuple[Any, ...]  #: outcome | ExecutionError per item

    def __post_init__(self) -> None:
        if len(self.outcomes) != len(self.pack.items):
            raise ValueError("outcomes must align with pack items")

    def failures(self) -> list[tuple[str, ExecutionError]]:
        """The failed entries, as ``(key, error)`` pairs."""
        return [
            (item.key, outcome)
            for item, outcome in zip(self.pack.items, self.outcomes)
            if isinstance(outcome, ExecutionError)
        ]

    @property
    def all_failed(self) -> bool:
        """True when not a single entry produced an outcome."""
        return bool(self.outcomes) and len(self.failures()) == len(
            self.outcomes
        )

    def rows(self) -> list[tuple[str, str, float, float, float, str]]:
        """``(key, kind, qos, mean_power_w, energy_j, status)`` rows.

        Failed entries report NaN metrics and a ``failed: <error
        type>`` status; successes report ``ok``.
        """
        rows = []
        nan = float("nan")
        for item, outcome in zip(self.pack.items, self.outcomes):
            if isinstance(outcome, ExecutionError):
                kind = "fleet" if item.is_fleet else "scenario"
                status = f"failed: {type(outcome).__name__}"
                rows.append((item.key, kind, nan, nan, nan, status))
            elif isinstance(outcome, ScenarioOutcome):
                result = outcome.result
                rows.append(
                    (
                        item.key,
                        "scenario",
                        result.qos_guarantee(),
                        result.mean_power_w(),
                        result.total_energy_j(),
                        "ok",
                    )
                )
            else:
                rows.append(
                    (
                        item.key,
                        f"fleet({outcome.n_nodes})",
                        outcome.fleet_qos_guarantee(),
                        outcome.total_mean_power_w(),
                        outcome.total_energy_j(),
                        "ok",
                    )
                )
        return rows

    def resilience_reports(self) -> list[tuple[str, Any]]:
        """``(key, ResilienceReport)`` for every resilient fleet entry.

        Empty unless an entry's fleet engaged the resilience layer
        (topology, correlated clauses, or detection/repair timelines),
        so plain packs render and summarize exactly as before.
        """
        reports = []
        for item, outcome in zip(self.pack.items, self.outcomes):
            if not item.is_fleet or isinstance(outcome, ExecutionError):
                continue
            report = outcome.resilience_report()
            if report is not None:
                reports.append((item.key, report))
        return reports

    def summary(self) -> dict[str, Any]:
        """A JSON-ready digest (the CI artifact format).

        Failed entries carry ``null`` metrics, their ``status`` names
        the error type, and the top level counts ``failed`` entries so
        CI can gate on partial success without parsing rows.  Resilient
        fleet entries additionally carry a ``resilience`` mapping
        (blast radius, degradation depth, time-to-recover; see
        :class:`~repro.fleet.resilience.ResilienceReport`).
        """
        reports = dict(self.resilience_reports())
        items = []
        for key, kind, qos, power, energy, status in self.rows():
            failed = status != "ok"
            entry = {
                "key": key,
                "kind": kind,
                "status": status,
                "qos_guarantee": None if failed else round(qos, 6),
                "mean_power_w": None if failed else round(power, 6),
                "total_energy_j": None if failed else round(energy, 3),
            }
            if key in reports:
                entry["resilience"] = reports[key].as_dict()
            items.append(entry)
        return {
            "pack": self.pack.name,
            "source": self.pack.source,
            "failed": len(self.failures()),
            "items": items,
        }

    def render(self) -> str:
        """An ASCII report in the repo's house table style."""
        from repro.experiments.reporting import ascii_table

        table_rows = [
            [
                key,
                kind,
                "-" if math.isnan(qos) else f"{qos * 100:.1f}%",
                "-" if math.isnan(power) else f"{power:.2f}W",
                "-" if math.isnan(energy) else f"{energy:.0f}J",
                status,
            ]
            for key, kind, qos, power, energy, status in self.rows()
        ]
        header = f"Pack -- {self.pack.name} ({len(self.pack.items)} runs)"
        if self.pack.description:
            header += f": {self.pack.description}"
        lines = [
            header,
            ascii_table(
                ["run", "kind", "QoS", "power", "energy", "status"],
                table_rows,
            ),
        ]
        for key, report in self.resilience_reports():
            lines.append(f"{key}:")
            lines.extend(f"  {line}" for line in report.render_lines())
        return "\n".join(lines)


def run_pack(
    pack: Any, *, runner: Any = None, quick: bool | None = None
) -> PackResult:
    """Compile (if needed) and execute a pack.

    ``pack`` may be a path, a raw document mapping, a parsed
    :class:`~repro.packs.model.Pack` or an already-compiled
    :class:`CompiledPack` (``quick`` only applies when compiling).
    A runner created here is closed before returning; a caller-supplied
    ``runner`` is left open.

    One failing entry does not abort the pack: its
    :class:`~repro.errors.ExecutionError` is stored in its outcome slot
    (see :meth:`PackResult.rows`) and every other entry still runs.
    Interrupts (:class:`~repro.errors.RunInterruptedError`) do abort --
    they mean *stop*, not *skip*.
    """
    compiled = (
        pack
        if isinstance(pack, CompiledPack)
        else compile_pack(pack, quick=quick)
    )
    outcomes: list[Any] = [None] * len(compiled.items)
    scenario_indexed = [
        (index, item)
        for index, item in enumerate(compiled.items)
        if not item.is_fleet
    ]
    fleet_indexed = [
        (index, item)
        for index, item in enumerate(compiled.items)
        if item.is_fleet
    ]
    with ExitStack() as stack:
        if runner is None:
            from repro.sim.batch import BatchRunner

            runner = stack.enter_context(BatchRunner())
        if scenario_indexed:
            specs = [item.spec for _, item in scenario_indexed]
            for position, outcome in runner.iter_run(
                specs, on_failure="yield"
            ):
                outcomes[scenario_indexed[position][0]] = outcome
        for index, item in fleet_indexed:
            try:
                outcomes[index] = item.spec.run(runner)
            except ExecutionError as exc:
                outcomes[index] = exc
    return PackResult(pack=compiled, outcomes=tuple(outcomes))


__all__ = ["PackResult", "run_pack"]
