"""Execute compiled packs with pack-level sweep planning.

``run_pack`` hands **all** of a pack's single-node scenario specs to
one :meth:`~repro.sim.batch.BatchRunner.run` call, so the runner's
cost-aware longest-job-first scheduler and two-tier cache plan across
the whole pack instead of entry by entry; fleets run afterwards through
the same runner (their node expansions batch internally).  Because
every item is a frozen spec, a pack's results are byte-identical
serial or ``--jobs N``, and repeated runs hit the outcome cache.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any

from repro.packs.compiler import CompiledPack, compile_pack
from repro.scenarios.spec import ScenarioOutcome


@dataclass(frozen=True)
class PackResult:
    """All of a pack's outcomes, aligned with ``pack.items``."""

    pack: CompiledPack
    outcomes: tuple[Any, ...]  #: ScenarioOutcome | FleetOutcome per item

    def __post_init__(self) -> None:
        if len(self.outcomes) != len(self.pack.items):
            raise ValueError("outcomes must align with pack items")

    def rows(self) -> list[tuple[str, str, float, float, float]]:
        """Per-item ``(key, kind, qos, mean_power_w, energy_j)`` rows."""
        rows = []
        for item, outcome in zip(self.pack.items, self.outcomes):
            if isinstance(outcome, ScenarioOutcome):
                result = outcome.result
                rows.append(
                    (
                        item.key,
                        "scenario",
                        result.qos_guarantee(),
                        result.mean_power_w(),
                        result.total_energy_j(),
                    )
                )
            else:
                rows.append(
                    (
                        item.key,
                        f"fleet({outcome.n_nodes})",
                        outcome.fleet_qos_guarantee(),
                        outcome.total_mean_power_w(),
                        outcome.total_energy_j(),
                    )
                )
        return rows

    def summary(self) -> dict[str, Any]:
        """A JSON-ready digest (the CI artifact format)."""
        return {
            "pack": self.pack.name,
            "source": self.pack.source,
            "items": [
                {
                    "key": key,
                    "kind": kind,
                    "qos_guarantee": round(qos, 6),
                    "mean_power_w": round(power, 6),
                    "total_energy_j": round(energy, 3),
                }
                for key, kind, qos, power, energy in self.rows()
            ],
        }

    def render(self) -> str:
        """An ASCII report in the repo's house table style."""
        from repro.experiments.reporting import ascii_table

        table_rows = [
            [key, kind, f"{qos * 100:.1f}%", f"{power:.2f}W", f"{energy:.0f}J"]
            for key, kind, qos, power, energy in self.rows()
        ]
        header = f"Pack -- {self.pack.name} ({len(self.pack.items)} runs)"
        if self.pack.description:
            header += f": {self.pack.description}"
        return "\n".join(
            [
                header,
                ascii_table(
                    ["run", "kind", "QoS", "power", "energy"], table_rows
                ),
            ]
        )


def run_pack(
    pack: Any, *, runner: Any = None, quick: bool | None = None
) -> PackResult:
    """Compile (if needed) and execute a pack.

    ``pack`` may be a path, a raw document mapping, a parsed
    :class:`~repro.packs.model.Pack` or an already-compiled
    :class:`CompiledPack` (``quick`` only applies when compiling).
    A runner created here is closed before returning; a caller-supplied
    ``runner`` is left open.
    """
    compiled = (
        pack
        if isinstance(pack, CompiledPack)
        else compile_pack(pack, quick=quick)
    )
    outcomes: list[Any] = [None] * len(compiled.items)
    scenario_indexed = [
        (index, item)
        for index, item in enumerate(compiled.items)
        if not item.is_fleet
    ]
    fleet_indexed = [
        (index, item)
        for index, item in enumerate(compiled.items)
        if item.is_fleet
    ]
    with ExitStack() as stack:
        if runner is None:
            from repro.sim.batch import BatchRunner

            runner = stack.enter_context(BatchRunner())
        if scenario_indexed:
            results = runner.run([item.spec for _, item in scenario_indexed])
            for (index, _), outcome in zip(scenario_indexed, results):
                outcomes[index] = outcome
        for index, item in fleet_indexed:
            outcomes[index] = item.spec.run(runner)
    return PackResult(pack=compiled, outcomes=tuple(outcomes))


__all__ = ["PackResult", "run_pack"]
