"""Scenario-pack documents: parse YAML/JSON into a validated tree.

A *pack* is a declarative experiment description -- a YAML (or JSON)
mapping that names a weighted mix of scenario entries.  This module
only handles the **document layer**: syntax, allowed keys, and simple
value shapes.  Lowering entries into frozen, fingerprinted specs lives
in :mod:`repro.packs.compiler`, so parse errors always point at the
document (``scenarios[2].sweep``) while compile errors point at the
registry or spec that rejected the lowered values.

Document shape::

    name: burst-storm                  # required
    description: retry storms ...      # optional
    defaults:                          # optional
      params: {workload: memcached}    #   merged under family params
      weight: 2                        #   default entry weight
    scenarios:                         # required, non-empty list
      - family: diurnal-policy         # exactly one of family /
        params: {manager: hipster-in}  #   scenario / fleet per entry
        weight: 3                      # optional replica count
        sweep:                         # optional cartesian sweep
          manager: [hipster-in, octopus-man]
      - scenario:                      # inline single-node spec
          workload: memcached
          manager: hipster-co
          trace: {kind: mmpp, levels: [0.3, 1.0],
                  mean_dwell_s: [60, 15], duration_s: 420}
      - fleet:                         # inline fleet spec
          n_nodes: 8
          workload: memcached
          manager: hipster-co
          trace: {kind: diurnal, duration_s: 420}
          faults:
            - {kind: node-death, probability: 0.2, earliest_s: 120}

Every violation raises :class:`~repro.errors.PackError` whose ``path``
pinpoints the offending clause.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import PackError, suggest

#: Keys a pack document accepts at the top level.
TOP_KEYS = ("name", "description", "defaults", "scenarios")

#: Keys the ``defaults`` mapping accepts.
DEFAULTS_KEYS = ("params", "weight")

#: Keys an entry accepts; exactly one of :data:`ENTRY_KIND_KEYS` must
#: be present.
ENTRY_KEYS = ("family", "scenario", "fleet", "params", "label", "weight", "sweep")
ENTRY_KIND_KEYS = ("family", "scenario", "fleet")


def _unknown_key_error(
    keys: Sequence[str], allowed: Sequence[str], where: str
) -> PackError:
    unknown = sorted(set(keys) - set(allowed))
    parts = []
    for key in unknown:
        clause = f"unknown key {key!r}"
        best = suggest(key, allowed)
        if best is not None:
            clause += f" (did you mean {best!r}?)"
        parts.append(clause)
    return PackError(
        f"{'; '.join(parts)}; allowed keys: {', '.join(allowed)}", path=where
    )


def _require_mapping(value: Any, where: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise PackError(
            f"expected a mapping, got {type(value).__name__}", path=where
        )
    for key in value:
        if not isinstance(key, str):
            raise PackError(f"non-string key {key!r}", path=where)
    return value


def _require_str(value: Any, where: str) -> str:
    if not isinstance(value, str) or not value:
        raise PackError(
            f"expected a non-empty string, got {value!r}", path=where
        )
    return value


def _require_weight(value: Any, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise PackError(
            f"weight must be a positive integer, got {value!r}", path=where
        )
    return value


@dataclass(frozen=True)
class PackEntry:
    """One parsed entry: a family reference or an inline spec mapping."""

    kind: str  #: ``"family"`` | ``"scenario"`` | ``"fleet"``
    body: Any  #: the family name (str) or the inline spec mapping
    params: Mapping[str, Any]  #: family params (defaults already merged)
    label: str | None
    weight: int
    #: Swept parameters, ``(name, values)`` sorted by name.
    sweep: tuple[tuple[str, tuple[Any, ...]], ...]
    index: int  #: position inside ``scenarios`` (for error paths)

    @property
    def where(self) -> str:
        return f"scenarios[{self.index}]"


@dataclass(frozen=True)
class Pack:
    """A parsed (but not yet compiled) pack document."""

    name: str
    description: str
    entries: tuple[PackEntry, ...]
    source: str  #: file path or ``"<pack>"`` for in-memory documents


def _parse_sweep(
    value: Any, where: str
) -> tuple[tuple[str, tuple[Any, ...]], ...]:
    mapping = _require_mapping(value, where)
    sweep = []
    for name in sorted(mapping):
        values = mapping[name]
        if isinstance(values, (str, bytes)) or not isinstance(
            values, Sequence
        ):
            raise PackError(
                f"sweep values for {name!r} must be a list, got {values!r}",
                path=where,
            )
        if not values:
            raise PackError(
                f"sweep values for {name!r} must be non-empty", path=where
            )
        sweep.append((name, tuple(values)))
    return tuple(sweep)


def _parse_entry(
    entry: Any, index: int, defaults_params: Mapping[str, Any], default_weight: int
) -> PackEntry:
    where = f"scenarios[{index}]"
    mapping = _require_mapping(entry, where)
    if set(mapping) - set(ENTRY_KEYS):
        raise _unknown_key_error(list(mapping), ENTRY_KEYS, where)
    kinds = [key for key in ENTRY_KIND_KEYS if key in mapping]
    if len(kinds) != 1:
        raise PackError(
            "an entry needs exactly one of "
            f"{', '.join(ENTRY_KIND_KEYS)} (got {len(kinds)})",
            path=where,
        )
    kind = kinds[0]
    body = mapping[kind]
    params: Mapping[str, Any] = {}
    if kind == "family":
        body = _require_str(body, f"{where}.family")
        params = dict(defaults_params)
        if "params" in mapping:
            params.update(
                _require_mapping(mapping["params"], f"{where}.params")
            )
    else:
        body = dict(_require_mapping(body, f"{where}.{kind}"))
        if "params" in mapping:
            raise PackError(
                f"'params' only applies to family entries; fold the values "
                f"into the {kind!r} mapping instead",
                path=where,
            )
    label = None
    if "label" in mapping:
        label = _require_str(mapping["label"], f"{where}.label")
    weight = default_weight
    if "weight" in mapping:
        weight = _require_weight(mapping["weight"], f"{where}.weight")
    sweep: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    if "sweep" in mapping:
        sweep = _parse_sweep(mapping["sweep"], f"{where}.sweep")
    return PackEntry(
        kind=kind,
        body=body,
        params=params,
        label=label,
        weight=weight,
        sweep=sweep,
        index=index,
    )


def parse_pack(data: Any, *, source: str = "<pack>") -> Pack:
    """Validate a loaded YAML/JSON document into a :class:`Pack`."""
    mapping = _require_mapping(data, "pack")
    if set(mapping) - set(TOP_KEYS):
        raise _unknown_key_error(list(mapping), TOP_KEYS, "pack")
    if "name" not in mapping:
        raise PackError("a pack needs a 'name'", path="pack")
    name = _require_str(mapping["name"], "pack.name")
    description = ""
    if "description" in mapping:
        description = _require_str(mapping["description"], "pack.description")
    defaults_params: Mapping[str, Any] = {}
    default_weight = 1
    if "defaults" in mapping:
        defaults = _require_mapping(mapping["defaults"], "pack.defaults")
        if set(defaults) - set(DEFAULTS_KEYS):
            raise _unknown_key_error(
                list(defaults), DEFAULTS_KEYS, "pack.defaults"
            )
        if "params" in defaults:
            defaults_params = _require_mapping(
                defaults["params"], "pack.defaults.params"
            )
        if "weight" in defaults:
            default_weight = _require_weight(
                defaults["weight"], "pack.defaults.weight"
            )
    if "scenarios" not in mapping:
        raise PackError("a pack needs a 'scenarios' list", path="pack")
    scenarios = mapping["scenarios"]
    if isinstance(scenarios, (str, bytes)) or not isinstance(
        scenarios, Sequence
    ):
        raise PackError(
            f"expected a list, got {type(scenarios).__name__}",
            path="pack.scenarios",
        )
    if not scenarios:
        raise PackError("must not be empty", path="pack.scenarios")
    entries = tuple(
        _parse_entry(entry, index, defaults_params, default_weight)
        for index, entry in enumerate(scenarios)
    )
    return Pack(
        name=name, description=description, entries=entries, source=source
    )


def load_pack(path: str | Path) -> Pack:
    """Parse a pack file -- ``.json`` as JSON, anything else as YAML."""
    file = Path(path)
    try:
        text = file.read_text()
    except OSError as err:
        raise PackError(f"cannot read pack: {err}", path=str(file)) from err
    if file.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise PackError(f"invalid JSON: {err}", path=str(file)) from err
    else:
        try:
            import yaml
        except ImportError as err:
            raise PackError(
                "YAML packs need the optional PyYAML dependency "
                "(pip install pyyaml), or write the pack as .json",
                path=str(file),
            ) from err

        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as err:
            raise PackError(f"invalid YAML: {err}", path=str(file)) from err
    return parse_pack(data, source=str(file))


__all__ = [
    "DEFAULTS_KEYS",
    "ENTRY_KEYS",
    "ENTRY_KIND_KEYS",
    "Pack",
    "PackEntry",
    "TOP_KEYS",
    "load_pack",
    "parse_pack",
]
