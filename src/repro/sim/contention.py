"""Shared-resource contention between collocated workloads.

Collocating batch jobs with a latency-critical service degrades the
service's QoS at higher loads through shared L2 and memory-bandwidth
pressure (paper Section 3.5, corroborating Heracles).  The model here is
deliberately first-order: each batch program carries a *memory intensity*
in ``[0, 1]``; pressure aggregates linearly per cluster (shared L2) and
globally (shared DRAM bandwidth), and inflates latency-critical service
demand / deflates batch throughput multiplicatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.hardware.cores import CoreKind


@dataclass(frozen=True)
class ClusterPressure:
    """Aggregate memory pressure from batch programs, by location."""

    big: float
    small: float

    @property
    def total(self) -> float:
        """Global (bandwidth) pressure across both clusters."""
        return self.big + self.small

    def on_cluster(self, kind: CoreKind) -> float:
        """Same-cluster (shared L2) pressure for the given cluster."""
        return self.big if kind is CoreKind.BIG else self.small


def aggregate_pressure(
    mem_intensity_by_core: Mapping[str, float],
    big_core_ids: Sequence[str],
) -> ClusterPressure:
    """Sum per-core batch memory intensities into per-cluster pressure."""
    big_ids = set(big_core_ids)
    big = sum(v for cid, v in mem_intensity_by_core.items() if cid in big_ids)
    small = sum(v for cid, v in mem_intensity_by_core.items() if cid not in big_ids)
    return ClusterPressure(big=big, small=small)


def aggregate_pressure_indexed(
    mem_intensities: Sequence[float],
    on_big_cluster: Sequence[bool],
) -> ClusterPressure:
    """:func:`aggregate_pressure` over the dense core-index representation.

    ``mem_intensities[i]`` and ``on_big_cluster[i]`` describe the i-th
    batch-occupied core (in placement order).  Summation order matches the
    dict-based path, so both produce identical floats for the same
    placement.
    """
    big = sum(v for v, is_big in zip(mem_intensities, on_big_cluster) if is_big)
    small = sum(v for v, is_big in zip(mem_intensities, on_big_cluster) if not is_big)
    return ClusterPressure(big=big, small=small)


@dataclass(frozen=True)
class ContentionModel:
    """First-order interference model.

    Parameters
    ----------
    lc_l2_weight, lc_bw_weight:
        Service-demand inflation per unit of same-cluster / global batch
        pressure, further scaled by the workload's own contention
        sensitivity.
    batch_l2_weight, batch_bw_weight:
        Batch IPS degradation per unit of pressure from *other* programs
        (same cluster / global), plus the latency-critical workload's own
        pressure contribution.
    """

    lc_l2_weight: float = 0.10
    lc_bw_weight: float = 0.05
    batch_l2_weight: float = 0.06
    batch_bw_weight: float = 0.04

    def lc_slowdown(
        self,
        cluster_kind: CoreKind,
        pressure: ClusterPressure,
        *,
        sensitivity: float = 1.0,
    ) -> float:
        """Service-demand multiplier (>= 1) for LC threads on a cluster."""
        if sensitivity < 0:
            raise ValueError("sensitivity must be non-negative")
        penalty = (
            self.lc_l2_weight * pressure.on_cluster(cluster_kind)
            + self.lc_bw_weight * pressure.total
        )
        return 1.0 + sensitivity * penalty

    def batch_throughput_factor(
        self,
        cluster_kind: CoreKind,
        own_intensity: float,
        pressure: ClusterPressure,
        *,
        lc_pressure: float = 0.0,
    ) -> float:
        """IPS multiplier (<= 1) for one batch program instance.

        ``pressure`` includes the program's own contribution, which is
        subtracted out -- a program does not contend with itself.
        ``lc_pressure`` is the latency-critical workload's memory
        intensity when it shares the cluster.
        """
        same = max(pressure.on_cluster(cluster_kind) - own_intensity, 0.0)
        total = max(pressure.total - own_intensity, 0.0)
        penalty = (
            self.batch_l2_weight * (same + lc_pressure)
            + self.batch_bw_weight * (total + lc_pressure)
        )
        return 1.0 / (1.0 + penalty)
