"""Per-core FCFS queueing with speed-weighted dispatch.

The latency-critical services the paper uses (Memcached, Elasticsearch)
dispatch requests to worker threads pinned one-per-core; load balancing
across heterogeneous cores is imperfect, which is why at very high load the
paper's configuration sweeps (Figure 2) fall back to big-cores-only even
though mixed configurations have more aggregate capacity.  We model each
core as a FCFS single server fed by weighted-random dispatch with weight
``speed ** balance_exponent``: an exponent of 1 is capacity-proportional
(perfect) balancing, 0 is uniform.  Two defaults exist and they are
intentionally different: a bare :class:`DispatchQueue` defaults to 0.7
(a reasonable middle ground for unit tests and standalone use), while
engine-driven runs are governed by
:attr:`repro.sim.engine.EngineConfig.balance_exponent`, whose 0.55 is
the calibrated value that reproduces the paper's imbalance-driven
crossovers (Figure 2).  The engine always passes its own value down, so
``EngineConfig`` owns the knob for every experiment; the class default
here only applies when a queue is constructed directly.

Each server's FCFS backlog evolves by the Lindley recursion
``C_j = max(arrival_j, C_{j-1}) + service_j``; :meth:`DispatchQueue.run_interval`
evaluates it vectorized per server (``np.cumsum`` over service plus a
running maximum over arrival slack) instead of looping per request,
which is what keeps 10k+ arrivals per interval cheap.

The queue state (per-core virtual "free time") carries over between
monitoring intervals, so overload causes multi-interval latency blow-ups
and slow recovery exactly as on real hardware.  Reconfigurations
redistribute residual backlog over the new server set and, when the *core
set* changed (a migration -- not a DVFS change), charge a migration
penalty; this asymmetry between costly migrations and near-free DVFS
transitions is central to the paper's argument (Section 2, citing Rubik).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, NamedTuple, Sequence

import numpy as np

DemandSampler = Callable[[np.random.Generator, int], np.ndarray]

#: Version tag of the queue kernel, folded into scenario fingerprints so
#: cached results are invalidated whenever the hot-path semantics change.
#: The dense/core-indexed engine refactor did NOT bump it: the rng stream
#: and every emitted float are bit-identical to the previous kernel (the
#: equivalence suite against ``repro.sim.engine_reference`` enforces it).
KERNEL_VERSION = "lindley-v1"

#: Below this many servers the per-server bookkeeping (utilizations,
#: carried backlog, shedding) runs in scalar Python instead of numpy:
#: numpy's pairwise summation degenerates to sequential summation under
#: eight elements, so both paths produce bit-identical floats while the
#: scalar one skips ~1 microsecond of dispatch overhead per tiny array
#: op -- the dominant cost at realistic per-interval arrival counts.
_SCALAR_SERVER_LIMIT = 8


def lindley_completion_times(
    arrivals: np.ndarray, service: np.ndarray, free0: float
) -> np.ndarray:
    """Completion times of a FCFS server, vectorized (the queue kernel).

    For requests with sorted ``arrivals`` and per-request ``service``
    times hitting a server that frees up at ``free0``, the Lindley
    recursion is ``C_j = max(arrivals_j, C_{j-1}) + service_j`` (with
    ``C_{-1} = free0``).  Unrolling it gives the closed form

        ``C_j = cumsum(service)_j + max(free0, max_{i<=j}(arrivals_i -
        cumsum(service)_{i-1}))``

    which evaluates in three array passes -- a cumulative sum, a running
    maximum, and an add -- instead of a Python-level loop per request.
    Equivalent to :func:`lindley_completion_times_reference` up to
    floating-point associativity (different summation order).
    """
    cum = service.cumsum()
    buf = cum - service  # shifted cumsum
    np.subtract(arrivals, buf, out=buf)  # arrival slack before running max
    np.maximum.accumulate(buf, out=buf)
    np.maximum(buf, free0, out=buf)
    np.add(cum, buf, out=buf)
    return buf


def lindley_completion_times_reference(
    arrivals: np.ndarray, service: np.ndarray, free0: float
) -> np.ndarray:
    """Per-request reference loop for the Lindley recursion.

    The seed implementation of the FCFS hot path, kept as the oracle for
    the property tests and the old side of the kernel micro-benchmark.
    """
    completion = np.empty(len(arrivals))
    free = free0
    for j in range(len(arrivals)):
        start = arrivals[j] if arrivals[j] > free else free
        free = start + service[j]
        completion[j] = free
    return completion


class DrawnInterval(NamedTuple):
    """One interval's arrival randomness, drawn ahead of evaluation.

    :meth:`DispatchQueue.draw_interval` consumes exactly the rng draws
    the scalar path would (arrival process, then demands, then the
    dispatch uniforms -- nothing when the interval is empty) and parks
    them here, so the epoch fast path can keep drawing *and validating*
    interval by interval while deferring all queue arithmetic to one
    batched pass.
    """

    n: int
    times: np.ndarray
    demands: np.ndarray
    dispatch_u: np.ndarray


class EpochQueueStats(NamedTuple):
    """Per-interval queue outcomes of one decision-stable epoch.

    ``latencies_s`` concatenates the intervals' sojourn times in arrival
    order; interval ``i`` owns the slice ``[offsets[i], offsets[i + 1])``.
    ``backlog_s`` is the queue backlog at each interval's end, *after*
    shedding -- i.e. exactly what :meth:`DispatchQueue.backlog_s` would
    report between intervals on the scalar path.
    """

    latencies_s: np.ndarray
    offsets: np.ndarray
    counts: list[int]
    utilizations: np.ndarray
    mean_utilization: list[float]
    shed_work_s: list[float]
    backlog_s: list[float]


@dataclass(frozen=True)
class IntervalQueueStats:
    """What happened inside the queue during one monitoring interval."""

    latencies_s: np.ndarray
    arrival_times_s: np.ndarray
    arrivals: int
    utilizations: tuple[float, ...]
    shed_work_s: float

    @property
    def mean_utilization(self) -> float:
        """Mean utilization over the interval's servers (0 when empty)."""
        n = len(self.utilizations)
        if n == 0:
            return 0.0
        if n < _SCALAR_SERVER_LIMIT:
            # np.mean's pairwise reduction is plain sequential summation
            # below eight elements, so this is the identical float.
            return sum(self.utilizations) / n
        return float(np.mean(self.utilizations))


@dataclass
class DispatchQueue:
    """Heterogeneous per-core FCFS queues with weighted-random dispatch.

    Parameters
    ----------
    rng:
        Source of randomness for arrivals, demands and dispatch.
    balance_exponent:
        Dispatch weight is ``speed ** balance_exponent``; see module
        docstring.
    migration_penalty_s:
        Service blackout charged when the server (core) set changes --
        thread migration plus cold caches.  Expressed in queue time; the
        caller is responsible for dilating it when running a time-scaled
        replica.
    max_backlog_s:
        Upper bound on per-server backlog.  Work beyond the bound is shed
        (clients time out and retry elsewhere); the shed amount is
        reported so experiments can account for it.
    burstiness:
        Mean batch size of arrivals.  1.0 gives plain Poisson arrivals;
        larger values draw burst epochs as a thinned Poisson process with
        geometric batch sizes (a batch Markovian arrival process).  Real
        request streams are bursty -- Memcached multi-gets fan out, search
        front-ends batch -- which is what makes tail latency grow
        *gradually* with utilization instead of cliff-diving only at
        saturation.
    """

    rng: np.random.Generator
    balance_exponent: float = 0.7
    migration_penalty_s: float = 0.0
    max_backlog_s: float | None = None
    burstiness: float = 1.0
    _speeds: np.ndarray = field(init=False, default_factory=lambda: np.zeros(0))
    _free: np.ndarray = field(init=False, default_factory=lambda: np.zeros(0))
    _weights: np.ndarray = field(init=False, default_factory=lambda: np.zeros(0))
    _cdf: np.ndarray = field(init=False, default_factory=lambda: np.zeros(0))

    @property
    def n_servers(self) -> int:
        """Number of currently configured servers."""
        return len(self._speeds)

    def backlog_s(self, now: float) -> float:
        """Total queued work across servers, expressed in seconds of delay."""
        k = self.n_servers
        if k == 0:
            return 0.0
        if k < _SCALAR_SERVER_LIMIT:
            total = 0.0
            for f in self._free.tolist():
                if f > now:
                    total += f - now
            return total
        return float(np.sum(np.maximum(self._free - now, 0.0)))

    def reconfigure(
        self, speeds: Sequence[float], now: float, *, migration: bool = False
    ) -> None:
        """Update the server set, carrying residual backlog over.

        Three cases, from cheapest to costliest:

        * identical speeds, no migration -- a no-op; per-server queues are
          untouched (repeating the same decision must not perturb them);
        * same server count, no migration (a DVFS change) -- each server's
          residual *work* is preserved, so its backlog time rescales by
          the speed ratio;
        * a migration (core set changed) -- residual work is pooled and
          spread evenly (in time) over the new servers, and every server
          is blacked out for ``migration_penalty_s``.
        """
        new_speeds = np.asarray(speeds, dtype=float)
        if new_speeds.ndim != 1 or len(new_speeds) == 0:
            raise ValueError("need at least one server")
        if np.any(new_speeds <= 0):
            raise ValueError("server speeds must be positive")

        same_count = len(new_speeds) == self.n_servers
        if same_count and not migration:
            if not np.array_equal(new_speeds, self._speeds):
                backlog = np.maximum(self._free - now, 0.0)
                ratio = self._speeds / new_speeds
                self._free = now + np.minimum(self._free - now, 0.0) + backlog * ratio
                self._speeds = new_speeds
                self._set_weights(new_speeds)
            return

        residual_work = 0.0
        if self.n_servers:
            residual_work = float(
                np.sum(np.maximum(self._free - now, 0.0) * self._speeds)
            )
        start = now + (self.migration_penalty_s if migration else 0.0)
        per_server_delay = residual_work / float(np.sum(new_speeds))
        self._speeds = new_speeds
        self._free = np.full(len(new_speeds), start + per_server_delay)
        self._set_weights(new_speeds)

    def _set_weights(self, speeds: np.ndarray) -> None:
        weights = speeds**self.balance_exponent
        self._weights = weights / weights.sum()
        # The dispatch CDF, built exactly the way ``Generator.choice``
        # builds it internally (cumsum then renormalize), so the manual
        # inverse-CDF dispatch below reproduces ``rng.choice`` bit for bit.
        cdf = np.cumsum(self._weights)
        cdf /= cdf[-1]
        self._cdf = cdf

    def _dispatch(self, n: int) -> np.ndarray:
        """Server index per request: ``rng.choice`` without its overhead.

        ``Generator.choice(k, size=n, p=w)`` draws ``random(n)`` and
        counts, per draw, how many CDF entries it clears.  Doing that
        count with one vectorized comparison per server (there are at
        most a handful) skips ``choice``'s per-call validation and its
        binary search, consumes the identical rng stream, and returns
        the identical assignment -- the equivalence is pinned by a test.
        """
        return self._assign(self.rng.random(n))

    def _assign(self, u: np.ndarray) -> np.ndarray:
        """Server index per already-drawn dispatch uniform (see
        :meth:`_dispatch`; separated so the epoch path can assign a whole
        epoch's stored uniforms with the identical comparisons)."""
        cdf = self._cdf
        last = len(cdf) - 1  # cdf[-1] == 1.0 > u always, never counted
        if last == 0:
            return np.zeros(len(u), dtype=np.intp)
        if last > 8:
            return cdf.searchsorted(u, side="right")
        assigned = (u >= cdf[0]).astype(np.intp)
        for j in range(1, last):
            assigned += u >= cdf[j]
        return assigned

    def _group_from_u(self, u: np.ndarray) -> list[np.ndarray] | None:
        """Per-server request index arrays for stored dispatch uniforms.

        Same assignment as :meth:`_dispatch` (the draw happened in
        :meth:`draw_interval`); ``None`` means a single server takes all.
        Two servers -- the platform's big-cores-only configurations, the
        most common case in practice -- group from one comparison mask
        without ever materializing the assignment array.
        """
        k = self.n_servers
        if k == 1:
            return None
        if k == 2:
            mask = u >= self._cdf[0]
            return [(~mask).nonzero()[0], mask.nonzero()[0]]
        assigned = self._assign(u)
        return [(assigned == j).nonzero()[0] for j in range(k)]

    def draw_interval(
        self,
        t0: float,
        t1: float,
        arrival_rate: float,
        demand_sampler: DemandSampler,
    ) -> DrawnInterval:
        """Consume one interval's randomness without evaluating the queue.

        Draw order matches :meth:`run_interval` exactly -- arrival
        process, then (only when requests arrived) demands and the
        dispatch uniforms -- so ``run_drawn(t0, t1, draw_interval(...))``
        is byte-identical to ``run_interval(...)``.
        """
        if self.n_servers == 0:
            raise RuntimeError("reconfigure() must be called before run_interval()")
        if t1 <= t0:
            raise ValueError("interval must have positive duration")
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        n, times = self._draw_arrivals(arrival_rate, t0, t1)
        if n == 0:
            empty = np.empty(0)
            return DrawnInterval(0, times, empty, empty)
        demands = demand_sampler(self.rng, n)
        u = self.rng.random(n)
        return DrawnInterval(n, times, demands, u)

    def run_interval(
        self,
        t0: float,
        t1: float,
        arrival_rate: float,
        demand_sampler: DemandSampler,
    ) -> IntervalQueueStats:
        """Simulate Poisson arrivals over ``[t0, t1)``.

        Returns per-request latencies (sojourn times) for every request
        *arriving* in the interval, per-server utilizations, and the
        amount of work shed to the backlog bound.
        """
        return self.run_drawn(t0, t1, self.draw_interval(t0, t1, arrival_rate, demand_sampler))

    def run_drawn(
        self, t0: float, t1: float, drawn: DrawnInterval
    ) -> IntervalQueueStats:
        """Evaluate one interval whose randomness was already drawn."""
        dt = t1 - t0
        n_servers = self.n_servers
        scalar = n_servers < _SCALAR_SERVER_LIMIT
        n = drawn.n
        if scalar:
            free_list = self._free.tolist()
            carried_busy = [max(min(f, t1) - t0, 0.0) for f in free_list]
        else:
            carried_busy = np.maximum(np.minimum(self._free, t1) - t0, 0.0)
        if n == 0:
            if scalar:
                utils = tuple(min(c / dt, 1.0) for c in carried_busy)
            else:
                utils = tuple(float(u) for u in np.minimum(carried_busy / dt, 1.0))
            shed = self._shed(t1)
            return IntervalQueueStats(
                latencies_s=np.empty(0),
                arrival_times_s=np.empty(0),
                arrivals=0,
                utilizations=utils,
                shed_work_s=shed,
            )

        arrivals = drawn.times
        demands = drawn.demands
        groups = self._group_from_u(drawn.dispatch_u)

        service_sums = [0.0] * n_servers
        free = self._free
        speeds = self._speeds
        # The per-server block below is lindley_completion_times inlined
        # (same six array ops), so the kernel pays no call overhead at
        # interval rates of ~10k/s.
        maximum = np.maximum
        if groups is None:
            # Single server: no grouping work at all (the dispatch draw
            # still happened, keeping the stream aligned).
            service = demands / speeds[0]
            service_sums[0] = float(np.add.reduce(service))
            cum = service.cumsum()
            buf = cum - service
            np.subtract(arrivals, buf, out=buf)
            maximum.accumulate(buf, out=buf)
            maximum(buf, free[0], out=buf)
            np.add(cum, buf, out=buf)
            free[0] = buf[-1]
            latencies = np.subtract(buf, arrivals, out=buf)
        else:
            latencies = np.empty(n)
            for k in range(n_servers):
                idx = groups[k]
                if len(idx) == 0:
                    continue
                service = demands[idx] / speeds[k]
                service_sums[k] = float(np.add.reduce(service))
                arr_k = arrivals[idx]
                cum = service.cumsum()
                buf = cum - service
                np.subtract(arr_k, buf, out=buf)
                maximum.accumulate(buf, out=buf)
                maximum(buf, free[k], out=buf)
                np.add(cum, buf, out=buf)
                free[k] = buf[-1]
                np.subtract(buf, arr_k, out=buf)
                latencies[idx] = buf

        if scalar:
            utils = tuple(
                [min((c + s) / dt, 1.0) for c, s in zip(carried_busy, service_sums)]
            )
        else:
            utils = tuple(
                float(u)
                for u in np.minimum((carried_busy + np.asarray(service_sums)) / dt, 1.0)
            )
        shed = self._shed(t1)
        return IntervalQueueStats(
            latencies_s=latencies,
            arrival_times_s=arrivals,
            arrivals=n,
            utilizations=utils,
            shed_work_s=shed,
        )

    def run_epoch_drawn(
        self,
        t0s: Sequence[float],
        t1s: Sequence[float],
        drawn: Sequence[DrawnInterval],
    ) -> EpochQueueStats:
        """Evaluate a run of pre-drawn intervals in one batched pass.

        The caller guarantees the server set is untouched for the whole
        epoch (no :meth:`reconfigure` between the intervals) -- exactly
        the decision-stable regime of the engine's epoch fast path.

        Byte-identity with per-interval :meth:`run_drawn` calls rests on
        three observations, each pinned by the differential tests:

        * ``cumsum``/``maximum.accumulate`` along ``axis=1`` of a padded
          per-server ``(epoch, max_requests)`` matrix run the identical
          sequential recurrences per row as the scalar path's 1-D kernel
          (padding sits *after* the valid entries and its outputs are
          never read), while per-interval reductions -- service sums,
          the latency mean -- use exact-length row slices because
          numpy's pairwise summation tree depends on the operand length;
        * the only cross-interval coupling is each server's free time,
          whose per-boundary update ``free' = cum_last + max(free,
          runmax_last)`` and shed clamp are the scalar path's own two
          scalar operations, evaluated in a cheap Python scan;
        * per-interval bookkeeping (carried busy time, utilizations,
          shedding, backlog) replicates the scalar branch of
          :meth:`run_drawn` expression by expression, which is why the
          epoch path requires ``n_servers < _SCALAR_SERVER_LIMIT``.
        """
        k = self.n_servers
        if k == 0:
            raise RuntimeError("reconfigure() must be called before run_epoch_drawn()")
        if k >= _SCALAR_SERVER_LIMIT:
            raise ValueError(
                "the epoch kernel replicates the scalar per-server "
                f"bookkeeping and needs n_servers < {_SCALAR_SERVER_LIMIT}"
            )
        n_epoch = len(drawn)
        counts = [d.n for d in drawn]
        total = sum(counts)
        offsets = np.zeros(n_epoch + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])

        if total:
            times_all = np.concatenate([d.times for d in drawn])
            demands_all = np.concatenate([d.demands for d in drawn])
            u_all = np.concatenate([d.dispatch_u for d in drawn])
            interval_of = np.repeat(np.arange(n_epoch, dtype=np.intp), counts)
            if k == 1:
                assigned = None
            elif k == 2:
                # Matches _group_from_u's mask grouping: server 0 takes
                # ~mask, server 1 takes mask.
                assigned = (u_all >= self._cdf[0]).astype(np.intp)
            else:
                assigned = self._assign(u_all)
        speeds = self._speeds

        # Per-server padded matrices: row i holds interval i's requests
        # for that server (valid entries first), so the row-wise Lindley
        # recurrences below are the scalar kernel verbatim.
        per_server: list[tuple | None] = []
        for s in range(k):
            if not total:
                per_server.append(None)
                continue
            if assigned is None:
                sel = np.arange(total, dtype=np.intp)
            else:
                sel = np.flatnonzero(assigned == s)
            if not len(sel):
                per_server.append(None)
                continue
            rows = interval_of[sel]
            cnt = np.bincount(rows, minlength=n_epoch)
            width = int(cnt.max())
            starts = np.zeros(n_epoch, dtype=np.intp)
            np.cumsum(cnt[:-1], out=starts[1:])
            pos = np.arange(len(sel), dtype=np.intp) - starts[rows]
            dem = np.zeros((n_epoch, width))
            dem[rows, pos] = demands_all[sel]
            arr = np.zeros((n_epoch, width))
            arr[rows, pos] = times_all[sel]
            service = dem / speeds[s]
            cum = service.cumsum(axis=1)
            buf = cum - service
            np.subtract(arr, buf, out=buf)
            np.maximum.accumulate(buf, axis=1, out=buf)
            last_col = cnt - 1
            nz = np.flatnonzero(cnt)
            runmax_last = np.zeros(n_epoch)
            cum_last = np.zeros(n_epoch)
            runmax_last[nz] = buf[nz, last_col[nz]]
            cum_last[nz] = cum[nz, last_col[nz]]
            per_server.append(
                (sel, rows, pos, cnt, service, cum, buf, arr, runmax_last, cum_last)
            )

        # Cross-interval scan: carry each server's free time across the
        # epoch with the scalar path's own per-boundary operations.  The
        # scan runs on plain Python floats -- array values are hoisted
        # out through tolist() first -- because per-element ndarray
        # indexing would cost more than the whole batched kernel; the
        # arithmetic is the identical IEEE sequence either way.
        scan: list[tuple | None] = []
        for s in range(k):
            data = per_server[s]
            if data is None:
                scan.append(None)
                continue
            cnt, service = data[3], data[4]
            if service.shape[1] < _SCALAR_SERVER_LIMIT:
                # Narrow rows reduce sequentially (no pairwise split) and
                # the pads only ever add +0.0 to a positive running sum,
                # so the padded row sums are the exact per-row reduces.
                sums = service.sum(axis=1).tolist()
            else:
                # Wide rows reduce pairwise, where the tree shape depends
                # on the operand length: batch rows of equal request count
                # so each row still sums exactly its own c-length slice
                # (an axis-1 sum runs the same pairwise routine per row
                # as the scalar kernel's 1-D reduce).
                sums_arr = np.zeros(n_epoch)
                for c in np.unique(cnt):
                    if c:
                        rows_c = np.flatnonzero(cnt == c)
                        sums_arr[rows_c] = service[rows_c, :c].sum(axis=1)
                sums = sums_arr.tolist()
            scan.append((cnt.tolist(), data[8].tolist(), data[9].tolist(), sums))
        free = self._free
        free_l = free.tolist()
        free_rows: list[list[float]] = []
        utils_rows: list[list[float]] = []
        mean_utilization: list[float] = []
        shed_work: list[float] = []
        backlog: list[float] = []
        max_backlog = self.max_backlog_s
        for i in range(n_epoch):
            t0 = t0s[i]
            t1 = t1s[i]
            dt = t1 - t0
            n_i = counts[i]
            util_sum = 0.0
            row_free: list[float] = []
            row_utils: list[float] = []
            for s in range(k):
                f = free_l[s]
                row_free.append(f)
                lists = scan[s]
                c = lists[0][i] if lists is not None else 0
                if c:
                    free_l[s] = lists[2][i] + max(f, lists[1][i])
                if n_i != 0 and f >= t1:
                    # Fully carried-over interval: carried == dt, so
                    # min((dt + service_sum) / dt, 1.0) is exactly 1.0
                    # for any non-negative service sum -- the reduce's
                    # value cannot reach the observation.
                    util = 1.0
                else:
                    carried = max(min(f, t1) - t0, 0.0)
                    service_sum = lists[3][i] if c else 0.0
                    if n_i == 0:
                        util = min(carried / dt, 1.0)
                    else:
                        util = min((carried + service_sum) / dt, 1.0)
                row_utils.append(util)
                util_sum += util
            free_rows.append(row_free)
            utils_rows.append(row_utils)
            mean_utilization.append(util_sum / k)
            shed = 0.0
            if max_backlog is not None:
                bound = t1 + max_backlog
                for s in range(k):
                    f = free_l[s]
                    if f > bound:
                        shed += f - bound
                        free_l[s] = bound
            shed_work.append(shed)
            total_backlog = 0.0
            for f in free_l:
                if f > t1:
                    total_backlog += f - t1
            backlog.append(total_backlog)
        free[:] = free_l
        free_start = np.asarray(free_rows)
        utils = np.asarray(utils_rows)

        # Completion times and sojourn latencies, batched per server with
        # the scalar kernel's remaining three elementwise passes.
        latencies = np.empty(total)
        for s in range(k):
            data = per_server[s]
            if data is None:
                continue
            sel, rows, pos, _, _, cum, buf, arr, _, _ = data
            np.maximum(buf, free_start[:, s].reshape(n_epoch, 1), out=buf)
            np.add(cum, buf, out=buf)
            np.subtract(buf, arr, out=buf)
            latencies[sel] = buf[rows, pos]
        return EpochQueueStats(
            latencies_s=latencies,
            offsets=offsets,
            counts=counts,
            utilizations=utils,
            mean_utilization=mean_utilization,
            shed_work_s=shed_work,
            backlog_s=backlog,
        )

    def _draw_arrivals(
        self, arrival_rate: float, t0: float, t1: float
    ) -> tuple[int, np.ndarray]:
        """Arrival times for one interval: Poisson or geometric bursts."""
        dt = t1 - t0
        if self.burstiness <= 1.0:
            n = int(self.rng.poisson(arrival_rate * dt))
            times = self.rng.uniform(t0, t1, size=n)
            times.sort()
            return n, times
        mean_batch = self.burstiness
        n_bursts = int(self.rng.poisson(arrival_rate * dt / mean_batch))
        if n_bursts == 0:
            return 0, np.empty(0)
        sizes = self.rng.geometric(1.0 / mean_batch, size=n_bursts)
        epochs = self.rng.uniform(t0, t1, size=n_bursts)
        epochs.sort()
        times = np.repeat(epochs, sizes)
        return int(times.size), times

    def _shed(self, now: float) -> float:
        """Clamp backlog to the bound; return seconds of delay shed."""
        if self.max_backlog_s is None:
            return 0.0
        bound = now + self.max_backlog_s
        free = self._free
        if len(free) < _SCALAR_SERVER_LIMIT:
            shed = 0.0
            clamp = False
            for f in free.tolist():
                if f > bound:
                    shed += f - bound
                    clamp = True
            if clamp:
                np.minimum(free, bound, out=free)
            return shed
        excess = np.maximum(free - bound, 0.0)
        if np.any(excess > 0):
            np.minimum(free, bound, out=free)
        return float(np.sum(excess))
