"""Fault-tolerant supervision of the batch worker pool.

The :class:`PoolSupervisor` sits between :class:`~repro.sim.batch.
BatchRunner` and its :class:`~concurrent.futures.ProcessPoolExecutor`
and turns the three ways a batch used to die into recoverable events:

* **Worker crashes** (``BrokenProcessPool``): the pool is rebuilt with
  bounded exponential backoff and only the chunks that were in flight
  are re-dispatched.  A chunk that keeps failing is **bisected** down to
  a single spec; a single spec that keeps failing is re-dispatched one
  last time *alone* (nothing else in flight, so nothing else can be the
  culprit) before it is declared a poison spec and surfaced as a
  structured :class:`~repro.errors.WorkerCrashError` naming its
  fingerprint -- every other spec in the batch completes normally.
* **Hangs**: every chunk carries a watchdog deadline derived from the
  scheduler's cost model (``timeout_floor_s + timeout_per_cost_s x
  estimated chunk cost``); an overdue chunk gets its workers killed and
  is retried like a crash, ending in :class:`~repro.errors.
  SpecTimeoutError` instead of blocking forever.
* **Pool death spirals**: after ``max_pool_rebuilds`` breakages the
  supervisor stops trusting process isolation and **degrades to
  in-process serial** execution of the remaining work (trapping
  per-spec Python exceptions), so a hostile environment slows the batch
  down instead of killing it.

Retried specs are pure functions of their spec (the repo's standing
determinism contract), so no crash/retry/bisection history can change
an outcome, a cache key, or a byte of final output.

The module also provides :class:`RunJournal` -- the append-only,
flock-guarded record of completed spec fingerprints that makes an
interrupted invocation resumable (``--resume``) -- and
:func:`run_chunk`, the pool work item, which traps per-spec Python
exceptions into :class:`SpecFailure` proxies (so one bad spec cannot
lose its chunk-mates' results) and gives the chaos harness
(:mod:`repro.sim.chaos`) its injection point.
"""

from __future__ import annotations

import json
import math
import os
import sys
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.errors import (
    ExecutionError,
    ResumeMismatchError,
    RunInterruptedError,
    SpecFailedError,
    SpecTimeoutError,
    WorkerCrashError,
)

try:  # pragma: no cover - POSIX only (mirrors the manifest pack)
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.batch import BatchRunner

#: Name of the run journal inside a cache directory.
JOURNAL_NAME = "journal.log"

#: Upper bound on one wait() round, so stop requests (SIGINT handlers
#: set a flag on the runner) are noticed promptly even with no deadline.
_POLL_S = 0.5


# ----------------------------------------------------------------------
# retry / timeout policy
# ----------------------------------------------------------------------


#: ``REPRO_*`` names already warned about this process (warn once).
_warned_env: set[str] = set()


def _warn_unknown_env(known: set[str]) -> None:
    """Flag ``REPRO_*`` variables that match no known knob.

    A typo'd override (``REPRO_TIMEOUT_FLOOR=0`` for
    ``REPRO_TIMEOUT_FLOOR_S``) would otherwise silently fall back to
    the default -- the worst failure mode for an operator tightening
    deadlines.  Warns once per name per process, with a did-you-mean.
    """
    from repro.errors import suggest

    for name in sorted(os.environ):
        if not name.startswith("REPRO_") or name in known:
            continue
        if name in _warned_env:
            continue
        _warned_env.add(name)
        hint = suggest(name, sorted(known))
        hint_text = f" -- did you mean {hint!r}?" if hint else ""
        print(
            f"[env] unrecognized {name} (ignored){hint_text} "
            f"known: {', '.join(sorted(known))}",
            file=sys.stderr,
        )


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ[name])
    except (KeyError, ValueError):
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the supervisor's recovery behaviour.

    Every knob has an environment override (``REPRO_<FIELD>``, upper
    case) so operators and the chaos harness can tighten deadlines
    without threading parameters through the CLI.
    """

    #: Dispatch attempts per chunk before it is bisected (multi-spec)
    #: or sent to solo confirmation (single-spec).
    max_dispatches: int = 3
    #: Pool breakages tolerated before degrading to in-process serial.
    max_pool_rebuilds: int = 5
    #: Exponential backoff before each pool rebuild: ``base * 2**n``,
    #: capped.  Deliberately short -- worker crashes are process-local,
    #: not remote-service overload.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Watchdog: a chunk may run ``floor + per_cost x estimated_cost``
    #: seconds before it is presumed hung.  ``floor <= 0`` disables
    #: watchdog timeouts entirely.
    timeout_floor_s: float = 60.0
    timeout_per_cost_s: float = 0.05

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """The default policy with ``REPRO_*`` environment overrides.

        Unrecognized ``REPRO_*`` variables are flagged on stderr with a
        did-you-mean (once per process) instead of silently using the
        defaults.
        """
        values = {}
        known = {"REPRO_CHAOS"}  # the chaos harness's own knob
        for spec in fields(cls):
            env = f"REPRO_{spec.name.upper()}"
            known.add(env)
            if spec.type in ("int", int):
                values[spec.name] = _env_int(env, spec.default)
            else:
                values[spec.name] = _env_float(env, spec.default)
        _warn_unknown_env(known)
        return cls(**values)

    def backoff_s(self, failures: int) -> float:
        """Sleep before the ``failures``-th pool rebuild (0-based)."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0**failures))

    def chunk_timeout_s(self, cost: float) -> float:
        """The watchdog deadline for a chunk of estimated ``cost``."""
        if self.timeout_floor_s <= 0:
            return math.inf
        return self.timeout_floor_s + self.timeout_per_cost_s * cost


# ----------------------------------------------------------------------
# the pool work item
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpecFailure:
    """Worker-side proxy for an exception raised *inside* one spec.

    Travels back in the chunk's result list in place of the outcome, so
    chunk-mates keep their results and the parent can wrap the failure
    without re-running anything.
    """

    exception_type: str
    message: str


def run_chunk(specs: Sequence["ScenarioSpec"]) -> list:
    """Run a chunk of scenarios in a worker (the pool's work item).

    Per-spec Python exceptions are trapped into :class:`SpecFailure`
    (deterministic by purity, so retrying them is pointless); crashes
    and hangs -- including those injected by :mod:`repro.sim.chaos`
    through the ``maybe_inject`` hook below -- take the whole worker
    down and are the supervisor's problem.
    """
    from repro.sim import chaos

    results: list = []
    for spec in specs:
        chaos.maybe_inject(spec.fingerprint())
        try:
            results.append(spec.run())
        except Exception as exc:
            results.append(SpecFailure(type(exc).__name__, str(exc)))
    return results


# ----------------------------------------------------------------------
# supervisor
# ----------------------------------------------------------------------


class _Work:
    """One dispatchable chunk plus its retry state."""

    __slots__ = ("items", "cost", "dispatches", "timeouts", "solo", "deadline")

    def __init__(self, items, cost: float, dispatches: int = 0):
        self.items = list(items)  #: list of (key, spec)
        self.cost = cost
        self.dispatches = dispatches  #: failed dispatch attempts so far
        self.timeouts = 0  #: of which were watchdog timeouts
        self.solo = False  #: dispatched alone (confirmation round)
        self.deadline = math.inf

    def describe(self) -> str:
        return f"{len(self.items)} spec(s), cost {self.cost:.0f}"


class PoolSupervisor:
    """Drive chunks through the runner's pool, surviving crashes/hangs.

    One supervisor instance serves one ``_execute_pool`` call; it owns
    the retry queues but borrows the pool (and all fault counters) from
    the runner, so pool reuse across ``run()`` calls and the runner's
    ``[fault]`` statistics keep working.
    """

    def __init__(
        self,
        runner: "BatchRunner",
        chunks: Sequence[Sequence[tuple[str, "ScenarioSpec"]]],
        policy: RetryPolicy,
    ):
        from repro.sim.batch import estimate_cost

        self.runner = runner
        self.policy = policy
        self._pending: deque[_Work] = deque(
            _Work(chunk, sum(estimate_cost(spec) for _, spec in chunk))
            for chunk in chunks
        )
        self._suspects: deque[_Work] = deque()
        self._inflight: dict[Future, _Work] = {}
        self._ready: deque[tuple[str, object]] = deque()
        self._rebuilds = 0

    # -- public ---------------------------------------------------------

    def events(self) -> Iterator[tuple[str, object]]:
        """Yield ``(key, outcome | ExecutionError)`` in completion order.

        Raises :class:`RunInterruptedError` after a clean drain when the
        runner's stop flag is set (a signal handler requested shutdown).
        """
        while self._pending or self._suspects or self._inflight or self._ready:
            while self._ready:
                yield self._ready.popleft()
            if not (self._pending or self._suspects or self._inflight):
                break
            if self._stopping() and not self._inflight:
                self._interrupt()
            if self.runner.degraded:
                self._drain_serial()
                continue
            self._dispatch()
            if self._inflight:
                self._reap()
            elif not self._ready and (self._pending or self._suspects):
                # Nothing in flight and nothing dispatched: the pool is
                # refusing work (e.g. submit itself broke it) -- the
                # failure handler has already updated the queues, loop.
                continue

    # -- stop handling --------------------------------------------------

    def _stopping(self) -> bool:
        return self.runner.stop_requested

    def _interrupt(self) -> None:
        remaining = sum(len(w.items) for w in self._pending) + sum(
            len(w.items) for w in self._suspects
        )
        raise RunInterruptedError(
            f"run interrupted: {remaining} spec(s) still pending; "
            "completed work is cached and journaled -- rerun with "
            "--resume to continue",
            remaining=remaining,
        )

    # -- dispatch -------------------------------------------------------

    @property
    def _max_inflight(self) -> int:
        # Enough to keep every worker busy plus a small ready margin;
        # small enough that one crash does not taint the whole plan
        # (every in-flight chunk gets a dispatch strike on pool death).
        return self.runner.jobs + 2

    def _dispatch(self) -> None:
        if self._stopping():
            return  # drain only: no new submissions
        if any(work.solo for work in self._inflight.values()):
            return  # a confirmation round owns the pool
        if not self._inflight and self._suspects and not self._pending:
            work = self._suspects.popleft()
            work.solo = True
            self._submit(work)
            return
        while self._pending and len(self._inflight) < self._max_inflight:
            self._submit(self._pending.popleft())

    def _submit(self, work: _Work) -> None:
        try:
            pool = self.runner._ensure_pool()
            future = pool.submit(
                run_chunk, [spec for _, spec in work.items]
            )
        except BrokenProcessPool:
            self._pool_failure(struck=[work])
            return
        work.deadline = time.monotonic() + self.policy.chunk_timeout_s(work.cost)
        self._inflight[future] = work

    # -- reaping --------------------------------------------------------

    def _reap(self) -> None:
        timeout = _POLL_S
        finite = [w.deadline for w in self._inflight.values() if w.deadline < math.inf]
        if finite:
            timeout = min(_POLL_S, max(0.01, min(finite) - time.monotonic()))
        done, _ = wait(
            set(self._inflight), timeout=timeout, return_when=FIRST_COMPLETED
        )
        crashed: list[_Work] = []
        for future in done:
            work = self._inflight.pop(future)
            try:
                results = future.result()
            except (BrokenProcessPool, OSError):
                crashed.append(work)
                continue
            self._deliver(work, results)
        if crashed:
            # The pool is broken: every other in-flight chunk is lost
            # with it (and equally suspect -- any of them may hold the
            # culprit, so all get a dispatch strike).
            crashed.extend(self._inflight.values())
            self._inflight.clear()
            self._pool_failure(struck=crashed)
            return
        now = time.monotonic()
        overdue = [w for w in self._inflight.values() if now >= w.deadline]
        if overdue:
            # Presumed hung: kill the workers (a sleeping/hung worker
            # never exits on its own) and retry.  Chunks that were
            # merely sharing the pool are requeued without a strike.
            for work in overdue:
                work.timeouts += 1
            victims = [
                w for w in self._inflight.values() if w not in overdue
            ]
            self._inflight.clear()
            self.runner.spec_timeouts += 1
            self._pool_failure(struck=overdue, requeue=victims, timed_out=True)

    def _deliver(self, work: _Work, results: list) -> None:
        if not isinstance(results, list) or len(results) != len(work.items):
            # A malformed result is as good as a crash of that chunk.
            self._pool_failure(struck=[work])
            return
        for (key, spec), result in zip(work.items, results):
            if isinstance(result, SpecFailure):
                self.runner.specs_failed += 1
                self._ready.append(
                    (
                        key,
                        SpecFailedError(
                            f"spec {spec.describe()} ({key}) raised "
                            f"{result.exception_type}: {result.message}",
                            fingerprint=key,
                            spec_description=spec.describe(),
                            exception_type=result.exception_type,
                        ),
                    )
                )
            else:
                self._ready.append((key, result))

    # -- failure handling ----------------------------------------------

    def _pool_failure(
        self,
        *,
        struck: Sequence[_Work],
        requeue: Sequence[_Work] = (),
        timed_out: bool = False,
    ) -> None:
        """A pool breakage (or watchdog kill): retire, requeue, rebuild."""
        if not timed_out:
            self.runner.worker_crashes += 1
        self.runner._retire_pool(kill=True)
        for work in requeue:
            work.solo = False
            self._pending.appendleft(work)
        for work in struck:
            work.solo, solo = False, work.solo
            work.dispatches += 1
            self._requeue(work, was_solo=solo)
        self._rebuilds += 1
        self.runner.pool_rebuilds += 1
        if self._rebuilds > self.policy.max_pool_rebuilds:
            self.runner.degraded = True
            return
        if not self._stopping():
            time.sleep(self.policy.backoff_s(self._rebuilds - 1))

    def _requeue(self, work: _Work, *, was_solo: bool) -> None:
        """Route one struck chunk: retry, bisect, suspect or fail."""
        if was_solo:
            # It crashed/hung with the pool to itself: definitive.
            self._fail(work)
            return
        if work.dispatches < self.policy.max_dispatches:
            self.runner.chunk_retries += 1
            self._pending.appendleft(work)
            return
        if len(work.items) > 1:
            # Bisect: each half gets exactly one more dispatch before
            # bisecting again, so total dispatches stay O(n + log n)
            # while the poison spec is cornered and its chunk-mates'
            # results are recovered.
            self.runner.chunk_bisections += 1
            mid = len(work.items) // 2
            from repro.sim.batch import estimate_cost

            for part in (work.items[mid:], work.items[:mid]):
                half = _Work(
                    part,
                    sum(estimate_cost(spec) for _, spec in part),
                    dispatches=self.policy.max_dispatches - 1,
                )
                half.timeouts = work.timeouts
                self._pending.appendleft(half)
            return
        # A single spec out of attempts: confirm alone before blaming.
        self._suspects.append(work)

    def _fail(self, work: _Work) -> None:
        (key, spec) = work.items[0]
        self.runner.specs_failed += 1
        if work.timeouts > 0:
            timeout_s = self.policy.chunk_timeout_s(work.cost)
            error: ExecutionError = SpecTimeoutError(
                f"spec {spec.describe()} ({key}) exceeded its "
                f"{timeout_s:.0f}s watchdog deadline on every attempt "
                "(including a solo dispatch)",
                fingerprint=key,
                spec_description=spec.describe(),
                timeout_s=timeout_s,
            )
        else:
            error = WorkerCrashError(
                f"spec {spec.describe()} ({key}) crashed its worker on "
                "every attempt (including a solo dispatch): poison spec",
                fingerprint=key,
                spec_description=spec.describe(),
            )
        self._ready.append((key, error))

    # -- degraded serial path ------------------------------------------

    def _drain_serial(self) -> None:
        """The pool kept dying: finish everything in-process, serially.

        Per-spec Python exceptions are trapped; a spec that kills the
        *main* process at this point was going to kill the run anyway.
        """
        while self._pending or self._suspects:
            work = (
                self._pending.popleft()
                if self._pending
                else self._suspects.popleft()
            )
            while work.items:
                if self._stopping():
                    # Put the rest back so the interrupt counts it.
                    self._pending.appendleft(work)
                    self._interrupt()
                key, spec = work.items.pop(0)
                try:
                    outcome = spec.run()
                except Exception as exc:
                    self.runner.specs_failed += 1
                    self._ready.append(
                        (
                            key,
                            SpecFailedError(
                                f"spec {spec.describe()} ({key}) raised "
                                f"{type(exc).__name__}: {exc} "
                                "(degraded serial mode)",
                                fingerprint=key,
                                spec_description=spec.describe(),
                                exception_type=type(exc).__name__,
                            ),
                        )
                    )
                else:
                    self._ready.append((key, outcome))


# ----------------------------------------------------------------------
# run journal
# ----------------------------------------------------------------------


class RunJournal:
    """Append-only, flock-guarded record of one run's completed specs.

    Layout: a JSON header line (the run's identity -- command, seed,
    workload, versions) followed by one completed fingerprint per line.
    Appends take an exclusive ``flock`` and end in ``flush``, mirroring
    ``manifest.pack``; a truncated tail line (crashed writer) is
    ignored on load.  The journal is *advisory*: resumed outcomes are
    re-served from the outcome cache (which is what makes resumed
    output byte-identical), the journal supplies run-level bookkeeping
    -- which run this was, how far it got -- and refuses to resume
    under a different run identity.
    """

    def __init__(
        self,
        path: Path,
        header: dict,
        completed: set[str],
        resumed: bool,
    ):
        self.path = path
        self.header = header
        self.completed = completed
        self.resumed = resumed
        self.recorded = 0

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | Path,
        header: Mapping[str, object],
        *,
        resume: bool = False,
    ) -> "RunJournal":
        """Open (resuming) or start (truncating) a run journal.

        With ``resume=True`` an existing journal whose header matches is
        loaded; a header mismatch raises :class:`ResumeMismatchError`
        (resuming a *different* run would mix outputs); a missing or
        unreadable journal falls through to a fresh start.
        """
        path = Path(path)
        header = dict(header)
        if resume:
            loaded = cls._read(path)
            if loaded is not None:
                stored, completed = loaded
                if stored != header:
                    raise ResumeMismatchError(
                        f"journal {path} belongs to a different run: "
                        f"it recorded {stored!r}, this invocation is "
                        f"{header!r}; drop --resume (or delete the "
                        "journal) to start fresh"
                    )
                return cls(path, header, completed, resumed=True)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(json.dumps(header, sort_keys=True).encode() + b"\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return cls(path, header, set(), resumed=False)

    @staticmethod
    def _read(path: Path) -> tuple[dict, set[str]] | None:
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        lines = raw.split(b"\n")
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except ValueError:
            return None
        if not isinstance(header, dict):
            return None
        completed = set()
        # lines[-1] is either the empty string after the final newline
        # or a torn (crashed-writer) partial line: ignored either way.
        for line in lines[1:-1]:
            key = line.strip().decode("ascii", "replace")
            if key:
                completed.add(key)
        return header, completed

    # -- appends --------------------------------------------------------

    def record(self, key: str) -> None:
        """Journal one completed fingerprint (idempotent per run)."""
        if key in self.completed:
            return
        try:
            with self.path.open("ab") as fh:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                try:
                    fh.write(key.encode("ascii") + b"\n")
                    fh.flush()
                finally:
                    if fcntl is not None:
                        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        except OSError:
            return  # advisory: losing a journal line only costs stats
        self.completed.add(key)
        self.recorded += 1

    def truncate(self) -> None:
        """Empty the journal after a fully successful run.

        A finished run's journal is pure history -- every outcome is in
        the cache, so ``--resume`` has nothing to add -- and without
        truncation the file grows across invocations forever.  The file
        is emptied (not deleted) under the same ``flock`` appends take;
        an empty journal reads as *no journal* on the next open, so a
        later ``--resume`` starts fresh.  Advisory like ``record``:
        an OSError leaves the journal as-is.
        """
        try:
            with self.path.open("r+b") as fh:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                try:
                    fh.truncate(0)
                    fh.flush()
                finally:
                    if fcntl is not None:
                        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        except OSError:
            return
        self.completed = set()

    def describe(self) -> str:
        state = "resumed" if self.resumed else "fresh"
        return f"{self.path} ({state}, {len(self.completed)} completed)"


__all__ = [
    "JOURNAL_NAME",
    "PoolSupervisor",
    "RetryPolicy",
    "RunJournal",
    "SpecFailure",
    "run_chunk",
]
