"""Observation records produced by the interval co-simulator.

One :class:`IntervalObservation` is what the paper's QoS Monitor sees at
the end of each monitoring interval: application-level load and tail
latency, system power from the energy registers, and batch IPS from the
performance counters.  :class:`ExperimentResult` collects a run's
observations and exposes the summary metrics the paper reports.

Columnar storage
----------------
Since the storage-format overhaul the run's backing store is an
:class:`ObservationTable` -- a numpy struct-of-arrays with one typed
column per observation field, plus dictionary-encoded pools for the two
non-scalar fields (each interval's :class:`~repro.policies.base.Decision`
and configuration label repeat heavily, so the table stores small
integer codes into a pool of unique values).  Real large-cluster
telemetry pipelines store per-node samples columnar for the same
reasons this repo does:

* every summary metric the paper reports is a column reduction, served
  by zero-copy views instead of per-call ``np.array([getattr(o, a) for
  o in obs])`` rebuilds;
* a cached outcome pickles as a couple dozen arrays instead of
  thousands of per-interval dataclass objects, which is what made
  warm-start cache reads unpickle-bound;
* fleet aggregation can fold a node's columns into fixed-size
  accumulators and drop the node's table immediately.

:class:`IntervalObservation` survives unchanged as the *row* view:
``result.observations`` lazily materializes dataclass rows for existing
call sites (managers, figure modules, the reference-engine oracles),
and the engine hands managers a lightweight :class:`ObservationRowView`
backed directly by the column buffers.

``STORAGE_VERSION`` stamps every pickled table/result; loading a
payload from a different format version (e.g. a pre-columnar cache
entry) raises instead of resurrecting a half-compatible object, which
the outcome cache treats as a miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.sim.latency import qos_guarantee, qos_tardiness

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.policies.base import Decision

#: Version of the pickled observation-store layout.  Bumped from 1
#: (tuple of per-interval dataclasses) to 2 (struct-of-arrays table);
#: payloads from any other version are rejected on load.
STORAGE_VERSION = 2

#: Observation fields stored as float64 columns.
FLOAT_FIELDS = (
    "t_start_s",
    "duration_s",
    "offered_load",
    "measured_load",
    "arrival_rps",
    "tail_latency_ms",
    "mean_latency_ms",
    "tardiness",
    "power_w",
    "energy_j",
    "big_ips",
    "small_ips",
    "big_freq_ghz",
    "small_freq_ghz",
    "mean_utilization",
    "backlog_s",
    "shed_work_s",
    "batch_instructions",
)

#: Observation fields stored as int64 columns.
INT_FIELDS = ("index", "n_requests", "migrated_cores")

#: Observation fields stored as bool columns.
BOOL_FIELDS = ("qos_met", "counter_garbage", "migration_event")

#: All scalar columns, in storage order.
SCALAR_FIELDS = FLOAT_FIELDS + INT_FIELDS + BOOL_FIELDS

#: Dictionary-encoded fields: an int32 code column plus a pool of
#: unique values (decisions and config labels repeat across intervals).
POOLED_FIELDS = ("decision", "config_label")


@dataclass(frozen=True)
class IntervalObservation:
    """Everything measurable about one monitoring interval.

    The fields mirror the paper's QoS Monitor (Section 3.2): application
    metrics come from the workload's logfile interface, power from the
    energy meters, and ``big_ips``/``small_ips`` from perf counters over
    the batch cores (and may therefore be garbage if the Juno perf bug
    fires -- see :mod:`repro.hardware.counters`).

    Since the columnar overhaul this is the *row view* of an
    :class:`ObservationTable`: materialized lazily from the column
    buffers, never the storage format itself.
    """

    index: int
    t_start_s: float
    duration_s: float
    offered_load: float
    measured_load: float
    arrival_rps: float
    n_requests: int
    tail_latency_ms: float
    mean_latency_ms: float
    qos_met: bool
    tardiness: float
    power_w: float
    energy_j: float
    big_ips: float
    small_ips: float
    counter_garbage: bool
    decision: "Decision"
    config_label: str
    big_freq_ghz: float
    small_freq_ghz: float
    migrated_cores: int
    migration_event: bool
    mean_utilization: float
    backlog_s: float
    shed_work_s: float
    batch_instructions: float


def _scalar_dtype(field: str):
    if field in FLOAT_FIELDS:
        return np.float64
    if field in INT_FIELDS:
        return np.int64
    return np.bool_


class ObservationTable:
    """Struct-of-arrays store for a run's interval observations.

    One preallocated, typed numpy column per scalar observation field;
    ``decision`` and ``config_label`` are dictionary-encoded (an int32
    code column over a pool of unique values).  The engine appends one
    row per monitoring interval; :meth:`freeze` then makes every column
    read-only so the zero-copy views handed out by
    :class:`ExperimentResult` cannot be mutated behind the cache's back.
    """

    __slots__ = (
        "_cols",
        "_decision_pool",
        "_decision_index",
        "_label_pool",
        "_label_index",
        "_n",
        "_capacity",
        "_frozen",
    )

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._cols: dict[str, np.ndarray] = {
            field: np.empty(capacity, dtype=_scalar_dtype(field))
            for field in SCALAR_FIELDS
        }
        for field in POOLED_FIELDS:
            self._cols[field] = np.empty(capacity, dtype=np.int32)
        self._decision_pool: list["Decision"] = []
        self._decision_index: dict["Decision", int] = {}
        self._label_pool: list[str] = []
        self._label_index: dict[str, int] = {}
        self._n = 0
        self._capacity = capacity
        self._frozen = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def append(
        self,
        *,
        index: int,
        t_start_s: float,
        duration_s: float,
        offered_load: float,
        measured_load: float,
        arrival_rps: float,
        n_requests: int,
        tail_latency_ms: float,
        mean_latency_ms: float,
        qos_met: bool,
        tardiness: float,
        power_w: float,
        energy_j: float,
        big_ips: float,
        small_ips: float,
        counter_garbage: bool,
        decision: "Decision",
        config_label: str,
        big_freq_ghz: float,
        small_freq_ghz: float,
        migrated_cores: int,
        migration_event: bool,
        mean_utilization: float,
        backlog_s: float,
        shed_work_s: float,
        batch_instructions: float,
    ) -> int:
        """Append one interval's scalars; returns the new row's index."""
        if self._frozen:
            raise RuntimeError("cannot append to a frozen ObservationTable")
        i = self._n
        if i >= self._capacity:
            raise IndexError("ObservationTable capacity exhausted")
        cols = self._cols
        cols["index"][i] = index
        cols["t_start_s"][i] = t_start_s
        cols["duration_s"][i] = duration_s
        cols["offered_load"][i] = offered_load
        cols["measured_load"][i] = measured_load
        cols["arrival_rps"][i] = arrival_rps
        cols["n_requests"][i] = n_requests
        cols["tail_latency_ms"][i] = tail_latency_ms
        cols["mean_latency_ms"][i] = mean_latency_ms
        cols["qos_met"][i] = qos_met
        cols["tardiness"][i] = tardiness
        cols["power_w"][i] = power_w
        cols["energy_j"][i] = energy_j
        cols["big_ips"][i] = big_ips
        cols["small_ips"][i] = small_ips
        cols["counter_garbage"][i] = counter_garbage
        code = self._decision_index.get(decision)
        if code is None:
            code = len(self._decision_pool)
            self._decision_pool.append(decision)
            self._decision_index[decision] = code
        cols["decision"][i] = code
        code = self._label_index.get(config_label)
        if code is None:
            code = len(self._label_pool)
            self._label_pool.append(config_label)
            self._label_index[config_label] = code
        cols["config_label"][i] = code
        cols["big_freq_ghz"][i] = big_freq_ghz
        cols["small_freq_ghz"][i] = small_freq_ghz
        cols["migrated_cores"][i] = migrated_cores
        cols["migration_event"][i] = migration_event
        cols["mean_utilization"][i] = mean_utilization
        cols["backlog_s"][i] = backlog_s
        cols["shed_work_s"][i] = shed_work_s
        cols["batch_instructions"][i] = batch_instructions
        self._n = i + 1
        return i

    def extend(
        self,
        n: int,
        *,
        decision: "Decision",
        config_label: str,
        **columns,
    ) -> int:
        """Bulk-append ``n`` rows sharing one decision; returns the first index.

        The epoch fast path's counterpart to :meth:`append`: ``columns``
        must provide every scalar field, each as either a length-``n``
        array-like or a scalar to broadcast (epoch-constant fields such
        as ``duration_s`` or ``big_ips``).  ``decision`` and
        ``config_label`` are scalars by construction -- an epoch exists
        only while the decision is unchanged -- so each pool is consulted
        once for the whole slab.
        """
        if self._frozen:
            raise RuntimeError("cannot append to a frozen ObservationTable")
        if n < 0:
            raise ValueError("row count must be non-negative")
        i = self._n
        if i + n > self._capacity:
            raise IndexError("ObservationTable capacity exhausted")
        missing = set(SCALAR_FIELDS) - set(columns)
        extra = set(columns) - set(SCALAR_FIELDS)
        if missing or extra:
            raise TypeError(
                f"extend() expects exactly the scalar fields; missing "
                f"{sorted(missing)}, unexpected {sorted(extra)}"
            )
        cols = self._cols
        for field, value in columns.items():
            cols[field][i : i + n] = value
        code = self._decision_index.get(decision)
        if code is None:
            code = len(self._decision_pool)
            self._decision_pool.append(decision)
            self._decision_index[decision] = code
        cols["decision"][i : i + n] = code
        code = self._label_index.get(config_label)
        if code is None:
            code = len(self._label_pool)
            self._label_pool.append(config_label)
            self._label_index[config_label] = code
        cols["config_label"][i : i + n] = code
        self._n = i + n
        return i

    def append_observation(self, observation: IntervalObservation) -> int:
        """Append one already-materialized row (the legacy path)."""
        return self.append(
            **{
                field: getattr(observation, field)
                for field in SCALAR_FIELDS + POOLED_FIELDS
            }
        )

    @classmethod
    def from_observations(
        cls, observations: Sequence[IntervalObservation]
    ) -> "ObservationTable":
        """Build a frozen table from materialized rows.

        The conversion path for everything that still produces
        per-interval dataclasses: the reference engine, hand-built test
        fixtures, and legacy-format migrations.
        """
        observations = tuple(observations)
        table = cls(len(observations))
        for observation in observations:
            table.append_observation(observation)
        return table.freeze()

    def freeze(self) -> "ObservationTable":
        """Trim to the appended length and make every column read-only."""
        if not self._frozen:
            if self._n != self._capacity:
                self._cols = {
                    name: col[: self._n].copy() for name, col in self._cols.items()
                }
                self._capacity = self._n
            for col in self._cols.values():
                col.flags.writeable = False
            self._frozen = True
        return self

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def column(self, field: str) -> np.ndarray:
        """The column for one scalar field (read-only once frozen).

        For the pooled fields this is the int32 *code* column; use
        :meth:`decision_at` / :meth:`label_at` (or :meth:`row`) for the
        decoded values.
        """
        return self._cols[field]

    @property
    def decision_pool(self) -> tuple["Decision", ...]:
        """Unique decisions, in first-appearance order."""
        return tuple(self._decision_pool)

    @property
    def label_pool(self) -> tuple[str, ...]:
        """Unique configuration labels, in first-appearance order."""
        return tuple(self._label_pool)

    def decision_at(self, i: int) -> "Decision":
        """The decoded decision of row ``i``."""
        return self._decision_pool[self._cols["decision"][i]]

    def label_at(self, i: int) -> str:
        """The decoded configuration label of row ``i``."""
        return self._label_pool[self._cols["config_label"][i]]

    def labels(self) -> tuple[str, ...]:
        """Decoded configuration labels, one per row."""
        pool = self._label_pool
        return tuple(pool[code] for code in self._cols["config_label"].tolist())

    def row(self, i: int) -> IntervalObservation:
        """Materialize row ``i`` as a plain-scalar dataclass."""
        cols = self._cols
        return IntervalObservation(
            index=cols["index"][i].item(),
            t_start_s=cols["t_start_s"][i].item(),
            duration_s=cols["duration_s"][i].item(),
            offered_load=cols["offered_load"][i].item(),
            measured_load=cols["measured_load"][i].item(),
            arrival_rps=cols["arrival_rps"][i].item(),
            n_requests=cols["n_requests"][i].item(),
            tail_latency_ms=cols["tail_latency_ms"][i].item(),
            mean_latency_ms=cols["mean_latency_ms"][i].item(),
            qos_met=cols["qos_met"][i].item(),
            tardiness=cols["tardiness"][i].item(),
            power_w=cols["power_w"][i].item(),
            energy_j=cols["energy_j"][i].item(),
            big_ips=cols["big_ips"][i].item(),
            small_ips=cols["small_ips"][i].item(),
            counter_garbage=cols["counter_garbage"][i].item(),
            decision=self._decision_pool[cols["decision"][i]],
            config_label=self._label_pool[cols["config_label"][i]],
            big_freq_ghz=cols["big_freq_ghz"][i].item(),
            small_freq_ghz=cols["small_freq_ghz"][i].item(),
            migrated_cores=cols["migrated_cores"][i].item(),
            migration_event=cols["migration_event"][i].item(),
            mean_utilization=cols["mean_utilization"][i].item(),
            backlog_s=cols["backlog_s"][i].item(),
            shed_work_s=cols["shed_work_s"][i].item(),
            batch_instructions=cols["batch_instructions"][i].item(),
        )

    def rows(self) -> tuple[IntervalObservation, ...]:
        """Materialize every row, in order."""
        return tuple(self.row(i) for i in range(self._n))

    def view(self, i: int) -> "ObservationRowView":
        """A lazy row view over row ``i`` (no dataclass construction)."""
        return ObservationRowView(self, i)

    def take(self, indices: np.ndarray) -> "ObservationTable":
        """A new frozen table holding the given rows (in given order).

        The pools are shared structurally (codes stay valid), so a
        time-slice costs one fancy-index per column.
        """
        taken = ObservationTable(0)
        taken._cols = {name: col[indices] for name, col in self._cols.items()}
        taken._decision_pool = list(self._decision_pool)
        taken._decision_index = dict(self._decision_index)
        taken._label_pool = list(self._label_pool)
        taken._label_index = dict(self._label_index)
        taken._n = taken._capacity = int(len(indices))
        for col in taken._cols.values():
            col.flags.writeable = False
        taken._frozen = True
        return taken

    # ------------------------------------------------------------------
    # pickling (the cache payload)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        if self._frozen:
            cols = self._cols
        else:
            # Snapshot a mid-build table without mutating it (pickling
            # or deepcopying a live table must not freeze the source).
            cols = {
                name: col[: self._n].copy() for name, col in self._cols.items()
            }
            for col in cols.values():
                col.flags.writeable = False
        return {
            "storage": STORAGE_VERSION,
            "cols": cols,
            "decision_pool": tuple(self._decision_pool),
            "label_pool": tuple(self._label_pool),
        }

    def __setstate__(self, state) -> None:
        if not isinstance(state, dict) or state.get("storage") != STORAGE_VERSION:
            raise ValueError(
                "unsupported ObservationTable payload (storage format "
                f"{state.get('storage') if isinstance(state, dict) else '?'}; "
                f"this build reads version {STORAGE_VERSION})"
            )
        cols = state["cols"]
        self._cols = cols
        self._decision_pool = list(state["decision_pool"])
        self._decision_index = {d: i for i, d in enumerate(self._decision_pool)}
        self._label_pool = list(state["label_pool"])
        self._label_index = {s: i for i, s in enumerate(self._label_pool)}
        self._n = self._capacity = len(cols["index"])
        for col in cols.values():
            col.flags.writeable = False
        self._frozen = True


class ObservationRowView:
    """One table row, read lazily straight from the column buffers.

    What the engine hands to ``manager.observe()``: attribute access
    decodes the requested field on demand (managers touch a handful of
    fields per interval), always as plain Python scalars, so manager
    arithmetic is bit-identical to the dataclass era.
    """

    __slots__ = ("_table", "_i")

    def __init__(self, table: ObservationTable, i: int):
        self._table = table
        self._i = i

    def materialize(self) -> IntervalObservation:
        """The full dataclass row (rarely needed; attribute access is
        the intended interface)."""
        return self._table.row(self._i)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObservationRowView({self.materialize()!r})"


def _add_view_accessors() -> None:
    def scalar_property(field: str):
        def get(self):
            return self._table._cols[field][self._i].item()

        return property(get)

    for field in SCALAR_FIELDS:
        setattr(ObservationRowView, field, scalar_property(field))
    ObservationRowView.decision = property(
        lambda self: self._table.decision_at(self._i)
    )
    ObservationRowView.config_label = property(
        lambda self: self._table.label_at(self._i)
    )


_add_view_accessors()


class ExperimentResult:
    """A run's observations plus the paper's summary metrics.

    Backed by an :class:`ObservationTable`; accepts a legacy sequence of
    :class:`IntervalObservation` rows and converts it.  Column accessors
    are zero-copy read-only views into the table; ``observations``
    materializes (and memoizes) dataclass rows for call sites that want
    the row-oriented interface.
    """

    def __init__(
        self,
        observations: "Sequence[IntervalObservation] | ObservationTable",
        *,
        workload_name: str,
        manager_name: str,
        target_latency_ms: float,
        interval_s: float,
    ):
        if isinstance(observations, ObservationTable):
            table = observations.freeze()
        else:
            table = ObservationTable.from_observations(observations)
        if not len(table):
            raise ValueError("an experiment result needs at least one interval")
        self._table = table
        self._rows: tuple[IntervalObservation, ...] | None = None
        self.workload_name = workload_name
        self.manager_name = manager_name
        self.target_latency_ms = target_latency_ms
        self.interval_s = interval_s

    # ------------------------------------------------------------------
    # pickling (versioned cache payload)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "storage": STORAGE_VERSION,
            "table": self._table,
            "workload_name": self.workload_name,
            "manager_name": self.manager_name,
            "target_latency_ms": self.target_latency_ms,
            "interval_s": self.interval_s,
        }

    def __setstate__(self, state) -> None:
        if not isinstance(state, dict) or state.get("storage") != STORAGE_VERSION:
            raise ValueError(
                "unsupported ExperimentResult payload (legacy or unknown "
                f"storage format; this build reads version {STORAGE_VERSION})"
            )
        self._table = state["table"]
        self._rows = None
        self.workload_name = state["workload_name"]
        self.manager_name = state["manager_name"]
        self.target_latency_ms = state["target_latency_ms"]
        self.interval_s = state["interval_s"]

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[IntervalObservation]:
        return iter(self.observations)

    def __getitem__(self, index: int) -> IntervalObservation:
        return self.observations[index]

    @property
    def table(self) -> ObservationTable:
        """The columnar backing store."""
        return self._table

    @property
    def observations(self) -> tuple[IntervalObservation, ...]:
        """All interval observations, in order (materialized lazily)."""
        if self._rows is None:
            self._rows = self._table.rows()
        return self._rows

    # ------------------------------------------------------------------
    # column accessors (zero-copy, read-only)
    # ------------------------------------------------------------------

    def _column(self, attr: str) -> np.ndarray:
        return self._table.column(attr)

    @property
    def times_s(self) -> np.ndarray:
        """Interval start times, seconds."""
        return self._column("t_start_s")

    @property
    def loads(self) -> np.ndarray:
        """Offered load fractions."""
        return self._column("offered_load")

    @property
    def tails_ms(self) -> np.ndarray:
        """Measured tail latency per interval, ms."""
        return self._column("tail_latency_ms")

    @property
    def powers_w(self) -> np.ndarray:
        """System power per interval, watts."""
        return self._column("power_w")

    @property
    def arrival_rps(self) -> np.ndarray:
        """Achieved request throughput per interval."""
        return self._column("arrival_rps")

    @property
    def config_labels(self) -> tuple[str, ...]:
        """Chosen configuration label per interval."""
        return self._table.labels()

    # ------------------------------------------------------------------
    # summary metrics (paper Section 4.2.4)
    # ------------------------------------------------------------------

    def qos_guarantee(self) -> float:
        """Fraction of intervals whose tail met the target."""
        return qos_guarantee(self.tails_ms, self.target_latency_ms)

    def qos_tardiness(self) -> float:
        """Mean ``QoS_curr/QoS_target`` over violating intervals."""
        return qos_tardiness(self.tails_ms, self.target_latency_ms)

    def total_energy_j(self) -> float:
        """Total system energy over the run, joules.

        Summed sequentially (not ``ndarray.sum``'s pairwise tree) so the
        value is bit-identical to the dataclass-era ``sum()`` loop.
        """
        return float(sum(self._column("energy_j").tolist()))

    def mean_power_w(self) -> float:
        """Mean system power over the run, watts."""
        return float(np.mean(self.powers_w))

    def energy_reduction_vs(self, baseline: "ExperimentResult") -> float:
        """Fractional energy saving relative to a baseline run."""
        base = baseline.total_energy_j()
        if base <= 0:
            raise ValueError("baseline consumed no energy")
        return 1.0 - self.total_energy_j() / base

    def migration_events(self) -> int:
        """Number of intervals whose reconfiguration moved cores."""
        return int(np.count_nonzero(self._column("migration_event")))

    def migrated_cores(self) -> int:
        """Total cores moved in or out of the LC set over the run."""
        return int(self._column("migrated_cores").sum())

    def batch_total_instructions(self) -> float:
        """Instructions retired by batch jobs over the run (sequential
        sum -- see :meth:`total_energy_j`)."""
        return float(sum(self._column("batch_instructions").tolist()))

    def batch_mean_ips(self) -> float:
        """Mean aggregate batch IPS over the run."""
        duration = len(self) * self.interval_s
        return self.batch_total_instructions() / duration

    def mean_utilization(self) -> float:
        """Mean queue utilization over the run (one column reduction)."""
        return float(np.mean(self._column("mean_utilization")))

    def windowed_qos_guarantee(self, window_s: float = 100.0) -> np.ndarray:
        """QoS guarantee per non-overlapping time window (Figure 9)."""
        per_window = max(int(window_s / self.interval_s), 1)
        tails = self.tails_ms
        met = tails <= self.target_latency_ms
        n_windows = len(met) // per_window
        if n_windows == 0:
            return np.array([float(np.mean(met))])
        trimmed = met[: n_windows * per_window]
        return trimmed.reshape(n_windows, per_window).mean(axis=1)

    def slice(self, start_s: float, end_s: float | None = None) -> "ExperimentResult":
        """A sub-result covering ``[start_s, end_s)`` (e.g. post-learning)."""
        end_s = end_s if end_s is not None else float("inf")
        times = self.times_s
        selected = np.flatnonzero((times >= start_s) & (times < end_s))
        if not len(selected):
            raise ValueError("an experiment result needs at least one interval")
        return ExperimentResult(
            self._table.take(selected),
            workload_name=self.workload_name,
            manager_name=self.manager_name,
            target_latency_ms=self.target_latency_ms,
            interval_s=self.interval_s,
        )
