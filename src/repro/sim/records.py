"""Observation records produced by the interval co-simulator.

One :class:`IntervalObservation` is what the paper's QoS Monitor sees at
the end of each monitoring interval: application-level load and tail
latency, system power from the energy registers, and batch IPS from the
performance counters.  :class:`ExperimentResult` collects a run's
observations and exposes the summary metrics the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.sim.latency import qos_guarantee, qos_tardiness

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.policies.base import Decision


@dataclass(frozen=True)
class IntervalObservation:
    """Everything measurable about one monitoring interval.

    The fields mirror the paper's QoS Monitor (Section 3.2): application
    metrics come from the workload's logfile interface, power from the
    energy meters, and ``big_ips``/``small_ips`` from perf counters over
    the batch cores (and may therefore be garbage if the Juno perf bug
    fires -- see :mod:`repro.hardware.counters`).
    """

    index: int
    t_start_s: float
    duration_s: float
    offered_load: float
    measured_load: float
    arrival_rps: float
    n_requests: int
    tail_latency_ms: float
    mean_latency_ms: float
    qos_met: bool
    tardiness: float
    power_w: float
    energy_j: float
    big_ips: float
    small_ips: float
    counter_garbage: bool
    decision: "Decision"
    config_label: str
    big_freq_ghz: float
    small_freq_ghz: float
    migrated_cores: int
    migration_event: bool
    mean_utilization: float
    backlog_s: float
    shed_work_s: float
    batch_instructions: float


class ExperimentResult:
    """A run's observations plus the paper's summary metrics."""

    def __init__(
        self,
        observations: Sequence[IntervalObservation],
        *,
        workload_name: str,
        manager_name: str,
        target_latency_ms: float,
        interval_s: float,
    ):
        if not observations:
            raise ValueError("an experiment result needs at least one interval")
        self._observations = tuple(observations)
        self.workload_name = workload_name
        self.manager_name = manager_name
        self.target_latency_ms = target_latency_ms
        self.interval_s = interval_s

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[IntervalObservation]:
        return iter(self._observations)

    def __getitem__(self, index: int) -> IntervalObservation:
        return self._observations[index]

    @property
    def observations(self) -> tuple[IntervalObservation, ...]:
        """All interval observations, in order."""
        return self._observations

    # ------------------------------------------------------------------
    # column accessors
    # ------------------------------------------------------------------

    def _column(self, attr: str) -> np.ndarray:
        return np.array([getattr(o, attr) for o in self._observations], dtype=float)

    @property
    def times_s(self) -> np.ndarray:
        """Interval start times, seconds."""
        return self._column("t_start_s")

    @property
    def loads(self) -> np.ndarray:
        """Offered load fractions."""
        return self._column("offered_load")

    @property
    def tails_ms(self) -> np.ndarray:
        """Measured tail latency per interval, ms."""
        return self._column("tail_latency_ms")

    @property
    def powers_w(self) -> np.ndarray:
        """System power per interval, watts."""
        return self._column("power_w")

    @property
    def arrival_rps(self) -> np.ndarray:
        """Achieved request throughput per interval."""
        return self._column("arrival_rps")

    @property
    def config_labels(self) -> tuple[str, ...]:
        """Chosen configuration label per interval."""
        return tuple(o.config_label for o in self._observations)

    # ------------------------------------------------------------------
    # summary metrics (paper Section 4.2.4)
    # ------------------------------------------------------------------

    def qos_guarantee(self) -> float:
        """Fraction of intervals whose tail met the target."""
        return qos_guarantee(self.tails_ms, self.target_latency_ms)

    def qos_tardiness(self) -> float:
        """Mean ``QoS_curr/QoS_target`` over violating intervals."""
        return qos_tardiness(self.tails_ms, self.target_latency_ms)

    def total_energy_j(self) -> float:
        """Total system energy over the run, joules."""
        return float(sum(o.energy_j for o in self._observations))

    def mean_power_w(self) -> float:
        """Mean system power over the run, watts."""
        return float(np.mean(self.powers_w))

    def energy_reduction_vs(self, baseline: "ExperimentResult") -> float:
        """Fractional energy saving relative to a baseline run."""
        base = baseline.total_energy_j()
        if base <= 0:
            raise ValueError("baseline consumed no energy")
        return 1.0 - self.total_energy_j() / base

    def migration_events(self) -> int:
        """Number of intervals whose reconfiguration moved cores."""
        return sum(1 for o in self._observations if o.migration_event)

    def migrated_cores(self) -> int:
        """Total cores moved in or out of the LC set over the run."""
        return sum(o.migrated_cores for o in self._observations)

    def batch_total_instructions(self) -> float:
        """Instructions retired by batch jobs over the run."""
        return float(sum(o.batch_instructions for o in self._observations))

    def batch_mean_ips(self) -> float:
        """Mean aggregate batch IPS over the run."""
        duration = len(self) * self.interval_s
        return self.batch_total_instructions() / duration

    def windowed_qos_guarantee(self, window_s: float = 100.0) -> np.ndarray:
        """QoS guarantee per non-overlapping time window (Figure 9)."""
        per_window = max(int(window_s / self.interval_s), 1)
        tails = self.tails_ms
        met = tails <= self.target_latency_ms
        n_windows = len(met) // per_window
        if n_windows == 0:
            return np.array([float(np.mean(met))])
        trimmed = met[: n_windows * per_window]
        return trimmed.reshape(n_windows, per_window).mean(axis=1)

    def slice(self, start_s: float, end_s: float | None = None) -> "ExperimentResult":
        """A sub-result covering ``[start_s, end_s)`` (e.g. post-learning)."""
        end_s = end_s if end_s is not None else float("inf")
        selected = [
            o for o in self._observations if start_s <= o.t_start_s < end_s
        ]
        return ExperimentResult(
            selected,
            workload_name=self.workload_name,
            manager_name=self.manager_name,
            target_latency_ms=self.target_latency_ms,
            interval_s=self.interval_s,
        )
