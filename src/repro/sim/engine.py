"""Interval co-simulator: trace -> manager -> platform -> observations.

This is the harness that plays the role of the paper's physical testbed.
Each monitoring interval (1 s by default, Section 3.6) it:

1. asks the task manager for a :class:`~repro.policies.base.Decision`;
2. applies it -- sets the per-cluster DVFS, pins the latency-critical
   workload (charging a migration penalty if the core set changed), and
   spawns one batch job per leftover core when collocation is on;
3. runs the workload's queueing replica for the interval under the
   resulting per-core speeds (including contention slowdowns);
4. integrates power over the interval and samples the perf counters
   (through the Juno-bug model);
5. hands the manager an :class:`~repro.sim.records.IntervalObservation`.

Everything stochastic draws from a single seeded generator, so a run is a
pure function of ``(platform, workload, trace, manager, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.affinity import AffinityManager
from repro.hardware.counters import PerfCounters
from repro.hardware.cores import CoreKind
from repro.hardware.dvfs import DVFSController
from repro.hardware.power import EnergyMeter, PowerModel
from repro.hardware.soc import KernelConfig, Platform
from repro.loadgen.traces import LoadTrace
from repro.policies.base import ManagerContext, TaskManager
from repro.sim.contention import ContentionModel, aggregate_pressure
from repro.sim.latency import summarize_latencies
from repro.sim.queueing import DispatchQueue
from repro.sim.records import ExperimentResult, IntervalObservation
from repro.workloads.base import LatencyCriticalWorkload, lc_server_speeds
from repro.workloads.batch import BatchJobSet

#: Cost of moving the latency-critical workload between cores: thread
#: migration plus cold L2, order of tens of milliseconds (Section 2 cites
#: Rubik: core transitions are far more costly than DVFS changes).
DEFAULT_MIGRATION_PENALTY_S = 0.060

#: Per-server backlog bound; clients time out and shed beyond this.
DEFAULT_MAX_BACKLOG_S = 4.0


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the co-simulator, with the paper's defaults."""

    interval_s: float = 1.0
    migration_penalty_s: float = DEFAULT_MIGRATION_PENALTY_S
    max_backlog_s: float = DEFAULT_MAX_BACKLOG_S
    balance_exponent: float = 0.55
    juno_perf_bug: bool = True

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.migration_penalty_s < 0:
            raise ValueError("migration_penalty_s must be non-negative")
        if self.max_backlog_s <= 0:
            raise ValueError("max_backlog_s must be positive")


class IntervalSimulator:
    """Co-simulates one latency-critical workload, batch jobs and a manager."""

    def __init__(
        self,
        platform: Platform,
        workload: LatencyCriticalWorkload,
        trace: LoadTrace,
        manager: TaskManager,
        *,
        batch_jobs: BatchJobSet | None = None,
        contention: ContentionModel | None = None,
        kernel: KernelConfig | None = None,
        engine_config: EngineConfig | None = None,
        seed: int = 0,
    ):
        self.platform = platform
        self.workload = workload
        self.trace = trace
        self.manager = manager
        self.batch_jobs = batch_jobs
        self.contention = contention or ContentionModel()
        # Hipster's deployment disables CPUidle to dodge the Juno perf bug
        # (Section 3.7); that is the sensible default here too.
        self.kernel = kernel or KernelConfig(cpuidle_enabled=False)
        self.config = engine_config or EngineConfig()

        self._rng = np.random.default_rng(seed)
        scale = workload.sim_scale
        # The migration cost is modelled as a latency adder on requests
        # arriving during the (wall-clock) migration window -- see
        # _migration_latency_extra_ms -- so the queue itself only needs the
        # backlog bound (dilated, like every queue-internal delay).
        self._queue = DispatchQueue(
            rng=self._rng,
            balance_exponent=self.config.balance_exponent,
            migration_penalty_s=0.0,
            max_backlog_s=self.config.max_backlog_s * scale,
            burstiness=workload.burstiness,
        )
        self._affinity = AffinityManager(platform)
        self._dvfs = DVFSController(platform.clusters)
        self._power = PowerModel(platform, self.kernel)
        self._counters = PerfCounters(
            platform, self.kernel, juno_perf_bug=self.config.juno_perf_bug
        )
        self._meter = EnergyMeter()
        self._started = False

    @property
    def energy_meter(self) -> EnergyMeter:
        """The run's cumulative energy registers."""
        return self._meter

    @property
    def dvfs(self) -> DVFSController:
        """The run's DVFS controller (transition statistics live here)."""
        return self._dvfs

    @property
    def affinity(self) -> AffinityManager:
        """The run's affinity manager (migration statistics live here)."""
        return self._affinity

    def run(self, n_intervals: int | None = None) -> ExperimentResult:
        """Run the experiment and return its observations."""
        if self._started:
            raise RuntimeError("an IntervalSimulator instance runs exactly once")
        self._started = True

        total = n_intervals or self.trace.n_intervals(self.config.interval_s)
        if total <= 0:
            raise ValueError("the trace is shorter than one interval")
        self.manager.start(
            ManagerContext(
                platform=self.platform,
                workload=self.workload,
                interval_s=self.config.interval_s,
                rng=np.random.default_rng(self._rng.integers(2**63)),
                batch_present=self.batch_jobs is not None,
            )
        )

        observations = [self._run_interval(i) for i in range(total)]
        return ExperimentResult(
            observations,
            workload_name=self.workload.name,
            manager_name=self.manager.name,
            target_latency_ms=self.workload.target_latency_ms,
            interval_s=self.config.interval_s,
        )

    # ------------------------------------------------------------------
    # one monitoring interval
    # ------------------------------------------------------------------

    def _run_interval(self, index: int) -> IntervalObservation:
        dt = self.config.interval_s
        t0 = index * dt
        t1 = t0 + dt
        load = self.trace.load_at(t0 + dt / 2.0)

        decision = self.manager.decide()
        config = decision.config
        self._dvfs.set_frequency("big", decision.big_freq_ghz)
        self._dvfs.set_frequency("small", decision.small_freq_ghz)

        n_free = self.platform.n_cores - config.total_cores
        collocating = decision.run_batch and self.batch_jobs is not None
        placement = self._affinity.apply(
            config, n_batch_jobs=n_free if collocating else 0
        )

        # Contention pressure from batch neighbours.
        mem_by_core = {
            cid: self.batch_jobs.program_for_job(job).mem_intensity
            for cid, job in placement.batch_assignment.items()
        }
        pressure = aggregate_pressure(mem_by_core, self.platform.big.core_ids)
        slow_big = self.contention.lc_slowdown(
            CoreKind.BIG, pressure, sensitivity=self.workload.contention_sensitivity
        )
        slow_small = self.contention.lc_slowdown(
            CoreKind.SMALL, pressure, sensitivity=self.workload.contention_sensitivity
        )

        # Latency-critical queueing replica.
        speeds = lc_server_speeds(
            self.workload,
            self.platform,
            config,
            big_slowdown=slow_big,
            small_slowdown=slow_small,
        )
        self._queue.reconfigure(
            speeds, now=t0, migration=placement.migration_event
        )
        stats = self._queue.run_interval(
            t0, t1, self.workload.sim_arrival_rate(load), self.workload.sample_demands
        )
        latencies_ms = self.workload.reported_latency_ms(stats.latencies_s)
        latencies_ms = latencies_ms + self._migration_latency_extra_ms(
            placement, stats, t0, len(speeds)
        )
        sample = summarize_latencies(
            latencies_ms,
            self.workload.qos_percentile,
            idle_latency_ms=self.workload.idle_latency_ms,
        )

        # Batch execution and perf counters.
        true_ips = self._true_ips(placement, stats, decision)
        counter_sample = self._counters.read(true_ips, self._rng)
        big_batch = sum(
            counter_sample[cid]
            for cid in placement.batch_assignment
            if cid in self.platform.big.core_ids
        )
        small_batch = sum(
            counter_sample[cid]
            for cid in placement.batch_assignment
            if cid in self.platform.small.core_ids
        )
        batch_instructions = (
            sum(true_ips[cid] for cid in placement.batch_assignment) * dt
        )
        garbage = counter_sample != {
            cid: true_ips.get(cid, 0.0) for cid in self.platform.core_ids
        }

        # Power and energy.
        utilizations = self._utilizations(placement, stats)
        breakdown = self._power.breakdown(
            decision.big_freq_ghz, decision.small_freq_ghz, utilizations
        )
        self._meter.record(breakdown, dt)

        arrivals_real = stats.arrivals * self.workload.sim_scale
        arrival_rps = arrivals_real / dt
        tail = sample.tail_latency_ms
        observation = IntervalObservation(
            index=index,
            t_start_s=t0,
            duration_s=dt,
            offered_load=load,
            measured_load=min(arrival_rps / self.workload.max_load_rps, 1.0),
            arrival_rps=arrival_rps,
            n_requests=int(arrivals_real),
            tail_latency_ms=tail,
            mean_latency_ms=sample.mean_latency_ms,
            qos_met=self.workload.qos_met(tail),
            tardiness=self.workload.tardiness(tail),
            power_w=breakdown.total_w,
            energy_j=breakdown.total_w * dt,
            big_ips=big_batch,
            small_ips=small_batch,
            counter_garbage=garbage,
            decision=decision,
            config_label=config.label,
            big_freq_ghz=decision.big_freq_ghz,
            small_freq_ghz=decision.small_freq_ghz,
            migrated_cores=placement.migrated_cores,
            migration_event=placement.migration_event,
            mean_utilization=stats.mean_utilization,
            backlog_s=self._queue.backlog_s(t1) / self.workload.sim_scale,
            shed_work_s=stats.shed_work_s / self.workload.sim_scale,
            batch_instructions=batch_instructions,
        )
        self.manager.observe(observation)
        return observation

    def _migration_latency_extra_ms(
        self, placement, stats, t0: float, n_servers: int
    ) -> np.ndarray:
        """Latency added by a core migration (wall-clock, not dilated).

        Requests arriving while threads migrate and caches refill wait out
        the remainder of the migration window.  Only threads on *changed*
        cores stall, so the adder hits a request with probability equal to
        the fraction of cores that moved: single-core ladder steps are
        nearly free while a cluster switch stalls the whole service --
        which is why Octopus-Man's big<->small oscillations are so costly
        (paper Sections 2 and 4.2.1).
        """
        if stats.arrivals == 0:
            return np.zeros(0)
        extra = np.zeros(stats.arrivals)
        if not placement.migration_event:
            return extra
        penalty = self.config.migration_penalty_s
        if penalty <= 0:
            return extra
        fraction = min(placement.migrated_cores / max(n_servers, 1), 1.0)
        in_window = stats.arrival_times_s < t0 + penalty
        stalled = in_window & (self._rng.random(stats.arrivals) < fraction)
        remaining_s = t0 + penalty - stats.arrival_times_s[stalled]
        extra[stalled] = remaining_s * 1e3
        return extra

    def _true_ips(self, placement, stats, decision) -> dict[str, float]:
        """Ground-truth per-core IPS: batch programs plus LC threads."""
        true_ips: dict[str, float] = {}
        mem_by_core = {
            cid: self.batch_jobs.program_for_job(job).mem_intensity
            for cid, job in placement.batch_assignment.items()
        }
        pressure = aggregate_pressure(mem_by_core, self.platform.big.core_ids)
        for cid, job in placement.batch_assignment.items():
            program = self.batch_jobs.program_for_job(job)
            cluster = self.platform.cluster_of(cid)
            freq = (
                decision.big_freq_ghz
                if cluster is self.platform.big
                else decision.small_freq_ghz
            )
            lc_pressure = (
                self.workload.mem_intensity
                if decision.config.uses_cluster(cluster.kind)
                else 0.0
            )
            factor = self.contention.batch_throughput_factor(
                cluster.kind,
                program.mem_intensity,
                pressure,
                lc_pressure=lc_pressure,
            )
            true_ips[cid] = program.ips(
                cluster.core_type, freq, throughput_factor=factor
            )
        used = placement.lc_cores[: self.workload.n_threads]
        for core_id, util in zip(used, stats.utilizations):
            cluster = self.platform.cluster_of(core_id)
            freq = (
                decision.big_freq_ghz
                if cluster is self.platform.big
                else decision.small_freq_ghz
            )
            true_ips[core_id] = (
                self.workload.lc_ipc_fraction
                * cluster.core_type.microbench_ips(freq)
                * util
            )
        return true_ips

    def _utilizations(self, placement, stats) -> dict[str, float]:
        """Per-core utilization for the power model."""
        utils: dict[str, float] = {}
        used = placement.lc_cores[: self.workload.n_threads]
        for core_id, util in zip(used, stats.utilizations):
            utils[core_id] = float(util)
        for core_id in placement.batch_assignment:
            utils[core_id] = 1.0
        return utils


def run_experiment(
    platform: Platform,
    workload: LatencyCriticalWorkload,
    trace: LoadTrace,
    manager: TaskManager,
    *,
    batch_jobs: BatchJobSet | None = None,
    contention: ContentionModel | None = None,
    kernel: KernelConfig | None = None,
    engine_config: EngineConfig | None = None,
    seed: int = 0,
    n_intervals: int | None = None,
) -> ExperimentResult:
    """One-call wrapper: build an :class:`IntervalSimulator` and run it."""
    simulator = IntervalSimulator(
        platform,
        workload,
        trace,
        manager,
        batch_jobs=batch_jobs,
        contention=contention,
        kernel=kernel,
        engine_config=engine_config,
        seed=seed,
    )
    return simulator.run(n_intervals)
