"""Interval co-simulator: trace -> manager -> platform -> observations.

This is the harness that plays the role of the paper's physical testbed.
Each monitoring interval (1 s by default, Section 3.6) it:

1. asks the task manager for a :class:`~repro.policies.base.Decision`;
2. applies it -- sets the per-cluster DVFS, pins the latency-critical
   workload (charging a migration penalty if the core set changed), and
   spawns one batch job per leftover core when collocation is on;
3. runs the workload's queueing replica for the interval under the
   resulting per-core speeds (including contention slowdowns);
4. integrates power over the interval and samples the perf counters
   (through the Juno-bug model);
5. hands the manager a row view of the interval's observation record.

Everything stochastic draws from a single seeded generator, so a run is a
pure function of ``(platform, workload, trace, manager, seed)``.

Hot-path layout
---------------
Per-core state lives in dense ``np.ndarray`` buffers indexed by the
platform's stable :attr:`~repro.hardware.soc.Platform.core_index` rather
than in string-keyed dicts, and everything derivable from a
:class:`~repro.policies.base.Decision` alone -- placement-driven batch
IPS and contention pressure, contention-adjusted queue speeds, power-law
coefficients, microbenchmark IPS at the decision's operating points -- is
computed once per distinct decision (:class:`_DecisionState`) and reused.
When a manager repeats its previous decision (the common case for static
and converged table-driven policies) the engine skips the affinity
re-apply, pressure recomputation and queue reconfiguration outright.
The optimization is implementation-only: the rng stream and every
observation are bit-identical to the reference implementation preserved
in :mod:`repro.sim.engine_reference`, which the equivalence tests
enforce; ``KERNEL_VERSION`` therefore did not change.

On top of the per-interval fast path sits the *decision-epoch* fast
path: when the manager can prove its decision stays fixed for a run of
upcoming intervals (``stable_horizon``/``epoch_continue``, see
:class:`~repro.policies.base.TaskManager`), the engine draws each
interval's randomness in stream order but defers all queue, latency,
power and bookkeeping arithmetic to one batched pass over the whole
run (:meth:`~repro.sim.queueing.DispatchQueue.run_epoch_drawn`, bulk
:meth:`~repro.sim.records.ObservationTable.extend`).  This too is
implementation-only -- the epoch differential tests pin byte-identity
against the scalar path -- and falls back to the scalar loop at every
decision boundary, migration, armed perf-counter bug, or wide server
set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.affinity import AffinityManager, Placement
from repro.hardware.counters import PerfCounters
from repro.hardware.cores import CoreKind
from repro.hardware.dvfs import DVFSController
from repro.hardware.power import (
    ClusterPowerCoefficients,
    EnergyMeter,
    PowerBreakdown,
    PowerModel,
)
from repro.hardware.soc import KernelConfig, Platform
from repro.loadgen.traces import LoadTrace
from repro.policies.base import Decision, ManagerContext, TaskManager
from repro.sim.contention import ContentionModel, aggregate_pressure_indexed
from repro.sim.latency import linear_quantile
from repro.sim.queueing import (
    _SCALAR_SERVER_LIMIT,
    DispatchQueue,
    DrawnInterval,
    IntervalQueueStats,
)
from repro.sim.records import ExperimentResult, ObservationTable
from repro.workloads.base import LatencyCriticalWorkload, lc_server_speeds_array
from repro.workloads.batch import BatchJobSet

#: Cost of moving the latency-critical workload between cores: thread
#: migration plus cold L2, order of tens of milliseconds (Section 2 cites
#: Rubik: core transitions are far more costly than DVFS changes).
DEFAULT_MIGRATION_PENALTY_S = 0.060

#: Per-server backlog bound; clients time out and shed beyond this.
DEFAULT_MAX_BACKLOG_S = 4.0

#: Epoch length cap: bounds the padded per-server matrices of the epoch
#: queue kernel (working-set control).  The request budget below is the
#: real memory bound (the matrices hold one row per interval, one
#: column per request); the block cap only binds at trough rates, where
#: rows are narrow, so it can sit high enough that per-epoch fixed
#: costs amortize out over quiet stretches.
_EPOCH_BLOCK = 1024

#: Request cap per epoch: once the drawn intervals carry this many
#: requests the epoch commits and a fresh one starts.  Keeps the epoch
#: kernel's padded per-server matrices cache-resident at high arrival
#: rates -- the regime where the scalar kernel's exact-length arrays fit
#: in L1 and an unbounded epoch's multi-megabyte matrices would turn the
#: batching win into a memory-bandwidth loss.
_EPOCH_REQUEST_BUDGET = 8192

#: Minimum intervals an epoch must be able to amortize over: when the
#: expected per-interval request count is so high that the request
#: budget would truncate the epoch below this, the per-epoch setup
#: (padding, scans, asarray round-trips) cannot pay for itself and the
#: interval runs scalar instead.  Purely a routing heuristic -- both
#: paths produce byte-identical observations.
_EPOCH_MIN_INTERVALS = 16

#: Below this expected per-interval request count an interval is
#: "light": the batched kernel beats the scalar one even for runs of a
#: couple of intervals, so any horizon >= 2 batches.  Heavier intervals
#: only approach break-even on long runs, so they additionally demand a
#: provable horizon of ``_EPOCH_MIN_INTERVALS`` -- and when an epoch
#: still ends early (a measured-load bucket flap the offered-load
#: horizon could not see), epoch attempts pause for a stretch of scalar
#: intervals rather than paying the setup again at the same boundary.
_EPOCH_LIGHT_REQUESTS = 64
_EPOCH_COOLDOWN_INTERVALS = 32


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the co-simulator, with the paper's defaults."""

    interval_s: float = 1.0
    migration_penalty_s: float = DEFAULT_MIGRATION_PENALTY_S
    max_backlog_s: float = DEFAULT_MAX_BACKLOG_S
    balance_exponent: float = 0.55
    juno_perf_bug: bool = True
    #: Batch decision-stable interval runs through the epoch kernel.
    #: Observationally invisible (the epoch differential tests pin
    #: byte-identity); exposed so tests and benchmarks can force the
    #: scalar path.
    epoch_fast_path: bool = True

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.migration_penalty_s < 0:
            raise ValueError("migration_penalty_s must be non-negative")
        if self.max_backlog_s <= 0:
            raise ValueError("max_backlog_s must be positive")


class _DecisionState:
    """Every per-interval quantity that depends on the decision alone.

    Built once per distinct :class:`~repro.policies.base.Decision` and
    cached for the rest of the run; the interval loop then only touches
    what genuinely varies interval to interval (queue randomness and the
    resulting utilizations).  All floating-point values are produced by
    the same expressions, in the same order, as the reference engine, so
    reusing them is observationally invisible.
    """

    __slots__ = (
        "speeds",
        "n_servers",
        "config_label",
        "lc_used_index",
        "lc_ips_coeff",
        "lc_index_arr",
        "lc_coeff_arr",
        "batch_big_index",
        "batch_small_index",
        "big_batch_sum",
        "small_batch_sum",
        "batch_ips_sum",
        "true_ips_base",
        "utils_base",
        "big_power",
        "small_power",
    )

    speeds: np.ndarray
    n_servers: int
    lc_used_index: list[int]
    lc_ips_coeff: list[float]
    lc_index_arr: np.ndarray
    lc_coeff_arr: np.ndarray
    batch_big_index: list[int]
    batch_small_index: list[int]
    big_batch_sum: float
    small_batch_sum: float
    batch_ips_sum: float
    true_ips_base: np.ndarray
    utils_base: np.ndarray


class IntervalSimulator:
    """Co-simulates one latency-critical workload, batch jobs and a manager."""

    def __init__(
        self,
        platform: Platform,
        workload: LatencyCriticalWorkload,
        trace: LoadTrace,
        manager: TaskManager,
        *,
        batch_jobs: BatchJobSet | None = None,
        contention: ContentionModel | None = None,
        kernel: KernelConfig | None = None,
        engine_config: EngineConfig | None = None,
        seed: int = 0,
    ):
        self.platform = platform
        self.workload = workload
        self.trace = trace
        self.manager = manager
        self.batch_jobs = batch_jobs
        self.contention = contention or ContentionModel()
        # Hipster's deployment disables CPUidle to dodge the Juno perf bug
        # (Section 3.7); that is the sensible default here too.
        self.kernel = kernel or KernelConfig(cpuidle_enabled=False)
        self.config = engine_config or EngineConfig()

        self._rng = np.random.default_rng(seed)
        scale = workload.sim_scale
        # The migration cost is modelled as a latency adder on requests
        # arriving during the (wall-clock) migration window -- see
        # _migration_latency_extra_ms -- so the queue itself only needs the
        # backlog bound (dilated, like every queue-internal delay).
        self._queue = DispatchQueue(
            rng=self._rng,
            balance_exponent=self.config.balance_exponent,
            migration_penalty_s=0.0,
            max_backlog_s=self.config.max_backlog_s * scale,
            burstiness=workload.burstiness,
        )
        self._affinity = AffinityManager(platform)
        self._dvfs = DVFSController(platform.clusters)
        self._power = PowerModel(platform, self.kernel)
        self._counters = PerfCounters(
            platform, self.kernel, juno_perf_bug=self.config.juno_perf_bug
        )
        self._meter = EnergyMeter()
        self._started = False

        # Hot-path invariants and caches.
        self._decision_states: dict[Decision, _DecisionState] = {}
        self._microbench_ips_memo: dict[tuple[str, float], float] = {}
        self._last_decision: Decision | None = None
        self._state: _DecisionState | None = None
        self._power_gate = self.kernel.cpuidle_enabled
        self._counters_armed = self._counters.bug_armed
        self._n_big = platform.big.n_cores
        self._rest_of_system_w = platform.rest_of_system_w
        # Per-run invariants of the workload, bound once (attribute and
        # bound-method creation is measurable at ~100k intervals/s).
        self._demand_sampler = workload.sample_demands
        self._max_load_rps = workload.max_load_rps
        self._sim_scale = workload.sim_scale
        self._qos_percentile = workload.qos_percentile  # validated by workload
        self._idle_latency_ms = workload.idle_latency_ms
        self._target_ms = workload.target_latency_ms  # qos_met / tardiness

        # Decision-epoch fast path: trace lookahead (filled by run()) and
        # engagement counters (read by tests and the benchmark harness).
        self._loads: np.ndarray | None = None
        self.epochs_run = 0
        self.epoch_intervals = 0

    @property
    def energy_meter(self) -> EnergyMeter:
        """The run's cumulative energy registers."""
        return self._meter

    @property
    def dvfs(self) -> DVFSController:
        """The run's DVFS controller (transition statistics live here)."""
        return self._dvfs

    @property
    def affinity(self) -> AffinityManager:
        """The run's affinity manager (migration statistics live here)."""
        return self._affinity

    def run(self, n_intervals: int | None = None) -> ExperimentResult:
        """Run the experiment and return its observations."""
        if self._started:
            raise RuntimeError("an IntervalSimulator instance runs exactly once")
        self._started = True

        total = n_intervals or self.trace.n_intervals(self.config.interval_s)
        if total <= 0:
            raise ValueError("the trace is shorter than one interval")
        self.manager.start(
            ManagerContext(
                platform=self.platform,
                workload=self.workload,
                interval_s=self.config.interval_s,
                rng=np.random.default_rng(self._rng.integers(2**63)),
                batch_present=self.batch_jobs is not None,
            )
        )

        # The whole run's interval-midpoint offered loads, computed once.
        # ``i * dt + dt / 2.0`` per element is bitwise the scalar
        # expression (arange holds exact integers), and load_at_many is
        # pinned bit-identical to per-call load_at, so both paths read
        # the identical floats.
        dt = self.config.interval_s
        mids = np.arange(total, dtype=np.float64) * dt + dt / 2.0
        self._loads = self.trace.load_at_many(mids)

        manager = self.manager
        manager_type = type(manager)
        # The epoch fast path needs the manager to opt into *both* sides
        # of the contract, and the perf-counter bug consumes rng draws
        # per interval when armed, which only the scalar path replays.
        epoch_capable = (
            self.config.epoch_fast_path
            and not self._counters_armed
            and manager_type.stable_horizon is not TaskManager.stable_horizon
            and manager_type.epoch_continue is not TaskManager.epoch_continue
        )
        observe_overridden = manager_type.observe is not TaskManager.observe
        # Expected sim requests per interval at load 1.0 (the per-load
        # factor of the arrival rate the kernel sees).
        epoch_rate_scale = self._max_load_rps / self._sim_scale * dt
        # Scalar intervals left before heavy-rate epoch attempts resume
        # after one broke early (see _EPOCH_COOLDOWN_INTERVALS).
        epoch_cooldown = 0

        # Struct-of-arrays result store: one preallocated typed column
        # per observation field, appended in place each interval -- no
        # per-interval dataclass construction on the hot path.
        table = ObservationTable(total)
        i = 0
        while i < total:
            decision = manager.decide()
            last = self._last_decision
            repeated = decision is last or decision == last
            if repeated:
                # Decision-unchanged fast path: placement, pressure,
                # speeds and queue configuration are all exactly what
                # they already are; re-applying them (as the reference
                # engine does) is a chain of guaranteed no-ops.
                state = self._state
                migrated_cores = 0
                migration_event = False
            else:
                state, migrated_cores, migration_event = self._apply_decision(
                    decision, i * dt
                )
            # An epoch starts only on an *observed* repeat: every decision
            # boundary runs one scalar interval first.  Cheap (one interval
            # per boundary) and it keeps subclassed managers whose decide()
            # mutates state per call off the batched path even when they
            # inherit an epoch-capable contract.
            if (
                epoch_capable
                and repeated
                and state.n_servers < _SCALAR_SERVER_LIMIT
                and i + 1 < total
            ):
                expected_requests = float(self._loads[i]) * epoch_rate_scale
                heavy = expected_requests > _EPOCH_LIGHT_REQUESTS
                # Light intervals batch profitably even in runs of two;
                # heavy ones only amortize the epoch setup over a long
                # provable run, and back off for a stretch when a
                # measured-load flap still cut one short.
                if (
                    expected_requests * _EPOCH_MIN_INTERVALS
                    <= _EPOCH_REQUEST_BUDGET
                    and (not heavy or epoch_cooldown == 0)
                ):
                    cap = min(_EPOCH_BLOCK, total - i)
                    horizon = min(
                        int(manager.stable_horizon(self._loads[i : i + cap])),
                        cap,
                    )
                    if horizon >= (_EPOCH_MIN_INTERVALS if heavy else 2):
                        ran = self._run_epoch(
                            i, horizon, decision, state, table, observe_overridden
                        )
                        if heavy and ran < _EPOCH_MIN_INTERVALS:
                            epoch_cooldown = _EPOCH_COOLDOWN_INTERVALS
                        i += ran
                        continue
            if epoch_cooldown:
                epoch_cooldown -= 1
            self._run_interval(
                i, table, decision, state, migrated_cores, migration_event
            )
            i += 1
        return ExperimentResult(
            table.freeze(),
            workload_name=self.workload.name,
            manager_name=self.manager.name,
            target_latency_ms=self.workload.target_latency_ms,
            interval_s=self.config.interval_s,
        )

    # ------------------------------------------------------------------
    # one monitoring interval
    # ------------------------------------------------------------------

    def _run_interval(
        self,
        index: int,
        table: ObservationTable,
        decision: Decision,
        state: _DecisionState,
        migrated_cores: int,
        migration_event: bool,
    ) -> None:
        dt = self.config.interval_s
        t0 = index * dt
        t1 = t0 + dt
        load = float(self._loads[index])
        workload = self.workload

        # Latency-critical queueing replica.  The inlined rate expression
        # is sim_arrival_rate() verbatim (same operation order).
        stats = self._queue.run_interval(
            t0,
            t1,
            load * self._max_load_rps / self._sim_scale,
            self._demand_sampler,
        )
        latencies_ms = workload.reported_latency_ms(stats.latencies_s)
        if (
            migration_event
            and stats.arrivals > 0
            and self.config.migration_penalty_s > 0
        ):
            latencies_ms = latencies_ms + self._migration_latency_extra_ms(
                migrated_cores, stats, t0, state.n_servers
            )
        # Inlined summarize_latencies (percentile validated once at start;
        # latencies_ms is always a float64 array here): same quantile and
        # mean arithmetic, minus the per-interval wrapper work.  The mean
        # runs first -- pairwise summation is order-sensitive and the
        # quantile then partitions the buffer in place.
        if latencies_ms.size == 0:
            tail = mean_latency = self._idle_latency_ms
        else:
            mean_latency = float(np.add.reduce(latencies_ms) / latencies_ms.size)
            tail = linear_quantile(
                latencies_ms, self._qos_percentile, destructive=True
            )

        # Batch execution and perf counters (dense, core-indexed).  The
        # per-server utilizations scatter into the dense core vectors by
        # fancy index; with unique targets this assigns the identical
        # floats the old element loop did.
        lc_index = state.lc_index_arr
        u_arr = np.asarray(stats.utilizations)[: lc_index.size]
        true_ips = state.true_ips_base.copy()
        true_ips[lc_index] = state.lc_coeff_arr * u_arr
        if self._counters_armed:
            counter_vec, garbage = self._counters.read_array(true_ips, self._rng)
        else:
            counter_vec, garbage = true_ips, False
        if garbage:
            big_batch = sum(float(counter_vec[i]) for i in state.batch_big_index)
            small_batch = sum(float(counter_vec[i]) for i in state.batch_small_index)
        else:
            big_batch = state.big_batch_sum
            small_batch = state.small_batch_sum
        batch_instructions = state.batch_ips_sum * dt

        # Power and energy (per-operating-point coefficients cached in
        # the decision state; arithmetic identical to PowerModel's).
        utils_vec = state.utils_base.copy()
        utils_vec[lc_index] = u_arr
        gate = self._power_gate
        n_big = self._n_big
        breakdown = PowerBreakdown(
            big_w=state.big_power.cluster_power_w(
                utils_vec[:n_big], power_gate_idle=gate
            ),
            small_w=state.small_power.cluster_power_w(
                utils_vec[n_big:], power_gate_idle=gate
            ),
            rest_w=self._rest_of_system_w,
        )
        self._meter.record(breakdown, dt)

        arrivals_real = stats.arrivals * self._sim_scale
        arrival_rps = arrivals_real / dt
        table.append(
            index=index,
            t_start_s=t0,
            duration_s=dt,
            offered_load=load,
            measured_load=min(arrival_rps / self._max_load_rps, 1.0),
            arrival_rps=arrival_rps,
            n_requests=int(arrivals_real),
            tail_latency_ms=tail,
            mean_latency_ms=mean_latency,
            qos_met=tail <= self._target_ms,
            tardiness=tail / self._target_ms,
            power_w=breakdown.total_w,
            energy_j=breakdown.total_w * dt,
            big_ips=big_batch,
            small_ips=small_batch,
            counter_garbage=garbage,
            decision=decision,
            config_label=state.config_label,
            big_freq_ghz=decision.big_freq_ghz,
            small_freq_ghz=decision.small_freq_ghz,
            migrated_cores=migrated_cores,
            migration_event=migration_event,
            mean_utilization=stats.mean_utilization,
            backlog_s=self._queue.backlog_s(t1) / self._sim_scale,
            shed_work_s=stats.shed_work_s / self._sim_scale,
            batch_instructions=batch_instructions,
        )
        self.manager.observe(table.view(index))

    # ------------------------------------------------------------------
    # the decision-epoch fast path
    # ------------------------------------------------------------------

    def _run_epoch(
        self,
        start: int,
        horizon: int,
        decision: Decision,
        state: _DecisionState,
        table: ObservationTable,
        observe_overridden: bool,
    ) -> int:
        """Evaluate a run of decision-stable intervals in one batched pass.

        Byte-identity with the scalar loop holds because randomness is
        still consumed interval by interval, in stream order, through
        :meth:`DispatchQueue.draw_interval` -- and each drawn interval is
        validated through the manager's ``epoch_continue`` *before* the
        next one is drawn, so the stream never runs ahead of a decision
        the scalar path would also have made (no rollback exists, none is
        needed).  Only the arithmetic is deferred and batched: the queue
        kernel, the latency summaries (per-interval slices of one
        concatenated buffer, reduced at their exact lengths), the power
        law (column-sequential accumulation in core order) and the
        observation rows (one bulk ``extend``).  ``observe`` is replayed
        per interval at commit, in order, for managers that define it.

        Returns the number of intervals committed (>= 1).
        """
        dt = self.config.interval_s
        manager = self.manager
        queue = self._queue
        scale = self._sim_scale
        max_rps = self._max_load_rps
        sampler = self._demand_sampler
        loads = self._loads

        drawn: list[DrawnInterval] = []
        t0s: list[float] = []
        t1s: list[float] = []
        offered: list[float] = []
        measured: list[float] = []
        arrival_rps: list[float] = []
        n_requests: list[int] = []
        budget = _EPOCH_REQUEST_BUDGET
        for j in range(horizon):
            index = start + j
            t0 = index * dt
            t1 = t0 + dt
            load = float(loads[index])
            d = queue.draw_interval(t0, t1, load * max_rps / scale, sampler)
            arrivals_real = d.n * scale
            rps = arrivals_real / dt
            drawn.append(d)
            t0s.append(t0)
            t1s.append(t1)
            offered.append(load)
            measured.append(min(rps / max_rps, 1.0))
            arrival_rps.append(rps)
            n_requests.append(int(arrivals_real))
            budget -= d.n
            if budget <= 0:
                break
            if j + 1 < horizon and not manager.epoch_continue(measured[-1]):
                break
        n_epoch = len(drawn)

        stats = queue.run_epoch_drawn(t0s, t1s, drawn)

        # Latency summaries.  reported_latency_ms is elementwise, so one
        # call over the concatenated sojourn times produces the identical
        # floats; each interval's mean/quantile then reduces its own
        # contiguous slice at its exact length (the mean first --
        # linear_quantile partitions the slice in place).
        latencies_ms = self.workload.reported_latency_ms(stats.latencies_s)
        offsets = stats.offsets
        idle_ms = self._idle_latency_ms
        percentile = self._qos_percentile
        tails = np.empty(n_epoch)
        means = np.empty(n_epoch)
        for j in range(n_epoch):
            lo = offsets[j]
            hi = offsets[j + 1]
            if hi == lo:
                tails[j] = means[j] = idle_ms
            else:
                seg = latencies_ms[lo:hi]
                means[j] = np.add.reduce(seg) / seg.size
                tails[j] = linear_quantile(seg, percentile, destructive=True)

        # Power and energy over the whole epoch.  utils rows scatter into
        # copies of the decision's dense base vector exactly as the
        # scalar path does per interval.
        lc_index = state.lc_index_arr
        utils_mat = np.broadcast_to(
            state.utils_base, (n_epoch, state.utils_base.size)
        ).copy()
        utils_mat[:, lc_index] = stats.utilizations[:, : lc_index.size]
        n_big = self._n_big
        gate = self._power_gate
        big_w = _epoch_cluster_power(state.big_power, utils_mat[:, :n_big], gate)
        small_w = _epoch_cluster_power(state.small_power, utils_mat[:, n_big:], gate)
        rest_w = self._rest_of_system_w
        power_w = (big_w + small_w) + rest_w
        self._meter.record_many(big_w, small_w, np.full(n_epoch, rest_w), dt)

        # The epoch runs only with the perf-counter bug disarmed, so the
        # counter columns are the decision-state constants.
        tardiness = tails / self._target_ms
        row = table.extend(
            n_epoch,
            decision=decision,
            config_label=state.config_label,
            index=np.arange(start, start + n_epoch),
            t_start_s=np.asarray(t0s),
            duration_s=dt,
            offered_load=np.asarray(offered),
            measured_load=np.asarray(measured),
            arrival_rps=np.asarray(arrival_rps),
            n_requests=np.asarray(n_requests),
            tail_latency_ms=tails,
            mean_latency_ms=means,
            qos_met=tails <= self._target_ms,
            tardiness=tardiness,
            power_w=power_w,
            energy_j=power_w * dt,
            big_ips=state.big_batch_sum,
            small_ips=state.small_batch_sum,
            counter_garbage=False,
            big_freq_ghz=decision.big_freq_ghz,
            small_freq_ghz=decision.small_freq_ghz,
            migrated_cores=0,
            migration_event=False,
            mean_utilization=np.asarray(stats.mean_utilization),
            backlog_s=np.asarray(stats.backlog_s) / scale,
            shed_work_s=np.asarray(stats.shed_work_s) / scale,
            batch_instructions=state.batch_ips_sum * dt,
        )
        if observe_overridden:
            for j in range(n_epoch):
                manager.observe(table.view(row + j))
        self.epochs_run += 1
        self.epoch_intervals += n_epoch
        return n_epoch

    # ------------------------------------------------------------------
    # decision application (the non-fast path)
    # ------------------------------------------------------------------

    def _apply_decision(
        self, decision: Decision, t0: float
    ) -> tuple[_DecisionState, int, bool]:
        """Apply a decision that differs from the previous interval's."""
        config = decision.config
        self._dvfs.set_frequency("big", decision.big_freq_ghz)
        self._dvfs.set_frequency("small", decision.small_freq_ghz)

        n_free = self.platform.n_cores - config.total_cores
        collocating = decision.run_batch and self.batch_jobs is not None
        placement = self._affinity.apply(
            config, n_batch_jobs=n_free if collocating else 0
        )

        state = self._decision_states.get(decision)
        if state is None:
            state = self._build_decision_state(decision, placement)
            self._decision_states[decision] = state
        self._queue.reconfigure(
            state.speeds, now=t0, migration=placement.migration_event
        )
        self._last_decision = decision
        self._state = state
        return state, placement.migrated_cores, placement.migration_event

    def _build_decision_state(
        self, decision: Decision, placement: Placement
    ) -> _DecisionState:
        """Hoist every decision-derived invariant out of the interval loop."""
        platform = self.platform
        workload = self.workload
        config = decision.config
        core_index = platform.core_index
        n_big = platform.big.n_cores

        # Contention pressure from batch neighbours (placement order, so
        # the sums match the dict-based reference term for term).
        batch_index: list[int] = []
        mem_values: list[float] = []
        for cid in placement.batch_assignment:
            job = placement.batch_assignment[cid]
            batch_index.append(core_index[cid])
            mem_values.append(self.batch_jobs.program_for_job(job).mem_intensity)
        on_big = [i < n_big for i in batch_index]
        pressure = aggregate_pressure_indexed(mem_values, on_big)
        slow_big = self.contention.lc_slowdown(
            CoreKind.BIG, pressure, sensitivity=workload.contention_sensitivity
        )
        slow_small = self.contention.lc_slowdown(
            CoreKind.SMALL, pressure, sensitivity=workload.contention_sensitivity
        )

        state = _DecisionState()
        state.config_label = config.label
        state.big_power = self._power.cluster_coefficients(
            platform.big, decision.big_freq_ghz
        )
        state.small_power = self._power.cluster_coefficients(
            platform.small, decision.small_freq_ghz
        )
        state.speeds = lc_server_speeds_array(
            workload,
            platform,
            config,
            big_slowdown=slow_big,
            small_slowdown=slow_small,
        )
        state.n_servers = len(state.speeds)

        # Ground-truth batch IPS per core and the counter sums derived
        # from it; these only change when the decision does.
        true_ips_base = np.zeros(platform.n_cores)
        utils_base = np.zeros(platform.n_cores)
        for cid, job in placement.batch_assignment.items():
            program = self.batch_jobs.program_for_job(job)
            cluster = platform.cluster_of(cid)
            freq = (
                decision.big_freq_ghz
                if cluster is platform.big
                else decision.small_freq_ghz
            )
            lc_pressure = (
                workload.mem_intensity if config.uses_cluster(cluster.kind) else 0.0
            )
            factor = self.contention.batch_throughput_factor(
                cluster.kind,
                program.mem_intensity,
                pressure,
                lc_pressure=lc_pressure,
            )
            i = core_index[cid]
            true_ips_base[i] = program.ips(
                cluster.core_type, freq, throughput_factor=factor
            )
            utils_base[i] = 1.0
        state.true_ips_base = true_ips_base
        state.utils_base = utils_base
        state.batch_big_index = [i for i in batch_index if i < n_big]
        state.batch_small_index = [i for i in batch_index if i >= n_big]
        state.big_batch_sum = sum(
            float(true_ips_base[i]) for i in state.batch_big_index
        )
        state.small_batch_sum = sum(
            float(true_ips_base[i]) for i in state.batch_small_index
        )
        state.batch_ips_sum = sum(float(true_ips_base[i]) for i in batch_index)

        # Latency-critical cores actually used by worker threads, and the
        # factor turning a queue utilization into reported counter IPS.
        used = placement.lc_cores[: workload.n_threads]
        state.lc_used_index = [core_index[cid] for cid in used]
        state.lc_ips_coeff = []
        for cid in used:
            cluster = platform.cluster_of(cid)
            freq = (
                decision.big_freq_ghz
                if cluster is platform.big
                else decision.small_freq_ghz
            )
            state.lc_ips_coeff.append(
                workload.lc_ipc_fraction * self._microbench_ips(cluster, freq)
            )
        state.lc_index_arr = np.asarray(state.lc_used_index, dtype=np.intp)
        state.lc_coeff_arr = np.asarray(state.lc_ips_coeff, dtype=float)
        return state

    def _microbench_ips(self, cluster, freq_ghz: float) -> float:
        """Memoized ``core_type.microbench_ips`` at an operating point."""
        key = (cluster.name, freq_ghz)
        ips = self._microbench_ips_memo.get(key)
        if ips is None:
            ips = cluster.core_type.microbench_ips(freq_ghz)
            self._microbench_ips_memo[key] = ips
        return ips

    def _migration_latency_extra_ms(
        self,
        migrated_cores: int,
        stats: IntervalQueueStats,
        t0: float,
        n_servers: int,
    ) -> np.ndarray:
        """Latency added by a core migration (wall-clock, not dilated).

        Requests arriving while threads migrate and caches refill wait out
        the remainder of the migration window.  Only threads on *changed*
        cores stall, so the adder hits a request with probability equal to
        the fraction of cores that moved: single-core ladder steps are
        nearly free while a cluster switch stalls the whole service --
        which is why Octopus-Man's big<->small oscillations are so costly
        (paper Sections 2 and 4.2.1).

        Only called when a migration happened, the penalty is positive and
        requests arrived -- exactly the cases in which the reference path
        consumes an rng draw, so draw order is preserved while the common
        no-migration interval allocates nothing at all.  (The draw itself
        cannot be thinned further: it always covers every arrival in the
        interval, stalled or not.)
        """
        penalty = self.config.migration_penalty_s
        fraction = min(migrated_cores / max(n_servers, 1), 1.0)
        in_window = stats.arrival_times_s < t0 + penalty
        stalled = in_window & (self._rng.random(stats.arrivals) < fraction)
        extra = np.zeros(stats.arrivals)
        remaining_s = t0 + penalty - stats.arrival_times_s[stalled]
        extra[stalled] = remaining_s * 1e3
        return extra


def _epoch_cluster_power(
    coeffs: ClusterPowerCoefficients,
    utils_mat: np.ndarray,
    power_gate_idle: bool,
) -> np.ndarray:
    """Cluster power for a whole epoch of per-core utilization rows.

    Vectorizes :meth:`ClusterPowerCoefficients.cluster_power_w` across
    the epoch axis while keeping each row's accumulation identical to
    the scalar method: the total starts at the static term and adds one
    core's dynamic term at a time, in core order.  A power-gated idle
    core *skips* its add on the scalar path; here it contributes ``+0.0``
    instead, which is bitwise invisible because the running total is
    never ``-0.0`` (it starts at a non-negative static term and only
    grows).
    """
    h, n_cores = utils_mat.shape
    if n_cores and (
        float(utils_mat.min()) < 0.0 or float(utils_mat.max()) > 1.0
    ):
        raise ValueError("utilization must be within [0, 1]")
    total = np.full(h, coeffs.static_w)
    idle = coeffs.idle_fraction
    busy = 1.0 - idle
    dynamic = coeffs.dynamic_w
    for c in range(n_cores):
        col = utils_mat[:, c]
        term = dynamic * (idle + busy * col)
        if power_gate_idle:
            term = np.where(col == 0.0, 0.0, term)
        total += term
    return total


def run_experiment(
    platform: Platform,
    workload: LatencyCriticalWorkload,
    trace: LoadTrace,
    manager: TaskManager,
    *,
    batch_jobs: BatchJobSet | None = None,
    contention: ContentionModel | None = None,
    kernel: KernelConfig | None = None,
    engine_config: EngineConfig | None = None,
    seed: int = 0,
    n_intervals: int | None = None,
) -> ExperimentResult:
    """One-call wrapper: build an :class:`IntervalSimulator` and run it."""
    simulator = IntervalSimulator(
        platform,
        workload,
        trace,
        manager,
        batch_jobs=batch_jobs,
        contention=contention,
        kernel=kernel,
        engine_config=engine_config,
        seed=seed,
    )
    return simulator.run(n_intervals)
