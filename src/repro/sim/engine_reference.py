"""Reference (pre-optimization) interval engine: the byte-identity oracle.

:mod:`repro.sim.engine` now runs the monitoring-interval loop over dense,
integer-indexed arrays with per-decision invariants hoisted out of the
loop.  This module preserves the original, straightforward implementation
-- string-keyed dicts plumbed through every layer, everything recomputed
per interval -- for two purposes, mirroring how
:func:`repro.sim.queueing.lindley_completion_times_reference` anchors the
queue kernel:

* **oracle** -- the equivalence tests run both engines over randomized
  scenarios and assert bit-identical observations, which is what lets the
  optimized engine claim byte-identical output without a semantics bump
  of ``KERNEL_VERSION``;
* **benchmark baseline** -- ``benchmarks/test_bench_engine.py`` measures
  the optimized engine against this one on the same machine, so the
  recorded speedup is hardware-independent.

Both engines consume the rng stream in exactly the same order;
:class:`ReferenceDispatchQueue` likewise keeps the original
``rng.choice``-based dispatch (the optimized queue evaluates the same
draws through a cheaper, stream-identical formulation).

Do not use this module outside tests and benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.affinity import AffinityManager
from repro.hardware.counters import PerfCounters
from repro.hardware.cores import CoreKind
from repro.hardware.dvfs import DVFSController
from repro.hardware.power import EnergyMeter, PowerModel
from repro.hardware.soc import KernelConfig, Platform
from repro.loadgen.traces import LoadTrace
from repro.policies.base import ManagerContext, TaskManager
from repro.sim.contention import ContentionModel, aggregate_pressure
from repro.sim.engine import EngineConfig
from repro.sim.latency import LatencySample
from repro.sim.queueing import DispatchQueue, IntervalQueueStats
from repro.sim.records import ExperimentResult, IntervalObservation
from repro.workloads.base import LatencyCriticalWorkload, lc_server_speeds
from repro.workloads.batch import BatchJobSet


def _reference_lindley(
    arrivals: np.ndarray, service: np.ndarray, free0: float
) -> np.ndarray:
    """The pre-optimization (allocation-per-step) closed-form kernel."""
    cum = np.cumsum(service)
    shifted_cumsum = cum - service
    slack = np.maximum.accumulate(arrivals - shifted_cumsum)
    return cum + np.maximum(slack, free0)


class ReferenceDispatchQueue(DispatchQueue):
    """The pre-optimization queue hot path, seed-verbatim.

    Consumes the rng stream identically to the optimized
    :class:`~repro.sim.queueing.DispatchQueue`; kept so the engine
    benchmark's baseline pays the original per-interval cost
    (``rng.choice`` dispatch, all-numpy small-array bookkeeping).
    """

    def backlog_s(self, now: float) -> float:
        if self.n_servers == 0:
            return 0.0
        return float(np.sum(np.maximum(self._free - now, 0.0)))

    def _draw_arrivals(
        self, arrival_rate: float, t0: float, t1: float
    ) -> tuple[int, np.ndarray]:
        dt = t1 - t0
        if self.burstiness <= 1.0:
            n = int(self.rng.poisson(arrival_rate * dt))
            return n, np.sort(self.rng.uniform(t0, t1, size=n))
        mean_batch = self.burstiness
        n_bursts = int(self.rng.poisson(arrival_rate * dt / mean_batch))
        if n_bursts == 0:
            return 0, np.empty(0)
        sizes = self.rng.geometric(1.0 / mean_batch, size=n_bursts)
        epochs = np.sort(self.rng.uniform(t0, t1, size=n_bursts))
        times = np.repeat(epochs, sizes)
        return int(times.size), times

    def _shed(self, now: float) -> float:
        if self.max_backlog_s is None:
            return 0.0
        bound = now + self.max_backlog_s
        excess = np.maximum(self._free - bound, 0.0)
        if np.any(excess > 0):
            np.minimum(self._free, bound, out=self._free)
        return float(np.sum(excess))

    def run_interval(
        self, t0, t1, arrival_rate, demand_sampler
    ) -> IntervalQueueStats:
        if self.n_servers == 0:
            raise RuntimeError("reconfigure() must be called before run_interval()")
        if t1 <= t0:
            raise ValueError("interval must have positive duration")
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")

        dt = t1 - t0
        n, burst_times = self._draw_arrivals(arrival_rate, t0, t1)
        carried_busy = np.maximum(np.minimum(self._free, t1) - t0, 0.0)
        if n == 0:
            utils = np.minimum(carried_busy / dt, 1.0)
            shed = self._shed(t1)
            return IntervalQueueStats(
                latencies_s=np.empty(0),
                arrival_times_s=np.empty(0),
                arrivals=0,
                utilizations=tuple(float(u) for u in utils),
                shed_work_s=shed,
            )

        arrivals = burst_times
        demands = demand_sampler(self.rng, n)
        assigned = self.rng.choice(self.n_servers, size=n, p=self._weights)

        latencies = np.empty(n)
        service_time_per_server = np.zeros(self.n_servers)
        free = self._free
        speeds = self._speeds
        for k in range(self.n_servers):
            (idx,) = np.nonzero(assigned == k)
            if len(idx) == 0:
                continue
            service = demands[idx] / speeds[k]
            service_time_per_server[k] = float(np.sum(service))
            arr_k = arrivals[idx]
            completion = _reference_lindley(arr_k, service, free[k])
            latencies[idx] = completion - arr_k
            free[k] = completion[-1]

        utils = np.minimum((carried_busy + service_time_per_server) / dt, 1.0)
        shed = self._shed(t1)
        return IntervalQueueStats(
            latencies_s=latencies,
            arrival_times_s=arrivals,
            arrivals=n,
            utilizations=tuple(float(u) for u in utils),
            shed_work_s=shed,
        )


def _reference_summarize(
    latencies_ms: np.ndarray, percentile: float, *, idle_latency_ms: float = 0.0
) -> LatencySample:
    """The original ``np.quantile``-based interval summary."""
    if not 0.0 < percentile < 1.0:
        raise ValueError("percentile must be a fraction in (0, 1)")
    latencies_ms = np.asarray(latencies_ms, dtype=float)
    if latencies_ms.size == 0:
        return LatencySample(
            tail_latency_ms=idle_latency_ms,
            mean_latency_ms=idle_latency_ms,
            n_requests=0,
        )
    return LatencySample(
        tail_latency_ms=float(np.quantile(latencies_ms, percentile)),
        mean_latency_ms=float(np.mean(latencies_ms)),
        n_requests=int(latencies_ms.size),
    )


class ReferenceIntervalSimulator:
    """The seed implementation of the interval co-simulator, verbatim."""

    def __init__(
        self,
        platform: Platform,
        workload: LatencyCriticalWorkload,
        trace: LoadTrace,
        manager: TaskManager,
        *,
        batch_jobs: BatchJobSet | None = None,
        contention: ContentionModel | None = None,
        kernel: KernelConfig | None = None,
        engine_config: EngineConfig | None = None,
        seed: int = 0,
    ):
        self.platform = platform
        self.workload = workload
        self.trace = trace
        self.manager = manager
        self.batch_jobs = batch_jobs
        self.contention = contention or ContentionModel()
        self.kernel = kernel or KernelConfig(cpuidle_enabled=False)
        self.config = engine_config or EngineConfig()

        self._rng = np.random.default_rng(seed)
        scale = workload.sim_scale
        self._queue = ReferenceDispatchQueue(
            rng=self._rng,
            balance_exponent=self.config.balance_exponent,
            migration_penalty_s=0.0,
            max_backlog_s=self.config.max_backlog_s * scale,
            burstiness=workload.burstiness,
        )
        self._affinity = AffinityManager(platform)
        self._dvfs = DVFSController(platform.clusters)
        self._power = PowerModel(platform, self.kernel)
        self._counters = PerfCounters(
            platform, self.kernel, juno_perf_bug=self.config.juno_perf_bug
        )
        self._meter = EnergyMeter()
        self._started = False

    def run(self, n_intervals: int | None = None) -> ExperimentResult:
        """Run the experiment and return its observations."""
        if self._started:
            raise RuntimeError("an IntervalSimulator instance runs exactly once")
        self._started = True

        total = n_intervals or self.trace.n_intervals(self.config.interval_s)
        if total <= 0:
            raise ValueError("the trace is shorter than one interval")
        self.manager.start(
            ManagerContext(
                platform=self.platform,
                workload=self.workload,
                interval_s=self.config.interval_s,
                rng=np.random.default_rng(self._rng.integers(2**63)),
                batch_present=self.batch_jobs is not None,
            )
        )

        observations = [self._run_interval(i) for i in range(total)]
        return ExperimentResult(
            observations,
            workload_name=self.workload.name,
            manager_name=self.manager.name,
            target_latency_ms=self.workload.target_latency_ms,
            interval_s=self.config.interval_s,
        )

    def _run_interval(self, index: int) -> IntervalObservation:
        dt = self.config.interval_s
        t0 = index * dt
        t1 = t0 + dt
        load = self.trace.load_at(t0 + dt / 2.0)

        decision = self.manager.decide()
        config = decision.config
        self._dvfs.set_frequency("big", decision.big_freq_ghz)
        self._dvfs.set_frequency("small", decision.small_freq_ghz)

        n_free = self.platform.n_cores - config.total_cores
        collocating = decision.run_batch and self.batch_jobs is not None
        placement = self._affinity.apply(
            config, n_batch_jobs=n_free if collocating else 0
        )

        mem_by_core = {
            cid: self.batch_jobs.program_for_job(job).mem_intensity
            for cid, job in placement.batch_assignment.items()
        }
        pressure = aggregate_pressure(mem_by_core, self.platform.big.core_ids)
        slow_big = self.contention.lc_slowdown(
            CoreKind.BIG, pressure, sensitivity=self.workload.contention_sensitivity
        )
        slow_small = self.contention.lc_slowdown(
            CoreKind.SMALL, pressure, sensitivity=self.workload.contention_sensitivity
        )

        speeds = lc_server_speeds(
            self.workload,
            self.platform,
            config,
            big_slowdown=slow_big,
            small_slowdown=slow_small,
        )
        self._queue.reconfigure(
            speeds, now=t0, migration=placement.migration_event
        )
        stats = self._queue.run_interval(
            t0, t1, self.workload.sim_arrival_rate(load), self.workload.sample_demands
        )
        latencies_ms = self.workload.reported_latency_ms(stats.latencies_s)
        latencies_ms = latencies_ms + self._migration_latency_extra_ms(
            placement, stats, t0, len(speeds)
        )
        sample = _reference_summarize(
            latencies_ms,
            self.workload.qos_percentile,
            idle_latency_ms=self.workload.idle_latency_ms,
        )

        true_ips = self._true_ips(placement, stats, decision)
        counter_sample = self._counters.read(true_ips, self._rng)
        big_batch = sum(
            counter_sample[cid]
            for cid in placement.batch_assignment
            if cid in self.platform.big.core_ids
        )
        small_batch = sum(
            counter_sample[cid]
            for cid in placement.batch_assignment
            if cid in self.platform.small.core_ids
        )
        batch_instructions = (
            sum(true_ips[cid] for cid in placement.batch_assignment) * dt
        )
        garbage = counter_sample != {
            cid: true_ips.get(cid, 0.0) for cid in self.platform.core_ids
        }

        utilizations = self._utilizations(placement, stats)
        breakdown = self._power.breakdown(
            decision.big_freq_ghz, decision.small_freq_ghz, utilizations
        )
        self._meter.record(breakdown, dt)

        arrivals_real = stats.arrivals * self.workload.sim_scale
        arrival_rps = arrivals_real / dt
        tail = sample.tail_latency_ms
        observation = IntervalObservation(
            index=index,
            t_start_s=t0,
            duration_s=dt,
            offered_load=load,
            measured_load=min(arrival_rps / self.workload.max_load_rps, 1.0),
            arrival_rps=arrival_rps,
            n_requests=int(arrivals_real),
            tail_latency_ms=tail,
            mean_latency_ms=sample.mean_latency_ms,
            qos_met=self.workload.qos_met(tail),
            tardiness=self.workload.tardiness(tail),
            power_w=breakdown.total_w,
            energy_j=breakdown.total_w * dt,
            big_ips=big_batch,
            small_ips=small_batch,
            counter_garbage=garbage,
            decision=decision,
            config_label=config.label,
            big_freq_ghz=decision.big_freq_ghz,
            small_freq_ghz=decision.small_freq_ghz,
            migrated_cores=placement.migrated_cores,
            migration_event=placement.migration_event,
            mean_utilization=stats.mean_utilization,
            backlog_s=self._queue.backlog_s(t1) / self.workload.sim_scale,
            shed_work_s=stats.shed_work_s / self.workload.sim_scale,
            batch_instructions=batch_instructions,
        )
        self.manager.observe(observation)
        return observation

    def _migration_latency_extra_ms(
        self, placement, stats, t0: float, n_servers: int
    ) -> np.ndarray:
        if stats.arrivals == 0:
            return np.zeros(0)
        extra = np.zeros(stats.arrivals)
        if not placement.migration_event:
            return extra
        penalty = self.config.migration_penalty_s
        if penalty <= 0:
            return extra
        fraction = min(placement.migrated_cores / max(n_servers, 1), 1.0)
        in_window = stats.arrival_times_s < t0 + penalty
        stalled = in_window & (self._rng.random(stats.arrivals) < fraction)
        remaining_s = t0 + penalty - stats.arrival_times_s[stalled]
        extra[stalled] = remaining_s * 1e3
        return extra

    def _true_ips(self, placement, stats, decision) -> dict[str, float]:
        true_ips: dict[str, float] = {}
        mem_by_core = {
            cid: self.batch_jobs.program_for_job(job).mem_intensity
            for cid, job in placement.batch_assignment.items()
        }
        pressure = aggregate_pressure(mem_by_core, self.platform.big.core_ids)
        for cid, job in placement.batch_assignment.items():
            program = self.batch_jobs.program_for_job(job)
            cluster = self.platform.cluster_of(cid)
            freq = (
                decision.big_freq_ghz
                if cluster is self.platform.big
                else decision.small_freq_ghz
            )
            lc_pressure = (
                self.workload.mem_intensity
                if decision.config.uses_cluster(cluster.kind)
                else 0.0
            )
            factor = self.contention.batch_throughput_factor(
                cluster.kind,
                program.mem_intensity,
                pressure,
                lc_pressure=lc_pressure,
            )
            true_ips[cid] = program.ips(
                cluster.core_type, freq, throughput_factor=factor
            )
        used = placement.lc_cores[: self.workload.n_threads]
        for core_id, util in zip(used, stats.utilizations):
            cluster = self.platform.cluster_of(core_id)
            freq = (
                decision.big_freq_ghz
                if cluster is self.platform.big
                else decision.small_freq_ghz
            )
            true_ips[core_id] = (
                self.workload.lc_ipc_fraction
                * cluster.core_type.microbench_ips(freq)
                * util
            )
        return true_ips

    def _utilizations(self, placement, stats) -> dict[str, float]:
        utils: dict[str, float] = {}
        used = placement.lc_cores[: self.workload.n_threads]
        for core_id, util in zip(used, stats.utilizations):
            utils[core_id] = float(util)
        for core_id in placement.batch_assignment:
            utils[core_id] = 1.0
        return utils


def run_reference_experiment(
    platform: Platform,
    workload: LatencyCriticalWorkload,
    trace: LoadTrace,
    manager: TaskManager,
    *,
    batch_jobs: BatchJobSet | None = None,
    contention: ContentionModel | None = None,
    kernel: KernelConfig | None = None,
    engine_config: EngineConfig | None = None,
    seed: int = 0,
    n_intervals: int | None = None,
) -> ExperimentResult:
    """One-call wrapper around :class:`ReferenceIntervalSimulator`."""
    simulator = ReferenceIntervalSimulator(
        platform,
        workload,
        trace,
        manager,
        batch_jobs=batch_jobs,
        contention=contention,
        kernel=kernel,
        engine_config=engine_config,
        seed=seed,
    )
    return simulator.run(n_intervals)
