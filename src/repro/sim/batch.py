"""Batch execution of scenarios: a persistent worker pool, cost-aware
scheduling and a two-tier outcome cache.

The :class:`BatchRunner` is the execution layer between the declarative
scenario specs (:mod:`repro.scenarios`) and the per-run engine
(:mod:`repro.sim.engine`).  Given a list of specs it

* deduplicates identical specs (figure grids often repeat a run),
* serves previously computed results from a two-tier cache -- an
  in-process LRU over an on-disk store -- keyed by the spec fingerprint
  (which folds in the queue-kernel version, so code changes invalidate
  stale entries),
* fans the remaining runs out over a **persistent**
  :class:`~concurrent.futures.ProcessPoolExecutor` that is created
  lazily on first use and reused across ``run()`` calls, so a whole
  ``hipster-repro all`` invocation pays the pool spawn (and the worker
  warm-start imports) once instead of once per experiment,
* dispatches in **longest-job-first** order via ``submit`` +
  ``as_completed`` using a spec cost model calibrated against
  ``BENCH_engine.json``, with cheap specs adaptively chunked so
  inter-process overhead amortizes, and
* returns outcomes in input order.

Completion order never affects results: every run is a pure function of
its spec (per-spec-seed determinism), so serial, per-call-pool and
persistent-pool execution are byte-identical.

Cache layout
------------
``cache_dir`` holds one ``<fingerprint>.pkl`` per outcome (written
atomically via ``os.replace``, so concurrent runners can share a
directory) plus a single append-only ``manifest.pack``.  The pack holds
``<key> <size>\\n<payload>`` records appended under an exclusive
``flock``; warm starts index it with one sequential scan instead of a
per-key ``open``/``stat`` storm, and a truncated tail (crashed writer)
is simply ignored.  Both tiers key on the fingerprint, so a
queue-kernel or schema version bump invalidates both at once.

A runner should be closed when done (``close()`` or a ``with`` block)
to shut its worker pool down; a serial runner never creates one.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

try:  # pragma: no cover - POSIX only; appends stay atomic-ish elsewhere
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> scenarios cycle
    from repro.scenarios.spec import ScenarioOutcome, ScenarioSpec

#: Name of the append-only manifest inside a cache directory.
MANIFEST_NAME = "manifest.pack"

#: Default capacity of the in-process LRU tier (entries); 0 disables it.
DEFAULT_MEMORY_ENTRIES = 1024

#: Size-aware companion bound: total interval observations held across
#: all LRU entries (a proxy for resident bytes -- outcomes range from a
#: ~30-interval calibration probe to a ~1400-interval paper-length day,
#: so an entry count alone is blind to an order of magnitude of memory).
#: 0 disables the size bound.
DEFAULT_MEMORY_OBSERVATIONS = 500_000

#: Cost-model calibration, from the committed ``BENCH_engine.json``
#: trajectory: the optimized engine runs ~16.5k intervals/s at 1k real
#: arrivals per interval and ~11k at 10k, i.e. per-interval cost grows
#: roughly linearly with arrivals and doubles around 20k of them; a
#: collocated SPEC batch adds ~12% at the heavy points.
ARRIVALS_COST_HALF = 20_000.0
COLLOCATION_COST_FACTOR = 1.12

#: Scheduling: target chunks per worker.  More chunks = better load
#: balance at the tail, fewer = less inter-process overhead; 4 is the
#: classic oversubscription compromise.
CHUNKS_PER_WORKER = 4


def execute_scenario(spec: "ScenarioSpec") -> "ScenarioOutcome":
    """Run one scenario in the current process."""
    return spec.run()


def execute_chunk(specs: Sequence["ScenarioSpec"]) -> list["ScenarioOutcome"]:
    """Run a chunk of scenarios in the current process (the pool's work
    item); one submission amortizes dispatch overhead over the chunk."""
    return [spec.run() for spec in specs]


def _warm_worker() -> None:
    """Pool initializer: pull the heavyweight imports (engine, factories,
    platform construction) into the worker once, not once per spec.

    Under the default ``fork`` start method children inherit the parent's
    modules and this is nearly free; under ``spawn``/``forkserver`` it
    moves the multi-hundred-ms import tax out of the first chunk."""
    import repro.scenarios.factories  # noqa: F401
    import repro.sim.engine  # noqa: F401


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------

_WORKLOAD_RPS_MEMO: dict[tuple, float] = {}


def _workload_max_rps(workload: str, params) -> float:
    """Max requests/s of a workload spec (memoized; params are frozen)."""
    memo_key = (workload, params)
    try:
        return _WORKLOAD_RPS_MEMO[memo_key]
    except KeyError:
        from repro.scenarios import factories

        rps = float(factories.build_workload(workload, params).max_load_rps)
        _WORKLOAD_RPS_MEMO[memo_key] = rps
        return rps


def estimate_cost(spec: "ScenarioSpec") -> float:
    """Relative execution cost of one spec, for scheduling only.

    Modelled as ``intervals x (1 + arrivals_per_interval / half) x
    collocation`` with constants calibrated from ``BENCH_engine.json``
    (see :data:`ARRIVALS_COST_HALF`).  Only the *ordering* matters --
    longest-job-first dispatch and chunk sizing -- so a rough estimate
    is fine and the fallback for exotic traces is deliberately simple.
    """
    interval_s = float(dict(spec.engine).get("interval_s", 1.0))
    duration = spec.trace.duration_s()
    intervals = int(duration / interval_s) if interval_s > 0 else 0
    if spec.n_intervals is not None:
        intervals = min(intervals, spec.n_intervals) if intervals else spec.n_intervals
    arrivals = (
        spec.trace.mean_level()
        * _workload_max_rps(spec.workload, spec.workload_params)
        * interval_s
    )
    cost = max(intervals, 1) * (1.0 + arrivals / ARRIVALS_COST_HALF)
    if spec.batch_jobs is not None:
        cost *= COLLOCATION_COST_FACTOR
    return cost


def plan_chunks(
    pending: Sequence[tuple[str, "ScenarioSpec"]], jobs: int
) -> list[list[tuple[str, "ScenarioSpec"]]]:
    """Longest-job-first dispatch plan with adaptive chunking.

    Specs are sorted by estimated cost (descending, input order breaking
    ties, so the plan is deterministic) and greedily packed into chunks
    of roughly ``total_cost / (jobs * CHUNKS_PER_WORKER)``: expensive
    specs travel alone -- one straggler must not serialize a tail of
    cheap specs behind it -- while cheap specs share a submission.
    """
    if not pending:
        return []
    costs = [estimate_cost(spec) for _, spec in pending]
    order = sorted(range(len(pending)), key=lambda i: (-costs[i], i))
    target = sum(costs) / max(1, jobs * CHUNKS_PER_WORKER)
    chunks: list[list[tuple[str, "ScenarioSpec"]]] = []
    current: list[tuple[str, "ScenarioSpec"]] = []
    current_cost = 0.0
    for i in order:
        (key, spec), cost = pending[i], costs[i]
        if current and current_cost + cost > target:
            chunks.append(current)
            current, current_cost = [], 0.0
        current.append((key, spec))
        current_cost += cost
    if current:
        chunks.append(current)
    return chunks


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------


@dataclass
class BatchRunner:
    """Fan scenario specs out over a persistent pool, caching results.

    Parameters
    ----------
    jobs:
        Worker processes; 1 runs everything in-process (serial).  The
        pool is created lazily on the first parallel batch and reused by
        every later :meth:`run` call until :meth:`close`.
    cache_dir:
        Directory for the on-disk tier (per-key pickles plus the
        append-only manifest pack); ``None`` keeps results only in the
        in-process LRU.  Corrupt or unreadable entries are treated as
        misses, and a corrupt per-key file is deleted on detection so it
        is never re-parsed on the next warm start.
    memory_entries:
        Capacity of the in-process LRU tier; 0 disables it (every lookup
        then goes to disk, and duplicate specs across ``run()`` calls
        recompute when there is no ``cache_dir``).
    memory_observations:
        Size-aware cap on the LRU: total interval observations across
        cached outcomes (oldest entries evict beyond it); 0 removes the
        size bound and leaves only the entry count.
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    memory_entries: int = DEFAULT_MEMORY_ENTRIES
    memory_observations: int = DEFAULT_MEMORY_OBSERVATIONS
    cache_hits: int = field(default=0, init=False)
    cache_misses: int = field(default=0, init=False)
    memory_hits: int = field(default=0, init=False)
    disk_hits: int = field(default=0, init=False)
    specs_dispatched: int = field(default=0, init=False)
    chunks_dispatched: int = field(default=0, init=False)
    pool_spawns: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        if self.memory_observations < 0:
            raise ValueError("memory_observations must be >= 0")
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        self._pool: ProcessPoolExecutor | None = None
        self._memory: OrderedDict[str, "ScenarioOutcome"] = OrderedDict()
        self._memory_weights: dict[str, int] = {}
        self._memory_weight = 0
        self._pack_index: dict[str, tuple[int, int]] | None = None
        self._pack_read_fh = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def pool_workers(self) -> int:
        """Workers in the live pool (0 while no pool exists)."""
        return 0 if self._pool is None else self.jobs

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the caches survive)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        fh, self._pack_read_fh = self._pack_read_fh, None
        if fh is not None:
            try:
                fh.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_warm_worker
            )
            self.pool_spawns += 1
        return self._pool

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, specs: Iterable["ScenarioSpec"]) -> list["ScenarioOutcome"]:
        """Execute every spec, in input order; duplicates run once."""
        from repro.scenarios.spec import ScenarioSpec

        spec_list = list(specs)
        for spec in spec_list:
            if not isinstance(spec, ScenarioSpec):
                raise TypeError(f"expected ScenarioSpec, got {type(spec).__name__}")
        keys = [spec.fingerprint() for spec in spec_list]

        outcomes: dict[str, ScenarioOutcome] = {}
        pending: list[tuple[str, ScenarioSpec]] = []
        pending_keys: set[str] = set()
        for key, spec in zip(keys, spec_list):
            if key in outcomes or key in pending_keys:
                continue
            cached = self._cache_load(key)
            if cached is not None:
                outcomes[key] = cached
                self.cache_hits += 1
            else:
                pending.append((key, spec))
                pending_keys.add(key)
                self.cache_misses += 1

        for key, outcome in self._execute(pending):
            outcomes[key] = outcome

        return [outcomes[key] for key in keys]

    def results(self, specs: Iterable["ScenarioSpec"]):
        """Like :meth:`run` but unwrapped to bare ``ExperimentResult``s."""
        return [outcome.result for outcome in self.run(specs)]

    def run_one(self, spec: "ScenarioSpec") -> "ScenarioOutcome":
        """Convenience wrapper for a single spec."""
        return self.run([spec])[0]

    def _execute(
        self, pending: Sequence[tuple[str, "ScenarioSpec"]]
    ) -> Iterable[tuple[str, "ScenarioOutcome"]]:
        """Compute pending specs (completion order) and cache each one."""
        if not pending:
            return
        self.specs_dispatched += len(pending)
        # A single spec is cheaper in-process unless warm workers are
        # already standing by.
        if self.jobs > 1 and (self._pool is not None or len(pending) > 1):
            yield from self._execute_pool(pending)
            return
        for key, spec in pending:
            outcome = execute_scenario(spec)
            self._cache_store_many([(key, outcome)])
            yield key, outcome

    def _execute_pool(
        self, pending: Sequence[tuple[str, "ScenarioSpec"]]
    ) -> Iterable[tuple[str, "ScenarioOutcome"]]:
        chunks = plan_chunks(pending, self.jobs)
        self.chunks_dispatched += len(chunks)
        try:
            pool = self._ensure_pool()
            futures = {
                pool.submit(execute_chunk, [spec for _, spec in chunk]): chunk
                for chunk in chunks
            }
        except BrokenProcessPool:
            self.close()
            raise
        not_done = set(futures)
        try:
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = futures[future]
                    items = list(zip((key for key, _ in chunk), future.result()))
                    self._cache_store_many(items)
                    yield from items
        except BrokenProcessPool:
            self.close()
            raise
        finally:
            for future in not_done:
                future.cancel()

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------

    def _cache_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return Path(self.cache_dir) / f"{key}.pkl"

    def _manifest_path(self) -> Path:
        assert self.cache_dir is not None
        return Path(self.cache_dir) / MANIFEST_NAME

    def _memory_get(self, key: str) -> "ScenarioOutcome | None":
        if self.memory_entries == 0:
            return None
        outcome = self._memory.get(key)
        if outcome is not None:
            self._memory.move_to_end(key)
        return outcome

    def _memory_put(self, key: str, outcome: "ScenarioOutcome") -> None:
        if self.memory_entries == 0:
            return
        weight = max(1, len(outcome.result))
        if key in self._memory:
            self._memory_weight -= self._memory_weights[key]
        self._memory[key] = outcome
        self._memory_weights[key] = weight
        self._memory_weight += weight
        self._memory.move_to_end(key)
        while len(self._memory) > 1 and (
            len(self._memory) > self.memory_entries
            or (
                self.memory_observations
                and self._memory_weight > self.memory_observations
            )
        ):
            evicted, _ = self._memory.popitem(last=False)
            self._memory_weight -= self._memory_weights.pop(evicted)

    def _cache_load(self, key: str) -> "ScenarioOutcome | None":
        outcome = self._memory_get(key)
        if outcome is not None:
            self.memory_hits += 1
            return outcome
        if self.cache_dir is None:
            return None
        outcome = self._pack_load(key)
        if outcome is None:
            outcome = self._file_load(key)
        if outcome is not None:
            self.disk_hits += 1
            self._memory_put(key, outcome)
        return outcome

    def _file_load(self, key: str) -> "ScenarioOutcome | None":
        """The legacy per-key tier; deletes a corrupt entry on detection
        so it is never re-parsed on the next warm start."""
        from repro.scenarios.spec import ScenarioOutcome

        path = self._cache_path(key)
        try:
            with path.open("rb") as fh:
                outcome = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:  # corrupt/stale entry: drop it and recompute
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return outcome if isinstance(outcome, ScenarioOutcome) else None

    # -- manifest pack --------------------------------------------------

    def _load_pack_index(self) -> dict[str, tuple[int, int]]:
        """Scan the manifest once: key -> (payload offset, size).

        Later records win (the pack is append-only); a malformed or
        truncated tail ends the scan -- everything before it stays
        usable, which is exactly what a crashed writer leaves behind.
        """
        if self._pack_index is not None:
            return self._pack_index
        index: dict[str, tuple[int, int]] = {}
        path = self._manifest_path()
        try:
            with path.open("rb") as fh:
                file_size = os.fstat(fh.fileno()).st_size
                while True:
                    header = fh.readline()
                    if not header:
                        break
                    try:
                        key_bytes, size_bytes = header.split()
                        size = int(size_bytes)
                    except ValueError:
                        break
                    offset = fh.tell()
                    if size < 0 or offset + size > file_size:
                        break
                    index[key_bytes.decode("ascii", "replace")] = (offset, size)
                    fh.seek(offset + size)
        except OSError:
            pass
        self._pack_index = index
        return index

    def _pack_load(self, key: str) -> "ScenarioOutcome | None":
        from repro.scenarios.spec import ScenarioOutcome

        entry = self._load_pack_index().get(key)
        if entry is None:
            return None
        offset, size = entry
        try:
            # One long-lived read handle: a warm start costs one open
            # plus seeks, not an open per key.
            if self._pack_read_fh is None:
                self._pack_read_fh = self._manifest_path().open("rb")
            self._pack_read_fh.seek(offset)
            payload = self._pack_read_fh.read(size)
            outcome = pickle.loads(payload)
        except Exception:  # corrupt record: fall through to other tiers
            fh, self._pack_read_fh = self._pack_read_fh, None
            if fh is not None:
                try:
                    fh.close()
                except OSError:
                    pass
            return None
        return outcome if isinstance(outcome, ScenarioOutcome) else None

    def _cache_store_many(
        self, items: Sequence[tuple[str, "ScenarioOutcome"]]
    ) -> None:
        for key, outcome in items:
            self._memory_put(key, outcome)
        if self.cache_dir is None or not items:
            return
        payloads = [
            (key, pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL))
            for key, outcome in items
        ]
        for key, payload in payloads:
            self._file_store(key, payload)
        self._pack_append_many(payloads)

    def _file_store(self, key: str, payload: bytes) -> None:
        path = self._cache_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic write: a crashed/parallel writer must never leave a
        # truncated pickle behind for a later run to trip over.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _pack_append_many(self, payloads: Sequence[tuple[str, bytes]]) -> None:
        """Append records to the manifest under one exclusive lock."""
        path = self._manifest_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        index = self._load_pack_index()
        try:
            with path.open("ab") as fh:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                try:
                    fh.seek(0, os.SEEK_END)
                    for key, payload in payloads:
                        fh.write(f"{key} {len(payload)}\n".encode("ascii"))
                        offset = fh.tell()
                        fh.write(payload)
                        index[key] = (offset, len(payload))
                    fh.flush()
                finally:
                    if fcntl is not None:
                        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        except OSError:
            # The per-key tier already holds every outcome; losing the
            # manifest only costs the next warm start some opens.
            self._pack_index = None


def get_runner(runner: BatchRunner | None) -> BatchRunner:
    """The given runner, or a fresh serial one (LRU tier only)."""
    return runner if runner is not None else BatchRunner()
