"""Batch execution of scenarios: process fan-out plus an on-disk cache.

The :class:`BatchRunner` is the execution layer between the declarative
scenario specs (:mod:`repro.scenarios`) and the per-run engine
(:mod:`repro.sim.engine`).  Given a list of specs it

* deduplicates identical specs (figure grids often repeat a run),
* serves previously computed results from an on-disk cache keyed by the
  spec fingerprint (which folds in the queue-kernel version, so code
  changes invalidate stale entries),
* fans the remaining runs out over a :class:`ProcessPoolExecutor` when
  ``jobs > 1`` -- specs are picklable and every worker rebuilds its
  manager from the factories, so per-spec-seed determinism is preserved
  and serial and parallel execution produce identical results,
* returns outcomes in input order.

A runner is cheap and stateless between calls (apart from hit/miss
counters), so one instance can be threaded through a whole
``hipster-repro all`` invocation to share its cache and worker budget.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> scenarios cycle
    from repro.scenarios.spec import ScenarioOutcome, ScenarioSpec


def execute_scenario(spec: "ScenarioSpec") -> "ScenarioOutcome":
    """Run one scenario in the current process (the pool's work item)."""
    return spec.run()


@dataclass
class BatchRunner:
    """Fan scenario specs out over workers, caching results on disk.

    Parameters
    ----------
    jobs:
        Worker processes; 1 runs everything in-process (serial).
    cache_dir:
        Directory for pickled :class:`ScenarioOutcome`s keyed by spec
        fingerprint; ``None`` disables caching.  Corrupt or unreadable
        entries are treated as misses and recomputed.
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    cache_hits: int = field(default=0, init=False)
    cache_misses: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, specs: Iterable["ScenarioSpec"]) -> list["ScenarioOutcome"]:
        """Execute every spec, in input order; duplicates run once."""
        from repro.scenarios.spec import ScenarioSpec

        spec_list = list(specs)
        for spec in spec_list:
            if not isinstance(spec, ScenarioSpec):
                raise TypeError(f"expected ScenarioSpec, got {type(spec).__name__}")
        keys = [spec.fingerprint() for spec in spec_list]

        outcomes: dict[str, ScenarioOutcome] = {}
        pending: list[tuple[str, ScenarioSpec]] = []
        pending_keys: set[str] = set()
        for key, spec in zip(keys, spec_list):
            if key in outcomes or key in pending_keys:
                continue
            cached = self._cache_load(key)
            if cached is not None:
                outcomes[key] = cached
                self.cache_hits += 1
            else:
                pending.append((key, spec))
                pending_keys.add(key)
                self.cache_misses += 1

        for key, outcome in zip(
            (key for key, _ in pending),
            self._execute([spec for _, spec in pending]),
        ):
            outcomes[key] = outcome
            self._cache_store(key, outcome)

        return [outcomes[key] for key in keys]

    def results(self, specs: Iterable["ScenarioSpec"]):
        """Like :meth:`run` but unwrapped to bare ``ExperimentResult``s."""
        return [outcome.result for outcome in self.run(specs)]

    def run_one(self, spec: "ScenarioSpec") -> "ScenarioOutcome":
        """Convenience wrapper for a single spec."""
        return self.run([spec])[0]

    def _execute(self, specs: Sequence["ScenarioSpec"]) -> list["ScenarioOutcome"]:
        if self.jobs > 1 and len(specs) > 1:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(specs))
            ) as pool:
                return list(pool.map(execute_scenario, specs))
        return [execute_scenario(spec) for spec in specs]

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------

    def _cache_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return Path(self.cache_dir) / f"{key}.pkl"

    def _cache_load(self, key: str) -> "ScenarioOutcome | None":
        from repro.scenarios.spec import ScenarioOutcome

        if self.cache_dir is None:
            return None
        path = self._cache_path(key)
        try:
            with path.open("rb") as fh:
                outcome = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:  # corrupt/stale entry: recompute, never crash
            return None
        return outcome if isinstance(outcome, ScenarioOutcome) else None

    def _cache_store(self, key: str, outcome: "ScenarioOutcome") -> None:
        if self.cache_dir is None:
            return
        path = self._cache_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic write: a crashed/parallel writer must never leave a
        # truncated pickle behind for a later run to trip over.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(outcome, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def get_runner(runner: BatchRunner | None) -> BatchRunner:
    """The given runner, or a fresh serial uncached one."""
    return runner if runner is not None else BatchRunner()
